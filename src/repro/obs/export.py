"""Exporters for observer snapshots.

Three views of the same :class:`~repro.obs.core.ObsSnapshot`:

* :func:`summary_lines` — the human-readable stage summary the CLI
  prints on stderr under ``--timings`` (span aggregates by name, then
  every counter grouped by subsystem);
* :func:`snapshot_to_dict` / JSON — the machine-readable equivalent;
* :func:`chrome_trace` — Chrome ``trace_event`` format, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev: spans as complete
  (``"ph": "X"``) events with their attributes as ``args``, counters as
  counter (``"ph": "C"``) events stamped at the end of the trace.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Tuple

from .core import ObsSnapshot, SpanRecord
from .hist import Histogram

#: Schema marker for the JSON/Chrome exports.
TRACE_METADATA = {"producer": "repro.obs"}


def _aggregate_spans(snapshot: ObsSnapshot) -> List[Tuple[str, int, float]]:
    """``(name, call count, total seconds)`` per span name, first-seen order."""
    order: List[str] = []
    totals: Dict[str, List[float]] = {}
    for span in snapshot.spans:
        if span.name not in totals:
            totals[span.name] = [0, 0.0]
            order.append(span.name)
        entry = totals[span.name]
        entry[0] += 1
        entry[1] += span.duration
    return [(name, int(totals[name][0]), totals[name][1]) for name in order]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def summary_lines(snapshot: ObsSnapshot, prefix: str = "[timings]") -> List[str]:
    """The stage summary: span aggregates, then counters by subsystem."""
    lines: List[str] = []
    aggregates = _aggregate_spans(snapshot)
    if aggregates:
        lines.append(f"{prefix} spans (name, calls, total seconds):")
        width = max(len(name) for name, _, _ in aggregates)
        for name, count, seconds in aggregates:
            lines.append(f"{prefix}   {name.ljust(width)}  {count:>6}x  {seconds:8.3f}s")
    if snapshot.counters:
        lines.append(f"{prefix} counters:")
        width = max(len(name) for name in snapshot.counters)
        previous_group = None
        for name in sorted(snapshot.counters):
            group = name.split(".", 1)[0]
            if previous_group is not None and group != previous_group:
                lines.append(f"{prefix}   --")
            previous_group = group
            lines.append(
                f"{prefix}   {name.ljust(width)}  "
                f"{_format_value(snapshot.counters[name])}"
            )
    if snapshot.hists:
        lines.append(f"{prefix} histograms (name, count, p50/p95/p99):")
        width = max(len(name) for name in snapshot.hists)
        for name in sorted(snapshot.hists):
            hist = snapshot.hists[name]
            lines.append(
                f"{prefix}   {name.ljust(width)}  {hist.count:>8}x  "
                f"{hist.quantile(0.50):.6f} / {hist.quantile(0.95):.6f} / "
                f"{hist.quantile(0.99):.6f}"
            )
    if not lines:
        lines.append(f"{prefix} (no spans or counters recorded)")
    return lines


def snapshot_to_dict(snapshot: ObsSnapshot) -> Dict[str, Any]:
    """JSON-shaped view: counters, gauges, histograms, one object per span."""
    return {
        "metadata": dict(TRACE_METADATA),
        "counters": dict(snapshot.counters),
        "gauges": sorted(snapshot.gauges),
        "histograms": {
            name: hist.to_dict() for name, hist in sorted(snapshot.hists.items())
        },
        "spans": [
            {
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "depth": span.depth,
                "pid": span.pid,
                "tid": span.tid,
                "attrs": dict(span.attrs),
                **(
                    {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                    }
                    if span.trace_id is not None
                    else {}
                ),
            }
            for span in snapshot.spans
        ],
    }


def snapshot_to_json(snapshot: ObsSnapshot, indent: int = 2) -> str:
    return json.dumps(snapshot_to_dict(snapshot), indent=indent, default=str)


def snapshot_from_dict(payload: Mapping[str, Any]) -> ObsSnapshot:
    """Rebuild an :class:`ObsSnapshot` from :func:`snapshot_to_dict` output.

    The inverse used by ``python -m repro obs-export``, which turns a
    saved CLI-run snapshot into Prometheus text after the fact.
    """
    spans = [
        SpanRecord(
            str(span["name"]),
            float(span.get("start", 0.0)),
            float(span.get("duration", 0.0)),
            int(span.get("depth", 0)),
            int(span.get("pid", 0)),
            int(span.get("tid", 0)),
            dict(span.get("attrs", {})),
            span.get("trace_id"),
            span.get("span_id"),
            span.get("parent_id"),
        )
        for span in payload.get("spans", [])
    ]
    hists = {
        str(name): Histogram.from_dict(doc)
        for name, doc in dict(payload.get("histograms", {})).items()
    }
    return ObsSnapshot(
        dict(payload.get("counters", {})),
        spans,
        frozenset(payload.get("gauges", [])),
        hists,
    )


def write_snapshot(path: str, snapshot: ObsSnapshot) -> None:
    """Serialise :func:`snapshot_to_json` to *path*."""
    with open(path, "w") as stream:
        stream.write(snapshot_to_json(snapshot))
        stream.write("\n")


def chrome_trace(snapshot: ObsSnapshot) -> Dict[str, Any]:
    """The snapshot as a Chrome ``trace_event`` document.

    Timestamps are microseconds relative to the earliest span; counter
    events are stamped once, after the last span, with their final
    values.
    """
    events: List[Dict[str, Any]] = []
    epoch = min((span.start for span in snapshot.spans), default=0.0)
    end_ts = 0
    for span in snapshot.spans:
        ts = int((span.start - epoch) * 1_000_000)
        dur = max(int(span.duration * 1_000_000), 1)
        end_ts = max(end_ts, ts + dur)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": span.pid,
                "tid": span.tid,
                "args": {key: _jsonable(value) for key, value in span.attrs.items()},
            }
        )
    for name, value in sorted(snapshot.counters.items()):
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "C",
                "ts": end_ts,
                "pid": 0,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": dict(TRACE_METADATA),
    }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(path: str, snapshot: ObsSnapshot) -> None:
    """Serialise :func:`chrome_trace` to *path*."""
    with open(path, "w") as stream:
        json.dump(chrome_trace(snapshot), stream, indent=1)
        stream.write("\n")


# -- stitched distributed traces ---------------------------------------------


def trace_chrome_doc(
    trace_id: str, spans: List[Mapping[str, Any]]
) -> Dict[str, Any]:
    """One stitched request trace as a Chrome/Perfetto ``trace_event`` doc.

    *spans* are span dicts (:func:`repro.obs.tracing.span_to_dict`
    shape) collected from every worker that touched the request —
    ``perf_counter`` is system-wide monotonic on the platforms we
    target, so per-process start times line up on one timeline.  Span
    and parent ids ride in ``args`` so the causal tree survives the
    export.
    """
    events: List[Dict[str, Any]] = []
    epoch = min((float(span.get("start", 0.0)) for span in spans), default=0.0)
    for span in spans:
        args = {key: _jsonable(value) for key, value in dict(span.get("attrs", {})).items()}
        args["trace_id"] = trace_id
        args["span_id"] = span.get("span_id")
        args["parent_id"] = span.get("parent_id")
        name = str(span.get("name", "?"))
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": int((float(span.get("start", 0.0)) - epoch) * 1_000_000),
                "dur": max(int(float(span.get("duration", 0.0)) * 1_000_000), 1),
                "pid": int(span.get("pid", 0)),
                "tid": int(span.get("tid", 0)),
                "args": args,
            }
        )
    metadata = dict(TRACE_METADATA)
    metadata["trace_id"] = trace_id
    return {"traceEvents": events, "displayTimeUnit": "ms", "metadata": metadata}


def format_span_tree(spans: List[Mapping[str, Any]]) -> List[str]:
    """A stitched span set as an indented text tree (one line per span).

    Children attach via ``parent_id``; spans whose parent is absent
    from the set (the remote caller's span on a partially-stitched
    trace) render as roots.  Siblings order by start time.
    """
    by_id: Dict[str, Mapping[str, Any]] = {
        span["span_id"]: span for span in spans if span.get("span_id")
    }
    children: Dict[Any, List[Mapping[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        key = parent if parent in by_id else None
        children.setdefault(key, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: float(span.get("start", 0.0)))

    lines: List[str] = []

    def walk(span: Mapping[str, Any], depth: int) -> None:
        duration_ms = float(span.get("duration", 0.0)) * 1e3
        detail = f"pid={span.get('pid')}"
        error = dict(span.get("attrs", {})).get("error")
        if error:
            detail += f" error={error}"
        lines.append(
            f"{'  ' * depth}{span.get('name')}  {duration_ms:.1f}ms  ({detail})"
        )
        span_id = span.get("span_id")
        if span_id:  # never recurse through the None root bucket
            for child in children.get(span_id, []):
                walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines
