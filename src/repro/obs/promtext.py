"""Prometheus text exposition for observer snapshots.

:func:`render_prometheus` turns an :class:`~repro.obs.core.ObsSnapshot`
into the Prometheus text format (version 0.0.4) — the lingua franca of
every scraper, ``promtool`` and Grafana agent:

* counters render as ``TYPE counter`` samples;
* gauges (names the observer saw via ``set_gauge``) and live
  :meth:`~repro.obs.core.Observer.rates` (suffixed ``_per_second``)
  render as ``TYPE gauge``;
* histograms render as ``TYPE histogram`` families: cumulative
  ``_bucket{le="..."}`` samples on the geometric grid of
  :mod:`repro.obs.hist`, a final ``le="+Inf"`` bucket, and the
  ``_sum`` / ``_count`` pair.

Dotted observer names map to metric names by replacing every
non-``[a-zA-Z0-9_:]`` character with ``_`` and prefixing ``repro_``
(``service.latency_seconds`` → ``repro_service_latency_seconds``).

The module also ships :func:`parse_exposition` and
:func:`validate_exposition` — a deliberately strict reader used by the
load generator (server-side quantiles from a ``/metrics`` delta), the
test suite and the CI metrics-smoke job, so a malformed exposition
fails loudly long before a real Prometheus ever scrapes it.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

from .core import ObsSnapshot
from .hist import Histogram

#: Prefix applied to every exported metric name.
NAMESPACE = "repro"

#: Content type ``GET /metrics`` answers with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
# A sample line, optionally carrying an OpenMetrics exemplar suffix:
#   name{labels} value [# {exemplar_labels} exemplar_value [timestamp]]
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+#\s+\{(?P<exemplar_labels>[^}]*)\}"
    r"\s+(?P<exemplar_value>\S+)(?:\s+(?P<exemplar_ts>\S+))?)?$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def metric_name(name: str) -> str:
    """``service.latency_seconds`` → ``repro_service_latency_seconds``."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{NAMESPACE}_{sanitized}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def render_prometheus(
    snapshot: ObsSnapshot,
    rates: Optional[Mapping[str, float]] = None,
    exemplars: Optional[Mapping[str, Mapping[float, Tuple[str, float]]]] = None,
) -> str:
    """The snapshot as Prometheus text exposition (see module docstring).

    *rates* (name → events/sec, from ``Observer.rates()``) render as
    additional ``_per_second`` gauges — they are live, window-derived
    values and therefore never part of the snapshot itself.

    *exemplars* maps a histogram's dotted name to
    ``{bucket upper bound: (trace_id, observed value)}`` (the
    :meth:`~repro.obs.flight.FlightRecorder.exemplars` shape); matching
    ``_bucket`` samples gain an OpenMetrics exemplar suffix
    ``# {trace_id="..."} value`` linking the bucket to a trace
    resolvable via ``GET /trace/{id}``.
    """
    lines: List[str] = []
    used: set = set()

    def emit(name: str, kind: str, source: str) -> str:
        """HELP/TYPE header with collision-proofed family name."""
        family = metric_name(name)
        while family in used:
            family += "_"  # two dotted names sanitising identically
        used.add(family)
        lines.append(f"# HELP {family} {kind} {source}")
        lines.append(f"# TYPE {family} {kind}")
        return family

    # Histograms claim their family names first: a histogram's _bucket/
    # _sum/_count samples must never collide with a plain counter.
    for name in sorted(snapshot.hists):
        hist = snapshot.hists[name]
        family = emit(name, "histogram", name)
        bucket_exemplars = dict((exemplars or {}).get(name, {}))
        for bound, cumulative in hist.cumulative_buckets():
            line = f'{family}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            exemplar = bucket_exemplars.get(bound)
            if exemplar is not None:
                trace_id, value = exemplar
                line += f' # {{trace_id="{trace_id}"}} {_format_value(float(value))}'
            lines.append(line)
        lines.append(f'{family}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{family}_sum {_format_value(hist.sum)}")
        lines.append(f"{family}_count {hist.count}")

    for name in sorted(snapshot.counters):
        kind = "gauge" if name in snapshot.gauges else "counter"
        family = emit(name, kind, name)
        lines.append(f"{family} {_format_value(snapshot.counters[name])}")

    for name in sorted(rates or {}):
        family = emit(f"{name}.per_second", "gauge", f"{name} (rate)")
        lines.append(f"{family} {_format_value(float(rates[name]))}")

    return "\n".join(lines) + "\n"


# -- reading it back ---------------------------------------------------------

#: One parsed sample: ``(labels, value)``.
Sample = Tuple[Dict[str, str], float]


class ExpositionError(ValueError):
    """Raised by :func:`parse_exposition`/:func:`validate_exposition`."""


def _parse_float(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"unparseable sample value {text!r}") from None


def _parse_labels(label_text: Optional[str], raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if label_text:
        for part in label_text.split(","):
            label = _LABEL.match(part.strip())
            if label is None:
                raise ExpositionError(f"unparseable label in line {raw!r}")
            labels[label.group("key")] = label.group("value")
    return labels


def parse_exposition(text: str) -> Dict[str, List[Sample]]:
    """Parse exposition text into ``{sample name: [(labels, value)]}``.

    ``_bucket``/``_sum``/``_count`` samples keep their suffixed names;
    types declared by ``# TYPE`` lines land under the reserved key
    ``"__types__"`` mapping family name to type.  OpenMetrics exemplar
    suffixes are accepted on sample lines and validated (labels and
    value must parse) — read them back with :func:`parse_exemplars`.
    Raises :class:`ExpositionError` on any malformed line.
    """
    samples: Dict[str, List[Sample]] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                types[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionError(f"unparseable exposition line {raw!r}")
        labels = _parse_labels(match.group("labels"), raw)
        if match.group("exemplar_labels") is not None:
            _parse_labels(match.group("exemplar_labels"), raw)
            _parse_float(match.group("exemplar_value"))
        samples.setdefault(match.group("name"), []).append(
            (labels, _parse_float(match.group("value")))
        )
    samples["__types__"] = [(types, 0.0)]  # piggy-back the type table
    return samples


def parse_exemplars(text: str) -> List[Dict[str, object]]:
    """Every OpenMetrics exemplar in *text*, in document order.

    Each entry: ``{"sample": sample name, "labels": sample labels,
    "exemplar": exemplar labels, "value": exemplar value}``.  Assumes
    *text* already passed :func:`parse_exposition`/:func:`validate_exposition`.
    """
    exemplars: List[Dict[str, object]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None or match.group("exemplar_labels") is None:
            continue
        exemplars.append(
            {
                "sample": match.group("name"),
                "labels": _parse_labels(match.group("labels"), raw),
                "exemplar": _parse_labels(match.group("exemplar_labels"), raw),
                "value": _parse_float(match.group("exemplar_value")),
            }
        )
    return exemplars


def exposition_types(parsed: Dict[str, List[Sample]]) -> Dict[str, str]:
    """The ``# TYPE`` table of a :func:`parse_exposition` result."""
    return dict(parsed.get("__types__", [({}, 0.0)])[0][0])


def validate_exposition(text: str) -> Dict[str, List[Sample]]:
    """Validate exposition *text*; returns the parse on success.

    Checks the contract a scraper relies on:

    * every sample line parses and its family has a ``# TYPE``;
    * histogram families have ``_bucket`` samples with parseable ``le``
      labels in strictly ascending order, non-decreasing cumulative
      counts, a ``+Inf`` bucket, and ``_sum``/``_count`` samples with
      ``+Inf`` bucket == ``_count``.

    Raises :class:`ExpositionError` on the first violation.
    """
    parsed = parse_exposition(text)
    types = exposition_types(parsed)

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            family = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if family and types.get(family) == "histogram":
                return family
        return sample_name

    for name in parsed:
        if name == "__types__":
            continue
        family = family_of(name)
        if family not in types:
            raise ExpositionError(f"sample {name!r} has no # TYPE declaration")

    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = parsed.get(f"{family}_bucket")
        if not buckets:
            raise ExpositionError(f"histogram {family!r} has no _bucket samples")
        pairs: List[Tuple[float, float]] = []
        for labels, value in buckets:
            if "le" not in labels:
                raise ExpositionError(f"histogram {family!r} bucket missing 'le'")
            pairs.append((_parse_float(labels["le"]), value))
        bounds = [bound for bound, _ in pairs]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ExpositionError(
                f"histogram {family!r} buckets not strictly ascending: {bounds}"
            )
        counts = [count for _, count in pairs]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise ExpositionError(
                f"histogram {family!r} cumulative counts decrease: {counts}"
            )
        if not math.isinf(bounds[-1]):
            raise ExpositionError(f"histogram {family!r} lacks the +Inf bucket")
        count_samples = parsed.get(f"{family}_count")
        sum_samples = parsed.get(f"{family}_sum")
        if not count_samples or not sum_samples:
            raise ExpositionError(f"histogram {family!r} lacks _sum/_count")
        if count_samples[0][1] != counts[-1]:
            raise ExpositionError(
                f"histogram {family!r}: +Inf bucket {counts[-1]} != "
                f"_count {count_samples[0][1]}"
            )

    # Exemplar contract: a _bucket exemplar's observed value must lie
    # inside that bucket, i.e. not exceed its ``le`` bound (with a hair
    # of float tolerance — bucket indexing nudges boundary values).
    for exemplar in parse_exemplars(text):
        labels = exemplar["labels"]
        if str(exemplar["sample"]).endswith("_bucket") and "le" in labels:
            bound = _parse_float(labels["le"])  # type: ignore[index]
            value = float(exemplar["value"])  # type: ignore[arg-type]
            if not math.isinf(bound) and value > bound * (1.0 + 1e-9):
                raise ExpositionError(
                    f"exemplar value {value} exceeds bucket le={bound} "
                    f"on sample {exemplar['sample']!r}"
                )
    return parsed


def histogram_bucket_counts(
    parsed: Dict[str, List[Sample]], family: str
) -> Dict[float, float]:
    """Non-cumulative per-``le`` counts of *family*'s finite buckets.

    Subtracting two of these dicts (per matching bound) yields the
    distribution of the interval between two scrapes — the basis of the
    load generator's server-side quantiles.
    """
    buckets = parsed.get(f"{family}_bucket", [])
    pairs = sorted(
        (_parse_float(labels["le"]), value)
        for labels, value in buckets
        if "le" in labels and not math.isinf(_parse_float(labels["le"]))
    )
    counts: Dict[float, float] = {}
    previous = 0.0
    for bound, cumulative in pairs:
        counts[bound] = cumulative - previous
        previous = cumulative
    return counts


def delta_bucket_counts(
    before: Mapping[float, float], after: Mapping[float, float]
) -> List[Tuple[float, float]]:
    """``after - before`` per bucket bound, ascending, negatives clamped."""
    return [
        (bound, max(0.0, after.get(bound, 0.0) - before.get(bound, 0.0)))
        for bound in sorted(set(before) | set(after))
    ]


def snapshot_histogram(hist: Histogram) -> str:  # pragma: no cover - convenience
    """Render a single histogram family (debugging aid)."""
    snapshot = ObsSnapshot({}, [], frozenset(), {"histogram": hist})
    return render_prometheus(snapshot)
