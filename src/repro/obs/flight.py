"""The always-on flight recorder: a ring of recent request traces.

Full span recording (``OBS.enable()``) is opt-in and unbounded — fine
for one CLI run, wrong for a long-lived daemon.  The flight recorder is
the daemon-shaped alternative: every request runs under an
:class:`~repro.obs.tracing.ActiveTrace` (cheap — spans collect on the
request object, never the process-wide list), and when the request
finishes a **tail-sampling** decision keeps the interesting ones in a
bounded per-worker ring:

* every error (status >= 400, which covers 429 and 503) is kept;
* every slow-tail request (duration over ``slow_threshold``) is kept;
* of the boring rest, a deterministic hash of the trace id keeps a
  ``sample_rate`` fraction.  Deterministic on purpose: the proxying
  worker and the owning worker of a cross-shard request make the
  *same* decision from the same trace id, so a kept trace is kept on
  both sides and ``GET /trace/{id}`` can stitch a complete tree.
  (Keep reasons can still diverge — only the proxy sees the end-to-end
  duration — so a slow-but-not-sampled trace may stitch partially;
  the architecture doc calls this out.)

The recorder also owns the **exemplar store**: the most recent kept
trace id per ``service.latency_seconds`` bucket, rendered as
OpenMetrics exemplars on ``/metrics`` so a p99 bucket links straight
to a trace id resolvable via ``GET /trace/{id}``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from .hist import bucket_index, bucket_upper
from .tracing import ActiveTrace

#: Default ring capacity (finished traces kept per worker process).
DEFAULT_CAPACITY = 256

#: Default slow-tail threshold (seconds): anything slower is kept.
DEFAULT_SLOW_THRESHOLD = 0.25

#: Default probabilistic keep rate for unremarkable requests.
DEFAULT_SAMPLE_RATE = 0.01

#: Hash-sampling modulus: the first 8 hex chars of the trace id map to
#: [0, 1) with 32-bit resolution.
_SAMPLE_SPACE = float(0xFFFFFFFF)


def sample_decision(trace_id: str, sample_rate: float) -> bool:
    """Deterministic keep/drop for *trace_id* at *sample_rate*.

    Every worker computes the same answer for the same trace id, which
    is what makes cross-shard stitching reliable under sampling.
    """
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    try:
        point = int(trace_id[:8], 16) / _SAMPLE_SPACE
    except (ValueError, TypeError):
        return False
    return point < sample_rate


class FlightRecorder:
    """Bounded, thread-safe ring of finished request span-trees."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        enabled: bool = True,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.slow_threshold = slow_threshold
        self.sample_rate = sample_rate
        #: master switch: False → record() drops everything and the
        #: server skips starting traces entirely (the bench baseline)
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ring: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: latency-bucket index → (trace_id, observed seconds); the
        #: newest kept trace per bucket becomes that bucket's exemplar
        self._exemplars: Dict[int, Tuple[str, float]] = {}

    # -- recording -----------------------------------------------------------

    def keep_reason(self, status: int, duration: float, trace_id: str) -> Optional[str]:
        """Why this request survives tail-sampling, or ``None`` to drop."""
        if status >= 400:
            return "error"
        if duration >= self.slow_threshold:
            return "slow"
        if sample_decision(trace_id, self.sample_rate):
            return "sampled"
        return None

    def record(
        self,
        trace: Optional[ActiveTrace],
        status: int,
        route: str,
        duration: float,
        request_id: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Optional[str]:
        """Apply tail-sampling to a finished request; returns the keep
        reason when the trace entered the ring, ``None`` when dropped."""
        if trace is None or not self.enabled:
            return None
        reason = self.keep_reason(status, duration, trace.trace_id)
        if reason is None:
            return None
        entry = {
            "trace_id": trace.trace_id,
            "route": route,
            "status": status,
            "duration_ms": round(duration * 1e3, 3),
            "ts": time.time(),
            "request_id": request_id,
            "shard": shard,
            "kept": reason,
            "notes": dict(trace.notes),
            "spans": trace.span_dicts(),
        }
        with self._lock:
            self._ring[trace.trace_id] = entry
            self._ring.move_to_end(trace.trace_id)
            while len(self._ring) > self.capacity:
                self._ring.popitem(last=False)
            if duration > 0:
                self._exemplars[bucket_index(duration)] = (trace.trace_id, duration)
        return reason

    # -- reading back --------------------------------------------------------

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The ring entry for *trace_id*, or ``None`` (evicted/never kept)."""
        with self._lock:
            entry = self._ring.get(trace_id)
            return None if entry is None else dict(entry)

    def summaries(self, limit: int = 50) -> List[Dict[str, Any]]:
        """Newest-first one-line summaries of the kept traces."""
        with self._lock:
            entries = list(self._ring.values())
        return [
            {
                "trace_id": entry["trace_id"],
                "route": entry["route"],
                "status": entry["status"],
                "duration_ms": entry["duration_ms"],
                "ts": entry["ts"],
                "kept": entry["kept"],
                "spans": len(entry["spans"]),
            }
            for entry in reversed(entries[-max(0, int(limit)) :])
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def exemplars(self) -> Dict[float, Tuple[str, float]]:
        """``{bucket upper bound: (trace_id, observed seconds)}`` for the
        latency histogram — the exposition's exemplar source."""
        with self._lock:
            return {
                bucket_upper(index): pair for index, pair in self._exemplars.items()
            }
