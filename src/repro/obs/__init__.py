"""Pipeline-wide observability: spans, counters/gauges, histograms,
rates, distributed tracing, trace export and Prometheus exposition.

Instrumented modules report to the process-wide default observer::

    from ..obs import OBS

    OBS.add("artifacts.cache.hits")
    OBS.observe("service.latency_seconds", elapsed)   # histogram
    OBS.mark("service.requests")                      # sliding-window rate
    with OBS.span("workload.run", benchmark=name, scale=scale):
        ...

Span recording is opt-in (``OBS.enable()``, or the experiment CLI's
``--timings`` / ``--trace-out`` flags); counters, histograms and rates
are always live.  The service daemon additionally runs every request
under an :class:`~repro.obs.tracing.ActiveTrace` feeding the always-on
:class:`~repro.obs.flight.FlightRecorder` — see :mod:`repro.obs.core`
for the model, :mod:`repro.obs.tracing` for trace-context propagation,
:mod:`repro.obs.flight` for tail-sampled request traces,
:mod:`repro.obs.profiler` for the sampling wall-clock profiler,
:mod:`repro.obs.hist` for the log-bucketed histogram and rate window,
:mod:`repro.obs.export` for the human-readable summary, JSON and Chrome
``trace_event`` exporters, and :mod:`repro.obs.promtext` for the
Prometheus text exposition served at ``GET /metrics``.
"""

from .core import (
    NULL_SPAN,
    OBS,
    Observer,
    ObsSnapshot,
    SpanRecord,
    default_observer,
    merge_snapshots,
)
from .export import (
    chrome_trace,
    format_span_tree,
    snapshot_from_dict,
    snapshot_to_dict,
    snapshot_to_json,
    summary_lines,
    trace_chrome_doc,
    write_chrome_trace,
    write_snapshot,
)
from .flight import FlightRecorder, sample_decision
from .hist import GROWTH, Histogram, RateWindow, quantile_from_counts
from .profiler import ProfilerBusy, StackSampler, collapsed_stacks, profile_collapsed
from .promtext import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    parse_exemplars,
    parse_exposition,
    render_prometheus,
    validate_exposition,
)
from .tracing import (
    ActiveTrace,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span_to_dict,
)

__all__ = [
    "GROWTH",
    "ActiveTrace",
    "FlightRecorder",
    "Histogram",
    "NULL_SPAN",
    "OBS",
    "Observer",
    "ObsSnapshot",
    "PROMETHEUS_CONTENT_TYPE",
    "ProfilerBusy",
    "RateWindow",
    "SpanRecord",
    "StackSampler",
    "chrome_trace",
    "collapsed_stacks",
    "default_observer",
    "format_span_tree",
    "format_traceparent",
    "merge_snapshots",
    "new_span_id",
    "new_trace_id",
    "parse_exemplars",
    "parse_exposition",
    "parse_traceparent",
    "profile_collapsed",
    "quantile_from_counts",
    "render_prometheus",
    "sample_decision",
    "snapshot_from_dict",
    "snapshot_to_dict",
    "snapshot_to_json",
    "span_to_dict",
    "summary_lines",
    "trace_chrome_doc",
    "validate_exposition",
    "write_chrome_trace",
    "write_snapshot",
]
