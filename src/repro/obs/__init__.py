"""Pipeline-wide observability: spans, counters/gauges, trace export.

Instrumented modules report to the process-wide default observer::

    from ..obs import OBS

    OBS.add("artifacts.cache.hits")
    with OBS.span("workload.run", benchmark=name, scale=scale):
        ...

Span recording is opt-in (``OBS.enable()``, or the experiment CLI's
``--timings`` / ``--trace-out`` flags); counters are always live.  See
:mod:`repro.obs.core` for the model and :mod:`repro.obs.export` for the
human-readable summary, JSON and Chrome ``trace_event`` exporters.
"""

from .core import (
    NULL_SPAN,
    OBS,
    Observer,
    ObsSnapshot,
    SpanRecord,
    default_observer,
)
from .export import (
    chrome_trace,
    snapshot_to_dict,
    snapshot_to_json,
    summary_lines,
    write_chrome_trace,
)

__all__ = [
    "NULL_SPAN",
    "OBS",
    "Observer",
    "ObsSnapshot",
    "SpanRecord",
    "chrome_trace",
    "default_observer",
    "snapshot_to_dict",
    "snapshot_to_json",
    "summary_lines",
    "write_chrome_trace",
]
