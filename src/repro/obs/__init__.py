"""Pipeline-wide observability: spans, counters/gauges, histograms,
rates, trace export and Prometheus exposition.

Instrumented modules report to the process-wide default observer::

    from ..obs import OBS

    OBS.add("artifacts.cache.hits")
    OBS.observe("service.latency_seconds", elapsed)   # histogram
    OBS.mark("service.requests")                      # sliding-window rate
    with OBS.span("workload.run", benchmark=name, scale=scale):
        ...

Span recording is opt-in (``OBS.enable()``, or the experiment CLI's
``--timings`` / ``--trace-out`` flags); counters, histograms and rates
are always live.  See :mod:`repro.obs.core` for the model,
:mod:`repro.obs.hist` for the log-bucketed histogram and rate window,
:mod:`repro.obs.export` for the human-readable summary, JSON and Chrome
``trace_event`` exporters, and :mod:`repro.obs.promtext` for the
Prometheus text exposition served at ``GET /metrics``.
"""

from .core import (
    NULL_SPAN,
    OBS,
    Observer,
    ObsSnapshot,
    SpanRecord,
    default_observer,
    merge_snapshots,
)
from .export import (
    chrome_trace,
    snapshot_from_dict,
    snapshot_to_dict,
    snapshot_to_json,
    summary_lines,
    write_chrome_trace,
    write_snapshot,
)
from .hist import GROWTH, Histogram, RateWindow, quantile_from_counts
from .promtext import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
    validate_exposition,
)

__all__ = [
    "GROWTH",
    "Histogram",
    "NULL_SPAN",
    "OBS",
    "Observer",
    "ObsSnapshot",
    "PROMETHEUS_CONTENT_TYPE",
    "RateWindow",
    "SpanRecord",
    "chrome_trace",
    "default_observer",
    "merge_snapshots",
    "parse_exposition",
    "quantile_from_counts",
    "render_prometheus",
    "snapshot_from_dict",
    "snapshot_to_dict",
    "snapshot_to_json",
    "summary_lines",
    "validate_exposition",
    "write_chrome_trace",
    "write_snapshot",
]
