"""The observer: hierarchical timed spans plus named counters/gauges.

One :class:`Observer` per process holds everything the pipeline reports
about itself:

* **spans** — timed, nestable regions opened with
  :meth:`Observer.span` as a context manager.  Nesting is tracked per
  thread (a thread-local stack), finished spans are appended to a
  process-wide list, and each record carries its pid/tid so records
  merged from worker processes stay distinguishable.  Span *recording*
  is off by default; a disabled observer hands out a shared no-op span
  so instrumented code pays only one method call.
* **counters and gauges** — named numeric cells with a uniform
  ``add``/``set_gauge``/``counters``/``reset`` API.  Counters are
  always live (they subsume the pre-obs ``CacheStats``/``EngineStats``
  bookkeeping, which callers expect to work without opting in) and are
  cheap: one lock acquisition per *call site*, never per trace event.
  Counters and gauges share one value namespace but carry different
  merge semantics: counters **sum** across workers, gauges are
  **last-write-wins** (a worker's ``sm.intra.best_score`` is a level,
  not a quantity — summing two 0.9 scores into 1.8 is nonsense), so
  the observer tracks which names were written via :meth:`set_gauge`.
* **histograms** — :meth:`observe` files a value into a mergeable
  log-bucketed :class:`~repro.obs.hist.Histogram` (~5% relative-error
  quantiles); worker histograms merge exactly like counters.
* **rates** — :meth:`mark` feeds a sliding-window
  :class:`~repro.obs.hist.RateWindow`; :meth:`rates` answers live
  events/sec gauges (req/s on ``/metrics``) that decay when traffic
  stops.

Names are dotted paths, ``<subsystem>.<detail>`` (``artifacts.cache.hits``,
``engine.events``, ``sm.intra.candidates``); ``reset(prefix=...)`` and
the exporters group on those dots.  Worker processes report their
observer's :meth:`snapshot` back to the parent, which folds it in with
:meth:`merge` — counters under a namespace prefix so per-process
semantics survive, spans verbatim (``perf_counter`` is system-wide
monotonic on the platforms we target, so timestamps stay comparable).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Union

from .hist import Histogram, RateWindow, merge_histogram_maps
from .tracing import ActiveTrace, new_span_id

Number = Union[int, float]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, attributed slice of wall-clock time.

    The three trailing trace-context fields are ``None`` for spans
    finished outside an active trace (the experiment CLI's opt-in
    recording), and carry the distributed-tracing identity otherwise.
    """

    name: str
    start: float  #: raw ``perf_counter`` seconds (exporters normalise)
    duration: float  #: seconds
    depth: int  #: nesting depth within its thread (0 = top level)
    pid: int
    tid: int
    attrs: Mapping[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ObsSnapshot:
    """A point-in-time copy of an observer's counters, spans, histograms.

    ``counters`` includes gauge values (they share the namespace);
    ``gauges`` names which of them carry last-write-wins merge
    semantics.  ``hists`` maps name to a private :class:`Histogram`
    copy.  The two trailing fields default empty so older
    ``ObsSnapshot(counters, spans)`` constructions keep working.
    """

    counters: Dict[str, Number]
    spans: List[SpanRecord]
    gauges: FrozenSet[str] = frozenset()
    hists: Dict[str, Histogram] = field(default_factory=dict)


class _NullSpan:
    """The shared no-op span handed out while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """A live span; use as a context manager (exception-safe)."""

    __slots__ = (
        "_observer",
        "name",
        "attrs",
        "_start",
        "_depth",
        "_trace",
        "_span_id",
        "_parent_id",
    )

    def __init__(self, observer: "Observer", name: str, attrs: Dict[str, Any]):
        self._observer = observer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0
        self._trace: Optional[ActiveTrace] = None
        self._span_id: Optional[str] = None
        self._parent_id: Optional[str] = None

    def set(self, **attrs) -> "_Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self._observer._stack()
        self._depth = len(stack)
        trace = self._observer.current_trace()
        if trace is not None:
            # Parent: the enclosing span on this thread, else the span
            # the trace was adopted under (a pool-thread hop), else the
            # remote caller's span (an HTTP/control hop).
            self._trace = trace
            self._span_id = new_span_id()
            parent = None
            for enclosing in reversed(stack):
                if enclosing._span_id is not None:
                    parent = enclosing._span_id
                    break
            if parent is None:
                parent = self._observer._trace_parent() or trace.remote_parent_id
            self._parent_id = parent
        stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = perf_counter() - self._start
        stack = self._observer._stack()
        # Pop *this* span even if an intervening frame misbehaved, so
        # one leak cannot corrupt every later depth.  (Fast path: we
        # are the innermost span, the overwhelmingly common case.)
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:
            del stack[stack.index(self) :]
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._observer._finish(
            self.name,
            self._start,
            duration,
            self._depth,
            self.attrs,
            trace=self._trace,
            span_id=self._span_id,
            parent_id=self._parent_id,
        )
        return False


class _TraceAdoption:
    """Scoped trace adoption for a worker thread (see ``adopt_trace``)."""

    __slots__ = ("_observer", "_trace", "_hint", "_saved")

    def __init__(
        self,
        observer: "Observer",
        trace: Optional[ActiveTrace],
        parent_hint: Optional[str],
    ) -> None:
        self._observer = observer
        self._trace = trace
        self._hint = parent_hint
        self._saved: tuple = (None, None)

    def __enter__(self) -> Optional[ActiveTrace]:
        local = self._observer._local
        self._saved = (
            getattr(local, "trace", None),
            getattr(local, "trace_parent", None),
        )
        if self._trace is not None:
            local.trace = self._trace
            local.trace_parent = self._hint
        return self._trace

    def __exit__(self, *exc_info) -> bool:
        local = self._observer._local
        local.trace, local.trace_parent = self._saved
        return False


class Observer:
    """Process-local spans, counters and gauges (see module docstring)."""

    def __init__(self, record_spans: bool = False) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}
        self._gauge_names: set = set()
        self._hists: Dict[str, Histogram] = {}
        self._rates: Dict[str, RateWindow] = {}
        self._spans: List[SpanRecord] = []
        self._record_spans = record_spans
        self._local = threading.local()
        self._epoch = 0

    # -- span recording ------------------------------------------------------

    @property
    def recording(self) -> bool:
        """Whether spans are currently being recorded."""
        return self._record_spans

    def enable(self) -> None:
        """Start recording spans (counters are always live)."""
        self._record_spans = True

    def disable(self) -> None:
        self._record_spans = False

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- distributed trace context --------------------------------------------
    #
    # At most one ActiveTrace per thread.  The service's request thread
    # starts one per HTTP request; pool threads and control-invoke
    # handler threads *adopt* it so every span of one request — across
    # threads and (via the control socket) processes — collects under
    # one trace_id.  Trace-context state is thread-local, so none of it
    # takes the observer lock.

    def current_trace(self) -> Optional[ActiveTrace]:
        """This thread's active trace, or ``None``."""
        return getattr(self._local, "trace", None)

    def _trace_parent(self) -> Optional[str]:
        """The span id top-level spans on this thread parent under."""
        return getattr(self._local, "trace_parent", None)

    def start_trace(
        self,
        trace_id: Optional[str] = None,
        remote_parent_id: Optional[str] = None,
    ) -> ActiveTrace:
        """Begin a trace on this thread (honouring inbound context).

        While a trace is active, :meth:`span` returns real spans even
        with full recording off; they collect on the trace only, so an
        always-on flight recorder never grows the process-wide span
        list.  Balance with :meth:`end_trace`.
        """
        trace = ActiveTrace(trace_id, remote_parent_id)
        self._local.trace = trace
        self._local.trace_parent = None
        return trace

    def end_trace(self) -> Optional[ActiveTrace]:
        """Detach and return this thread's active trace (``None`` if none)."""
        trace = getattr(self._local, "trace", None)
        self._local.trace = None
        self._local.trace_parent = None
        return trace

    def adopt_trace(
        self, trace: Optional[ActiveTrace], parent_hint: Optional[str] = None
    ) -> "_TraceAdoption":
        """Context manager: run a block under *trace* on this thread.

        *parent_hint* is the caller's innermost span id — top-level
        spans opened inside the block parent under it, keeping the tree
        connected across the thread hop.  ``trace=None`` is a no-op
        adoption, so call sites need no conditional.
        """
        return _TraceAdoption(self, trace, parent_hint)

    def current_span_id(self) -> Optional[str]:
        """The innermost traced span id on this thread, or ``None``."""
        for span in reversed(self._stack()):
            if span._span_id is not None:
                return span._span_id
        return None

    def span(self, name: str, **attrs: Any):
        """Open a timed span; use as a context manager.

        Attributes identify the work (``benchmark="doduc"``,
        ``scale=2``); more can be attached mid-flight with
        :meth:`_Span.set`.  While recording is disabled *and* no trace
        is active on this thread, this returns the shared no-op span.
        """
        if not self._record_spans and getattr(self._local, "trace", None) is None:
            return NULL_SPAN
        # ``attrs`` is already a fresh dict owned by this call — hand it
        # over without copying.
        return _Span(self, name, attrs)

    def _finish(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        attrs: Dict[str, Any],
        trace: Optional[ActiveTrace] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        if trace is not None and not self._record_spans:
            # Hot path (always-on flight recorder): collect a bare
            # tuple — ~99% of traces are dropped by tail-sampling, so
            # deferring dict construction to ``span_dicts()`` (which
            # only the kept 1% ever reach) keeps the per-request tax
            # minimal.  Field order must match
            # ``repro.obs.tracing.SPAN_TUPLE_KEYS``.
            trace.add_span(
                (
                    name,
                    trace.trace_id,
                    span_id,
                    parent_id,
                    start,
                    duration,
                    depth,
                    trace.pid,
                    threading.get_ident(),
                    attrs,
                )
            )
            return
        record = SpanRecord(
            name,
            start,
            duration,
            depth,
            os.getpid(),
            threading.get_ident(),
            attrs,
            None if trace is None else trace.trace_id,
            span_id,
            parent_id,
        )
        if trace is not None:
            trace.add_span(record)
        if self._record_spans:
            with self._lock:
                self._spans.append(record)

    def spans(self) -> List[SpanRecord]:
        """A copy of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    # -- counters and gauges -------------------------------------------------
    #
    # Concurrency contract (relied on by the service daemon, whose
    # request threads hammer one shared observer): every read-modify-
    # write of ``_counters``/``_hists``/``_rates`` and every append to
    # ``_spans`` happens under ``self._lock``, so concurrent ``add``/
    # ``set_gauge``/``observe``/``mark``/``merge``/``snapshot`` calls
    # never lose updates — N threads adding M each always total exactly
    # N*M
    # (tests/test_obs.py::TestConcurrency asserts this).  The
    # ``_record_spans`` flag is read without the lock: it is a single
    # boolean toggled only at enable/disable time, and the worst a
    # stale read can do is drop or record one span at the boundary.

    def add(self, name: str, value: Number = 1) -> None:
        """Increment counter *name* (creating it at 0); thread-safe."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
            self._epoch += 1

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge *name* to *value* (last write wins).

        The name is remembered as a gauge so snapshots can tell
        exporters (and :meth:`merge`) that it is a level, not a total.
        """
        with self._lock:
            self._counters[name] = value
            self._gauge_names.add(name)
            self._epoch += 1

    # -- histograms and rates ------------------------------------------------

    def observe(self, name: str, value: Number) -> None:
        """File *value* into histogram *name* (creating it); thread-safe.

        Use for durations and sizes whose distribution matters
        (latency, scan time): a histogram answers p50/p95/p99 within
        ~5% where a summed counter only answers the mean.
        """
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram()
            hist.observe(value)
            self._epoch += 1

    def histogram(self, name: str) -> Optional[Histogram]:
        """A private copy of histogram *name*, or ``None``."""
        with self._lock:
            hist = self._hists.get(name)
            return None if hist is None else hist.copy()

    def histograms(self, prefix: str = "") -> Dict[str, Histogram]:
        """Private copies of the histograms (optionally prefix-filtered)."""
        with self._lock:
            return {
                name: hist.copy()
                for name, hist in self._hists.items()
                if name.startswith(prefix)
            }

    def mark(self, name: str, n: Number = 1) -> None:
        """Feed *n* events into the sliding-window rate *name*."""
        with self._lock:
            window = self._rates.get(name)
            if window is None:
                window = self._rates[name] = RateWindow()
            window.mark(n)
            self._epoch += 1

    def rate(self, name: str) -> float:
        """Live events/sec of rate *name* (0.0 when never marked)."""
        with self._lock:
            window = self._rates.get(name)
            return 0.0 if window is None else window.rate()

    def rates(self, prefix: str = "") -> Dict[str, float]:
        """Live events/sec per marked name (optionally prefix-filtered)."""
        with self._lock:
            return {
                name: window.rate()
                for name, window in self._rates.items()
                if name.startswith(prefix)
            }

    def counter(self, name: str, default: Number = 0) -> Number:
        with self._lock:
            return self._counters.get(name, default)

    def epoch(self) -> int:
        """Monotonic mutation sequence: bumps on every write.

        Two equal readings with no mutation in between mean every state
        read between them came from the *same* logical version — the
        torn-read detector the QA layer's merged-vs-per-worker snapshot
        comparisons rely on (``as_of`` in control-socket replies).
        """
        with self._lock:
            return self._epoch

    def counters(self, prefix: str = "") -> Dict[str, Number]:
        """A snapshot copy of the counters (optionally prefix-filtered)."""
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    # -- lifecycle -----------------------------------------------------------

    def reset(self, prefix: Optional[str] = None) -> None:
        """Clear state.

        With *prefix*, only counters, gauges, histograms and rates
        under that prefix are dropped and spans are kept — the
        isolation the per-subsystem ``reset_*_stats()`` shims rely on.
        Without, everything goes.
        """
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._gauge_names.clear()
                self._hists.clear()
                self._rates.clear()
                self._spans.clear()
            else:
                for name in [n for n in self._counters if n.startswith(prefix)]:
                    del self._counters[name]
                    self._gauge_names.discard(name)
                for name in [n for n in self._hists if n.startswith(prefix)]:
                    del self._hists[name]
                for name in [n for n in self._rates if n.startswith(prefix)]:
                    del self._rates[name]
            self._epoch += 1

    def snapshot(self) -> ObsSnapshot:
        """Counters, gauge names, histograms and spans, copied atomically."""
        with self._lock:
            return ObsSnapshot(
                dict(self._counters),
                list(self._spans),
                frozenset(self._gauge_names),
                {name: hist.copy() for name, hist in self._hists.items()},
            )

    def merge(
        self,
        counters: Mapping[str, Number],
        spans: Iterable[SpanRecord] = (),
        counter_prefix: str = "",
        gauges: Iterable[str] = (),
        hists: Optional[Mapping[str, Histogram]] = None,
    ) -> None:
        """Fold another observer's snapshot in (worker processes).

        *counter_prefix* namespaces everything merged (e.g.
        ``"workers."``) so the receiving process's own per-process
        counters — and the ``cache_stats()``-style views built on them —
        keep their meaning.  Names listed in *gauges* are **levels**,
        not totals: they overwrite (last write wins per namespaced
        name) instead of summing — two workers each reporting a best
        score of 0.9 must not merge into 1.8.  Histograms in *hists*
        merge bucket-wise (exact — see :mod:`repro.obs.hist`).  Spans
        merge verbatim only while this observer is recording.
        """
        gauge_names = set(gauges)
        with self._lock:
            for name, value in counters.items():
                key = counter_prefix + name
                if name in gauge_names:
                    self._counters[key] = value
                    self._gauge_names.add(key)
                else:
                    self._counters[key] = self._counters.get(key, 0) + value
            if hists:
                merge_histogram_maps(self._hists, hists, counter_prefix)
            if self._record_spans:
                self._spans.extend(spans)
            self._epoch += 1

    def merge_snapshot(self, snapshot: ObsSnapshot, counter_prefix: str = "") -> None:
        """:meth:`merge`, taking a whole :class:`ObsSnapshot`."""
        self.merge(
            snapshot.counters,
            snapshot.spans,
            counter_prefix=counter_prefix,
            gauges=snapshot.gauges,
            hists=snapshot.hists,
        )


def merge_snapshots(snapshots: Iterable[ObsSnapshot]) -> ObsSnapshot:
    """Fold many observer snapshots into one, in iteration order.

    The fleet-wide aggregation primitive: counters **sum**, gauges are
    **last-write-wins**, histograms merge **exactly** (bucket indices
    are process-independent — see :mod:`repro.obs.hist`), so quantiles
    computed from the merged snapshot equal quantiles over the
    concatenated per-worker streams.  Spans are dropped (a metrics
    merge is not a trace merge).  Merging K snapshots shipped through
    the control socket must equal merging them in-process —
    ``tests/test_obs_fleet_merge.py`` holds this to the bit.
    """
    merged = Observer()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


#: The process-wide default observer every instrumented module reports to.
OBS = Observer()


def default_observer() -> Observer:
    """The process-wide observer (one per process; workers get their own)."""
    return OBS
