"""The observer: hierarchical timed spans plus named counters/gauges.

One :class:`Observer` per process holds everything the pipeline reports
about itself:

* **spans** — timed, nestable regions opened with
  :meth:`Observer.span` as a context manager.  Nesting is tracked per
  thread (a thread-local stack), finished spans are appended to a
  process-wide list, and each record carries its pid/tid so records
  merged from worker processes stay distinguishable.  Span *recording*
  is off by default; a disabled observer hands out a shared no-op span
  so instrumented code pays only one method call.
* **counters and gauges** — named numeric cells with a uniform
  ``add``/``set_gauge``/``counters``/``reset`` API.  Counters are
  always live (they subsume the pre-obs ``CacheStats``/``EngineStats``
  bookkeeping, which callers expect to work without opting in) and are
  cheap: one lock acquisition per *call site*, never per trace event.

Names are dotted paths, ``<subsystem>.<detail>`` (``artifacts.cache.hits``,
``engine.events``, ``sm.intra.candidates``); ``reset(prefix=...)`` and
the exporters group on those dots.  Worker processes report their
observer's :meth:`snapshot` back to the parent, which folds it in with
:meth:`merge` — counters under a namespace prefix so per-process
semantics survive, spans verbatim (``perf_counter`` is system-wide
monotonic on the platforms we target, so timestamps stay comparable).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

Number = Union[int, float]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, attributed slice of wall-clock time."""

    name: str
    start: float  #: raw ``perf_counter`` seconds (exporters normalise)
    duration: float  #: seconds
    depth: int  #: nesting depth within its thread (0 = top level)
    pid: int
    tid: int
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ObsSnapshot:
    """A point-in-time copy of an observer's counters and spans."""

    counters: Dict[str, Number]
    spans: List[SpanRecord]


class _NullSpan:
    """The shared no-op span handed out while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    """A live span; use as a context manager (exception-safe)."""

    __slots__ = ("_observer", "name", "attrs", "_start", "_depth")

    def __init__(self, observer: "Observer", name: str, attrs: Dict[str, Any]):
        self._observer = observer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0

    def set(self, **attrs) -> "_Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self._observer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = perf_counter() - self._start
        stack = self._observer._stack()
        # Pop *this* span even if an intervening frame misbehaved, so
        # one leak cannot corrupt every later depth.
        if self in stack:
            del stack[stack.index(self) :]
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._observer._finish(self.name, self._start, duration, self._depth, self.attrs)
        return False


class Observer:
    """Process-local spans, counters and gauges (see module docstring)."""

    def __init__(self, record_spans: bool = False) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}
        self._spans: List[SpanRecord] = []
        self._record_spans = record_spans
        self._local = threading.local()

    # -- span recording ------------------------------------------------------

    @property
    def recording(self) -> bool:
        """Whether spans are currently being recorded."""
        return self._record_spans

    def enable(self) -> None:
        """Start recording spans (counters are always live)."""
        self._record_spans = True

    def disable(self) -> None:
        self._record_spans = False

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any):
        """Open a timed span; use as a context manager.

        Attributes identify the work (``benchmark="doduc"``,
        ``scale=2``); more can be attached mid-flight with
        :meth:`_Span.set`.  While recording is disabled this returns
        the shared no-op span.
        """
        if not self._record_spans:
            return NULL_SPAN
        return _Span(self, name, dict(attrs))

    def _finish(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        attrs: Dict[str, Any],
    ) -> None:
        record = SpanRecord(
            name, start, duration, depth, os.getpid(), threading.get_ident(), attrs
        )
        with self._lock:
            self._spans.append(record)

    def spans(self) -> List[SpanRecord]:
        """A copy of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    # -- counters and gauges -------------------------------------------------
    #
    # Concurrency contract (relied on by the service daemon, whose
    # request threads hammer one shared observer): every read-modify-
    # write of ``_counters`` and every append to ``_spans`` happens
    # under ``self._lock``, so concurrent ``add``/``set_gauge``/
    # ``merge``/``snapshot`` calls never lose updates — N threads
    # adding M each always total exactly N*M
    # (tests/test_obs.py::TestConcurrency asserts this).  The
    # ``_record_spans`` flag is read without the lock: it is a single
    # boolean toggled only at enable/disable time, and the worst a
    # stale read can do is drop or record one span at the boundary.

    def add(self, name: str, value: Number = 1) -> None:
        """Increment counter *name* (creating it at 0); thread-safe."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._counters[name] = value

    def counter(self, name: str, default: Number = 0) -> Number:
        with self._lock:
            return self._counters.get(name, default)

    def counters(self, prefix: str = "") -> Dict[str, Number]:
        """A snapshot copy of the counters (optionally prefix-filtered)."""
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    # -- lifecycle -----------------------------------------------------------

    def reset(self, prefix: Optional[str] = None) -> None:
        """Clear state.

        With *prefix*, only counters under that prefix are dropped and
        spans are kept — the isolation the per-subsystem
        ``reset_*_stats()`` shims rely on.  Without, everything goes.
        """
        with self._lock:
            if prefix is None:
                self._counters.clear()
                self._spans.clear()
            else:
                for name in [n for n in self._counters if n.startswith(prefix)]:
                    del self._counters[name]

    def snapshot(self) -> ObsSnapshot:
        """Counters and spans, copied atomically."""
        with self._lock:
            return ObsSnapshot(dict(self._counters), list(self._spans))

    def merge(
        self,
        counters: Mapping[str, Number],
        spans: Iterable[SpanRecord] = (),
        counter_prefix: str = "",
    ) -> None:
        """Fold another observer's snapshot in (worker processes).

        *counter_prefix* namespaces the merged counters (e.g.
        ``"workers."``) so the receiving process's own per-process
        counters — and the ``cache_stats()``-style views built on them —
        keep their meaning.  Spans merge verbatim only while this
        observer is recording.
        """
        with self._lock:
            for name, value in counters.items():
                key = counter_prefix + name
                self._counters[key] = self._counters.get(key, 0) + value
            if self._record_spans:
                self._spans.extend(spans)


#: The process-wide default observer every instrumented module reports to.
OBS = Observer()


def default_observer() -> Observer:
    """The process-wide observer (one per process; workers get their own)."""
    return OBS
