"""Mergeable log-bucketed histograms and a sliding-window rate estimator.

The distribution-aware half of the observer.  Counters answer "how
many"; a :class:`Histogram` answers "how are they spread" — p50/p95/p99
of request latency, trace-scan duration, coalesce wait — without
storing individual samples.

**Bucketing.**  Buckets are geometric: bucket *i* covers
``(GROWTH**i, GROWTH**(i+1)]`` with ``GROWTH = 1.1``.  A quantile is
answered with the geometric midpoint of its bucket, so the relative
error is bounded by ``sqrt(GROWTH) - 1`` ≈ 4.9% — the HDR-histogram
trade: a few hundred sparse integer cells buy 5%-accurate quantiles
over any dynamic range (microseconds to hours).  Non-positive values
land in a dedicated zero bucket (latencies never go negative; a
clamped reading must not poison the log scale).

**Merging.**  Bucket indices depend only on the value, never on the
observing process, so histograms merge exactly: the merge of per-worker
shard histograms equals the histogram of the concatenated stream
(``tests/test_obs_hist.py`` proves this property).  That is what lets
worker snapshots fold into the parent just like counters.

**Rates.**  :class:`RateWindow` keeps per-second event counts over a
sliding window and answers a live events/sec figure — the ``req/s``
gauge on ``/metrics`` — decaying to zero when traffic stops, unlike a
monotonic counter divided by uptime.
"""

from __future__ import annotations

import math
from collections import deque
from time import monotonic
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Geometric bucket growth factor.  ``sqrt(1.1) - 1`` ≈ 4.9% bounds the
#: quantile relative error; bump cautiously — every persisted snapshot
#: records the factor it was built with.
GROWTH = 1.1

_LOG_GROWTH = math.log(GROWTH)

#: Nudge applied before ``floor`` so values lying exactly on a bucket
#: boundary (e.g. ``GROWTH ** k`` recomputed in floating point) index
#: deterministically instead of straddling two buckets across calls.
_EPSILON = 1e-9


def bucket_index(value: float) -> int:
    """The bucket covering *value* (> 0): ``GROWTH**i < value <= GROWTH**(i+1)``."""
    return math.ceil(math.log(value) / _LOG_GROWTH - _EPSILON) - 1


def bucket_upper(index: int) -> float:
    """Inclusive upper bound of bucket *index*."""
    return GROWTH ** (index + 1)


def bucket_midpoint(index: int) -> float:
    """Geometric midpoint of bucket *index* — the quantile representative."""
    return GROWTH ** (index + 0.5)


class Histogram:
    """A mergeable log-bucketed value distribution (see module docstring).

    Not thread-safe on its own; the :class:`~repro.obs.core.Observer`
    serialises every mutation under its lock.
    """

    __slots__ = ("buckets", "zero", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.zero = 0  #: observations <= 0 (kept off the log scale)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            return  # a broken clock reading must not corrupt the tails
        if value <= 0.0:
            self.zero += 1
        else:
            index = bucket_index(value)
            self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def quantile(self, q: float) -> float:
        """The value at quantile *q* in [0, 1], within ~5% relative error.

        Uses the nearest-rank definition (rank ``ceil(q * count)``); the
        answer is the geometric midpoint of the bucket holding that
        rank, clamped into ``[min, max]`` (the clamp only ever moves the
        estimate toward the true value).  Returns 0.0 on an empty
        histogram.
        """
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q * self.count)))
        if rank <= self.zero:
            return 0.0
        seen = self.zero
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(max(bucket_midpoint(index), self.min), self.max)
        return self.max  # unreachable unless counts were mutated externally

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other* in; exact (buckets are process-independent)."""
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.zero += other.zero
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def copy(self) -> "Histogram":
        clone = Histogram()
        clone.buckets = dict(self.buckets)
        clone.zero = self.zero
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    # -- cumulative views and (de)serialisation ------------------------------

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(inclusive upper bound, cumulative count)`` pairs, ascending.

        The zero bucket is folded into every bound (0 <= any positive
        bound), matching Prometheus ``le`` semantics; the ``+Inf``
        bucket is *not* included — it always equals :attr:`count`.
        """
        pairs: List[Tuple[float, int]] = []
        cumulative = self.zero
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            pairs.append((bucket_upper(index), cumulative))
        return pairs

    def to_dict(self) -> dict:
        return {
            "growth": GROWTH,
            "buckets": {str(index): count for index, count in self.buckets.items()},
            "zero": self.zero,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Histogram":
        hist = cls()
        hist.buckets = {
            int(index): int(count)
            for index, count in dict(payload.get("buckets", {})).items()
        }
        hist.zero = int(payload.get("zero", 0))
        hist.count = int(payload.get("count", 0))
        hist.sum = float(payload.get("sum", 0.0))
        minimum = payload.get("min")
        maximum = payload.get("max")
        hist.min = math.inf if minimum is None else float(minimum)
        hist.max = -math.inf if maximum is None else float(maximum)
        return hist

    def __eq__(self, other: object) -> bool:
        """Distribution equality: buckets/counts/extremes exact, ``sum``
        within float tolerance (merge order reassociates the addition)."""
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.buckets == other.buckets
            and self.zero == other.zero
            and self.count == other.count
            and math.isclose(self.sum, other.sum, rel_tol=1e-9, abs_tol=1e-12)
            and self.min == other.min
            and self.max == other.max
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, sum={self.sum:.6g}, "
            f"buckets={len(self.buckets)})"
        )


def quantile_from_counts(
    pairs: Sequence[Tuple[float, float]], q: float
) -> float:
    """Quantile from ``(inclusive upper bound, count)`` pairs.

    *pairs* are **non-cumulative** per-bucket counts on this module's
    geometric grid, ascending by bound — the shape a ``/metrics`` delta
    naturally produces.  The representative is the geometric midpoint
    ``bound / sqrt(GROWTH)``.  Returns 0.0 when the total count is zero.
    """
    total = sum(count for _, count in pairs)
    if total <= 0:
        return 0.0
    rank = min(total, max(1, math.ceil(q * total)))
    seen = 0.0
    for bound, count in sorted(pairs):
        seen += count
        if seen >= rank:
            return bound / math.sqrt(GROWTH)
    return sorted(pairs)[-1][0] / math.sqrt(GROWTH)


class RateWindow:
    """Sliding-window event rate: per-second buckets over *window* seconds.

    ``mark(n)`` files *n* events into the current one-second bucket;
    ``rate()`` answers events/sec averaged over the observed span
    (capped at *window*), so a burst decays to zero *window* seconds
    after traffic stops instead of being diluted forever the way
    ``counter / uptime`` is.  Not thread-safe on its own; the observer
    serialises access.
    """

    __slots__ = ("window", "resolution", "_buckets")

    def __init__(self, window: float = 60.0, resolution: float = 1.0) -> None:
        if window <= 0 or resolution <= 0:
            raise ValueError("window and resolution must be positive")
        self.window = window
        self.resolution = resolution
        #: (bucket ordinal, event count), ascending, at most
        #: window/resolution entries
        self._buckets: Deque[List[float]] = deque()

    def _trim(self, now: float) -> None:
        horizon = now - self.window
        while self._buckets and (self._buckets[0][0] + 1) * self.resolution <= horizon:
            self._buckets.popleft()

    def mark(self, n: float = 1, now: Optional[float] = None) -> None:
        if now is None:
            now = monotonic()
        self._trim(now)
        ordinal = math.floor(now / self.resolution)
        if self._buckets and self._buckets[-1][0] == ordinal:
            self._buckets[-1][1] += n
        else:
            self._buckets.append([ordinal, n])

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the (up to) last *window* seconds."""
        if now is None:
            now = monotonic()
        self._trim(now)
        if not self._buckets:
            return 0.0
        total = sum(count for _, count in self._buckets)
        span = now - self._buckets[0][0] * self.resolution
        span = min(self.window, max(span, self.resolution))
        return total / span


def merge_histogram_maps(
    target: Dict[str, Histogram],
    incoming: Mapping[str, "Histogram | Mapping"],
    prefix: str = "",
) -> None:
    """Fold *incoming* (Histogram objects or their ``to_dict`` forms)
    into *target* under *prefix*; used by :meth:`Observer.merge`."""
    for name, payload in incoming.items():
        hist = payload if isinstance(payload, Histogram) else Histogram.from_dict(payload)
        key = prefix + name
        existing = target.get(key)
        if existing is None:
            target[key] = hist.copy()
        else:
            existing.merge(hist)
