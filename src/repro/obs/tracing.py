"""Distributed trace context: ids, W3C ``traceparent``, active traces.

One *trace* follows one request across every thread and process that
touches it: the front worker that accepted the HTTP connection, the
pool thread that ran the heavy compute, and — for cross-shard requests
— the owning worker reached over its control socket.  The pieces:

* **ids** — a 32-hex-char ``trace_id`` names the whole request; every
  span inside it gets a 16-hex-char ``span_id`` and a ``parent_id``
  pointing at the span that caused it (the enclosing span on the same
  thread, or the remote caller's span across a thread/process hop).
* **traceparent** — the W3C Trace Context wire form,
  ``00-<trace_id>-<span_id>-01``, honoured on inbound HTTP requests
  and carried on the control-socket ``invoke`` hop so an owner
  worker's spans parent correctly under the proxying worker's request
  span.  :func:`parse_traceparent` is strict: anything malformed is
  treated as absent (a fresh trace starts) rather than poisoning logs
  with attacker-controlled bytes.
* **:class:`ActiveTrace`** — the per-request span collector.  The
  observer keeps at most one active trace per thread
  (:meth:`~repro.obs.core.Observer.start_trace`); pool threads and
  control-invoke handlers *adopt* the caller's trace so their spans
  land in the same collection.  Finished traces feed the flight
  recorder (:mod:`repro.obs.flight`), independent of the opt-in
  full-recording span list.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: The only traceparent version we emit.
TRACEPARENT_VERSION = "00"

_HEX = frozenset("0123456789abcdef")

# Ids come straight from the kernel CSPRNG.  ``uuid.uuid4().hex`` reads
# the same 16 urandom bytes but spends ~4x longer massaging them into a
# UUID object first — measurable here, because the always-on flight
# recorder mints three ids on every warm request.
_urandom = os.urandom


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (all-zero is 2^-128 — never checked)."""
    return _urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return _urandom(8).hex()


def _is_hex(text: str, length: int) -> bool:
    return len(text) == length and all(ch in _HEX for ch in text)


def format_traceparent(trace_id: str, span_id: str) -> str:
    """``00-<trace_id>-<span_id>-01`` (sampled flag always set — we only
    propagate context for traces the flight recorder is watching)."""
    return f"{TRACEPARENT_VERSION}-{trace_id}-{span_id}-01"


def parse_traceparent(header: Optional[str]) -> Optional[Tuple[str, str]]:
    """``(trace_id, parent_span_id)`` from a traceparent header, else ``None``.

    Strict by design: wrong field count, non-hex digits, the reserved
    ``ff`` version, or all-zero ids all read as "no context" — the
    server then starts a fresh trace instead of trusting garbage.
    """
    if not header or not isinstance(header, str):
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id = parts[0], parts[1], parts[2]
    if not _is_hex(version, 2) or version == "ff":
        return None
    if not _is_hex(trace_id, 32) or set(trace_id) == {"0"}:
        return None
    if not _is_hex(span_id, 16) or set(span_id) == {"0"}:
        return None
    if not _is_hex(parts[3], 2):
        return None
    return trace_id, span_id


#: Field order of the bare-tuple span form the observer's hot path
#: collects (see ``Observer._finish``); zipped with these keys when a
#: kept trace is exported via :meth:`ActiveTrace.span_dicts`.
SPAN_TUPLE_KEYS = (
    "name",
    "trace_id",
    "span_id",
    "parent_id",
    "start",
    "duration",
    "depth",
    "pid",
    "tid",
    "attrs",
)


class ActiveTrace:
    """The span collection for one in-flight request.

    Thread-safe: the request thread, its pool thread and (on the owner
    side of an ``invoke``) a control handler thread may all finish
    spans into it concurrently.  Safe *without a lock*: the collection
    is append-only, and ``list.append``/``list.extend``/``list(...)``
    are each atomic under the GIL — this object sits on the hot path of
    every request, and a per-request lock allocation plus two acquire/
    release pairs per span is measurable there.  ``notes`` is a small
    free-form side channel (shard routing outcome, request id) the
    access log and the flight recorder read after the request finishes.
    """

    __slots__ = ("trace_id", "remote_parent_id", "pid", "notes", "_spans")

    def __init__(
        self, trace_id: Optional[str] = None, remote_parent_id: Optional[str] = None
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        #: the caller's span id when the context arrived over the wire
        #: (HTTP traceparent or control-socket invoke), else ``None``
        self.remote_parent_id = remote_parent_id
        #: the process this trace was started in — spans finished into
        #: it are stamped with this pid (one getpid per request, not per
        #: span; traces never cross a fork, they exist per-request only)
        self.pid = os.getpid()
        self.notes: Dict[str, Any] = {}
        self._spans: List[Any] = []

    def add_span(self, record: Any) -> None:
        self._spans.append(record)

    def add_span_dicts(self, spans: List[Mapping[str, Any]]) -> None:
        """Fold already-serialised span dicts in (remote owner spans)."""
        self._spans.extend(spans)

    def spans(self) -> List[Any]:
        return list(self._spans)

    def span_dicts(self) -> List[Dict[str, Any]]:
        """Every finished span as a JSON-able dict, completion order.

        Accepts all three collected forms: wire dicts (merged remote
        spans), bare tuples (the observer's hot path) and
        :class:`~repro.obs.core.SpanRecord` objects (full recording).
        """
        spans = list(self._spans)
        out = []
        for span in spans:
            if isinstance(span, dict):
                out.append(span)
            elif isinstance(span, tuple):
                out.append(dict(zip(SPAN_TUPLE_KEYS, span)))
            else:
                out.append(span_to_dict(span))
        return out

    def __len__(self) -> int:
        return len(self._spans)


def span_to_dict(span: Any) -> Dict[str, Any]:
    """A :class:`~repro.obs.core.SpanRecord` as a JSON-able dict.

    The wire form spans travel in: flight-recorder entries, control
    ``trace`` replies, and ``GET /trace/{id}`` stitched documents.
    """
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "duration": span.duration,
        "depth": span.depth,
        "pid": span.pid,
        "tid": span.tid,
        "attrs": dict(span.attrs),
    }
