"""A stdlib sampling wall-clock profiler (collapsed-stack output).

``sys._current_frames()`` hands back every live thread's current frame
without stopping the world; ticking it at ~100 Hz and counting the
observed stacks yields a wall-clock profile whose overhead is a few
percent of one core *only while sampling* — safe to expose on a live
daemon (``GET /debug/profile?seconds=N``) and to wrap around offline
experiment runs (``python -m repro profile -- <experiment>``).

Output is Brendan Gregg's *collapsed stack* format — one line per
distinct stack, outermost frame first, frames joined by ``;``, a
trailing sample count — the input format of every flamegraph renderer
(``flamegraph.pl``, speedscope, pyroscope).

Safety notes (also in docs/architecture.md):

* sampling is **serialised** per process: a second concurrent profile
  request is refused (:class:`ProfilerBusy` → HTTP 429) rather than
  doubling the overhead;
* duration is clamped to :data:`MAX_SECONDS` so a typo'd query string
  cannot pin the sampler (and its request thread) for an hour;
* the sampler only *reads* frames — it never suspends threads, so a
  sample can straddle a context switch; counts are statistical, which
  is the point.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from typing import Dict, Iterable, Optional, Tuple

#: Default sampling interval: 100 Hz.
DEFAULT_INTERVAL = 0.01

#: Default and maximum profile durations (seconds) for the HTTP endpoint.
DEFAULT_SECONDS = 2.0
MAX_SECONDS = 30.0

#: One profile at a time per process.
_PROFILE_LOCK = threading.Lock()

Stack = Tuple[str, ...]


class ProfilerBusy(RuntimeError):
    """Another profile is already running in this process."""


def _frame_label(frame) -> str:
    """``module:function`` for one frame (basename keeps lines short)."""
    code = frame.f_code
    module = os.path.basename(code.co_filename)
    if module.endswith(".py"):
        module = module[:-3]
    return f"{module}:{code.co_name}"


def _collect_stacks(
    counts: "Counter[Stack]", skip_threads: Iterable[int]
) -> None:
    """One sampling tick: fold every thread's current stack into *counts*."""
    skip = set(skip_threads)
    skip.add(threading.get_ident())
    for tid, frame in sys._current_frames().items():
        if tid in skip:
            continue
        stack = []
        while frame is not None:
            stack.append(_frame_label(frame))
            frame = frame.f_back
        if stack:
            counts[tuple(reversed(stack))] += 1


def sample_stacks(
    seconds: float,
    interval: float = DEFAULT_INTERVAL,
    skip_threads: Iterable[int] = (),
) -> "Counter[Stack]":
    """Sample every thread for *seconds*, inline on the calling thread.

    The calling thread is excluded from its own samples (it would only
    ever show this sampling loop).  Raises :class:`ProfilerBusy` if a
    profile is already running in this process.
    """
    if not _PROFILE_LOCK.acquire(blocking=False):
        raise ProfilerBusy("a profile is already running in this process")
    try:
        counts: "Counter[Stack]" = Counter()
        deadline = time.monotonic() + max(0.0, seconds)
        while time.monotonic() < deadline:
            _collect_stacks(counts, skip_threads)
            time.sleep(interval)
        return counts
    finally:
        _PROFILE_LOCK.release()


def collapsed_stacks(counts: Dict[Stack, int]) -> str:
    """*counts* in collapsed-stack text form, heaviest stacks first."""
    lines = [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def profile_collapsed(
    seconds: float = DEFAULT_SECONDS, interval: float = DEFAULT_INTERVAL
) -> str:
    """Sample for *seconds* (clamped to [0.1, MAX_SECONDS]) and return
    collapsed-stack text — the ``GET /debug/profile`` body.

    Sampling runs on a helper thread so the *calling* thread is
    observed too (on the daemon that thread is one of the request
    pool — seeing it park in this sleep is truthful).
    """
    seconds = min(MAX_SECONDS, max(0.1, seconds))
    sampler = StackSampler(interval).start()
    try:
        time.sleep(seconds)
    finally:
        return sampler.stop()  # noqa: B012 — stop() must always run


class StackSampler:
    """A background sampler wrapping a foreground workload (offline runs).

    ::

        sampler = StackSampler().start()
        run_the_experiment()
        text = sampler.stop()

    The sampler thread excludes itself; everything else — including the
    calling thread running the workload — is sampled.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        self.interval = interval
        self.counts: "Counter[Stack]" = Counter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            _collect_stacks(self.counts, ())

    def start(self) -> "StackSampler":
        if not _PROFILE_LOCK.acquire(blocking=False):
            raise ProfilerBusy("a profile is already running in this process")
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> str:
        """Stop sampling; returns the collapsed-stack text."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        _PROFILE_LOCK.release()
        return collapsed_stacks(self.counts)
