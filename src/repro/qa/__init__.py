"""Invariant-driven journey QA + chaos harness for the service layer.

``python -m repro qa run`` drives real end-to-end journeys against a
live daemon/fleet subprocess while evaluating a catalog of
cross-system invariants after every step, then repeats them under
injected faults (worker kill, cache corruption, pool saturation).
See ``docs/architecture.md`` ("Journey QA & chaos") for the anatomy.
"""

from .chaos import CHAOS_SCENARIOS, ChaosScenario
from .core import (
    CRITICAL,
    SKIP,
    WARNING,
    Invariant,
    JourneyError,
    Skip,
    Violation,
    check_invariants,
    expect,
)
from .invariants import default_invariants, sabotage_invariant
from .journeys import JOURNEYS, Journey
from .report import render_text, write_json
from .runner import JourneyResult, run_journey, run_suite
from .world import CallRecord, LiveWorld

__all__ = [
    "CHAOS_SCENARIOS",
    "CRITICAL",
    "ChaosScenario",
    "CallRecord",
    "Invariant",
    "JOURNEYS",
    "Journey",
    "JourneyError",
    "JourneyResult",
    "LiveWorld",
    "SKIP",
    "Skip",
    "Violation",
    "WARNING",
    "check_invariants",
    "default_invariants",
    "expect",
    "render_text",
    "run_journey",
    "run_suite",
    "sabotage_invariant",
    "write_json",
]
