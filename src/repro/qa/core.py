"""Invariant machinery: named cross-system checks over a ``World``.

The venomqa idea: a journey drives *real* traffic against a composition
of live systems (the ``World``), and after every step a catalog of
:class:`Invariant` objects is evaluated against everything the world
can see — client-observed responses, the daemon's merged ``/stats``
counters, the Prometheus exposition, per-worker control-socket
snapshots, the on-disk artifact cache, the JSON access-log stream.  An
invariant is a *relationship between systems* ("requests counted ==
access-log lines written"), not a unit assertion, so a violation means
two components disagree about what just happened.

An invariant's ``check(world)`` returns:

``True`` / ``None``
    holds.
``False``
    violated (no extra detail).
a ``dict``
    violated, with the dict as the divergent-values detail.
:data:`SKIP`
    not evaluable right now (e.g. a torn read was detected) — recorded
    as a skip, not a pass.
raises
    violated; the exception is captured as detail.

``requires`` names world *conditions* that must all be present for the
check to be meaningful; chaos scenarios withdraw conditions (killing a
worker withdraws ``stable_fleet``: that worker's in-memory counters
died with it, so exact counter==log equalities no longer hold while
the access-log lines it wrote persist).  A check whose requirements
are not met is recorded as a skip with the missing conditions named.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

#: Sentinel an invariant check returns when the current world state is
#: not evaluable (torn read, no samples yet); recorded as a skip.
SKIP = object()

CRITICAL = "critical"
WARNING = "warning"

#: World conditions invariants may require.  Chaos withdraws them:
#:
#: ``accepting``
#:     the daemon answers JSON endpoints (withdrawn while draining).
#: ``stable_fleet``
#:     no worker died since the journey started (exact counter
#:     equalities need every worker's in-memory state to have survived).
#: ``pristine_cache``
#:     nobody corrupted/evicted disk-cache entries behind the daemon's
#:     back, so disk accounting is exact.
#: ``fleet``
#:     more than one worker (per-worker vs merged comparisons).
CONDITIONS = ("accepting", "stable_fleet", "pristine_cache", "fleet")


@dataclass(frozen=True)
class Invariant:
    """One named cross-system check evaluated after every journey step."""

    name: str
    check: Callable[[Any], Any]
    severity: str = CRITICAL
    description: str = ""
    requires: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.severity not in (CRITICAL, WARNING):
            raise ValueError(f"severity must be critical|warning, got {self.severity!r}")
        object.__setattr__(self, "requires", frozenset(self.requires))


@dataclass
class Violation:
    """An invariant that did not hold after a journey step."""

    journey: str
    step: str
    invariant: str
    severity: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "journey": self.journey,
            "step": self.step,
            "invariant": self.invariant,
            "severity": self.severity,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        parts = [f"[{self.severity}] {self.journey}/{self.step}: {self.invariant}"]
        if self.detail:
            kv = ", ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
            parts.append(f"({kv})")
        return " ".join(parts)


@dataclass
class Skip:
    """An invariant that could not be evaluated after a journey step."""

    journey: str
    step: str
    invariant: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "journey": self.journey,
            "step": self.step,
            "invariant": self.invariant,
            "reason": self.reason,
        }


def check_invariants(
    world: Any,
    invariants: Iterable[Invariant],
    journey: str,
    step: str,
) -> Tuple[List[Violation], List[Skip], List[str]]:
    """Evaluate *invariants* against *world*; nothing raises out.

    Returns ``(violations, skips, checked_names)`` where
    *checked_names* lists the invariants that actually ran (passed or
    violated — skips excluded).
    """
    violations: List[Violation] = []
    skips: List[Skip] = []
    checked: List[str] = []
    conditions = getattr(world, "conditions", frozenset())
    for invariant in invariants:
        missing = invariant.requires - frozenset(conditions)
        if missing:
            skips.append(
                Skip(journey, step, invariant.name,
                     f"missing conditions: {', '.join(sorted(missing))}")
            )
            continue
        try:
            result = invariant.check(world)
        except Exception as error:  # noqa: BLE001 — a crashed check is a finding
            violations.append(
                Violation(journey, step, invariant.name, invariant.severity,
                          {"check_raised": f"{type(error).__name__}: {error}"})
            )
            checked.append(invariant.name)
            continue
        if result is SKIP:
            skips.append(Skip(journey, step, invariant.name, "check not evaluable"))
            continue
        checked.append(invariant.name)
        if result is True or result is None:
            continue
        detail = dict(result) if isinstance(result, dict) else {}
        violations.append(
            Violation(journey, step, invariant.name, invariant.severity, detail)
        )
    return violations, skips, checked


class JourneyError(Exception):
    """A journey step's own expectation failed (distinct from an
    invariant violation: the journey could not even do what it set out
    to do, so downstream invariant results are unreliable)."""


def expect(condition: bool, message: str, **detail: Any) -> None:
    """Journey-level assertion; raises :class:`JourneyError`."""
    if not condition:
        if detail:
            kv = ", ".join(f"{k}={v!r}" for k, v in sorted(detail.items()))
            message = f"{message} ({kv})"
        raise JourneyError(message)
