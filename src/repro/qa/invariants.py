"""The cross-system invariant catalog.

Each invariant relates *independent* observations of the same traffic:
what the recording client saw, what the merged ``/stats`` counters
say, what the Prometheus exposition's histogram buckets say, what the
access-log stream wrote, what each worker's control-socket snapshot
holds, and what is physically on disk.  A violation therefore means
two subsystems disagree about reality, which no unit test can show.

Counter semantics the checks lean on (see ``service/coalesce.py``,
``service/server.py``, ``workloads/artifacts.py``):

- ``service.requests.<route>`` bumps once per HTTP request in the
  dispatch ``finally`` — before the access-log line is written, so a
  settled log implies settled counters.
- ``service.cache.<name>.{hits,misses,coalesced}`` bump only on
  *successful* results; an erroring compute (including a 429 shed)
  bypasses cache accounting, and coalesced followers of an erroring
  leader re-raise without counting.
- ``service.coalesce.hits`` equals the sum of per-cache ``coalesced``.
- ``artifacts.cache.stores`` writes exactly one ``.trace`` + ``.aux``
  pair; ``artifacts.cache.bytes_written`` is their exact byte total.
- Proxied cross-shard requests bump HTTP counters on the fronting
  worker and cache counters on the owner; the fleet merge sums both,
  so merged accounting is proxy-agnostic.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .core import SKIP, WARNING, Invariant
from .world import HEAVY_ROUTES, LiveWorld

#: Upper slack for server-vs-client latency comparisons: the histogram
#: grid's ~4.9% relative error (GROWTH=1.1) plus headroom for the
#: client measuring a strictly longer interval than the server.
LATENCY_SLACK = 1.15

VALID_SOURCES = {"lru", "computed", "coalesced"}

#: Counter names compared between merged /stats and per-worker
#: snapshots.  Restricted to names journey traffic touches and probe
#: traffic does not, so the set is stable between two control sweeps
#: when no journey request is in flight.
MERGE_COMPARED_COUNTERS = tuple(
    [f"service.requests.{route}" for route in HEAVY_ROUTES]
    + [
        f"service.cache.{cache}.{kind}"
        for cache in ("artifacts", "predict", "planner", "plan", "models")
        for kind in ("hits", "misses", "coalesced")
    ]
    + [
        "service.coalesce.hits",
        "artifacts.cache.stores",
        "learn.train.requests",
        "learn.train.fits",
    ]
)

#: /machine error codes raised *after* the planner cache was consulted
#: (body validation passed, the planner was built/fetched, then the
#: site/threshold lookup failed) — these calls still count one planner
#: cache transaction.
MACHINE_POST_PLANNER_CODES = {"unknown_site", "no_machine", "no_improvable_branch"}


def _answered(world: LiveWorld) -> List[Any]:
    return [record for record in world.calls if record.status is not None]


# -- contract invariants (no conditions required) ----------------------------


def check_envelope_v1(world: LiveWorld) -> Any:
    """Every non-raw JSON response is a well-formed v1 envelope whose
    ``ok`` agrees with the HTTP status; 429/503 carry ``retry_after``."""
    for record in _answered(world):
        if record.raw:
            continue  # explicitly requested the legacy shape
        doc = record.document
        if not isinstance(doc, dict):
            return {"step": record.step, "path": record.path, "body": repr(doc)[:200]}
        ok_expected = 200 <= record.status < 300
        if doc.get("v") != 1 or doc.get("ok") is not ok_expected:
            return {
                "step": record.step, "path": record.path, "status": record.status,
                "v": doc.get("v"), "ok": doc.get("ok"), "ok_expected": ok_expected,
            }
        if ok_expected and "data" not in doc:
            return {"step": record.step, "path": record.path, "missing": "data"}
        if not ok_expected:
            error = doc.get("error")
            if not isinstance(error, dict) or not error.get("code") or not error.get("message"):
                return {"step": record.step, "path": record.path, "error": error}
            if record.status in (429, 503) and "retry_after" not in error:
                return {
                    "step": record.step, "path": record.path,
                    "status": record.status, "missing": "error.retry_after",
                }
    return True


def check_request_id_echoed(world: LiveWorld) -> Any:
    """The server echoes the client's X-Request-Id verbatim."""
    for record in _answered(world):
        if record.echoed_id != record.request_id:
            return {
                "step": record.step, "path": record.path,
                "sent": record.request_id, "echoed": record.echoed_id,
            }
    return True


def check_source_field_valid(world: LiveWorld) -> Any:
    """Every heavy 200 names how it was served: lru|computed|coalesced."""
    for route in HEAVY_ROUTES:
        for record in world.calls_for(route, statuses=(200,)):
            if record.raw:
                continue
            source = record.data.get("source") if isinstance(record.data, dict) else None
            if source not in VALID_SOURCES:
                return {"step": record.step, "route": route, "source": source}
    return True


def check_backpressure_contract(world: LiveWorld) -> Any:
    """Shed requests are structured 429s: code ``overloaded``, an
    in-band ``retry_after``, and the overload counter accounts for
    them — at least one shed counted, never more counted than clients
    saw (coalesced followers share a leader's 429 without counting)."""
    rejected = [r for r in _answered(world) if r.status == 429]
    for record in rejected:
        code = record.error_doc.get("code")
        if code != "overloaded":
            return {"step": record.step, "status": 429, "code": code}
    if "accepting" in world.conditions and "stable_fleet" in world.conditions:
        counted = world.counter_delta(world.counters(), "service.rejected.overload")
        if rejected and not counted:
            return {"client_429s": len(rejected), "rejected_overload_delta": counted}
        if counted > len(rejected):
            return {"client_429s": len(rejected), "rejected_overload_delta": counted}
    return True


def check_drain_contract(world: LiveWorld) -> Any:
    """While draining: JSON endpoints answer a structured 503
    (``draining``) but ``/metrics`` stays live for the final scrape."""
    if not world.draining:
        return SKIP
    for record in _answered(world):
        if record.status == 503 and not record.raw:
            code = record.error_doc.get("code")
            if code != "draining":
                return {"step": record.step, "status": 503, "code": code}
    status, document = world.probe_raw("GET", "/healthz")
    if status != 503:
        return {"probe": "GET /healthz", "status": status, "expected": 503}
    error = document.get("error", {}) if isinstance(document, dict) else {}
    if error.get("code") != "draining":
        return {"probe": "GET /healthz", "code": error.get("code")}
    metrics_status = world.probe_metrics_status()
    if metrics_status != 200:
        return {"probe": "GET /metrics", "status": metrics_status, "expected": 200}
    return True


# -- traffic accounting (need a live /stats and an intact fleet) -------------


def check_access_log_complete(world: LiveWorld) -> Any:
    """Every answered journey request has exactly one access-log line,
    with matching status and route."""
    by_id: Dict[str, List[dict]] = {}
    for entry in world.access_entries():
        by_id.setdefault(str(entry.get("request_id")), []).append(entry)
    for record in _answered(world):
        lines = by_id.get(record.request_id, [])
        if len(lines) != 1:
            return {
                "step": record.step, "request_id": record.request_id,
                "lines": len(lines), "expected": 1,
            }
        line = lines[0]
        if line.get("status") != record.status or line.get("route") != record.route:
            return {
                "step": record.step, "request_id": record.request_id,
                "client": {"status": record.status, "route": record.route},
                "log": {"status": line.get("status"), "route": line.get("route")},
            }
    return True


def check_requests_counter_matches_log(world: LiveWorld) -> Any:
    """Per heavy route: merged request counter == access-log lines ==
    recorded client calls.  Three systems, one number."""
    counters = world.counters()
    entries = world.access_entries()
    for route in HEAVY_ROUTES:
        recorded = len(world.calls_for(route, statuses=None))
        recorded_answered = len(_answered_route(world, route))
        if recorded != recorded_answered:
            # transport-failed calls make exact accounting undecidable
            return SKIP
        counted = world.counter_delta(counters, f"service.requests.{route}")
        logged = sum(1 for e in entries if e.get("route") == route)
        if not (recorded == counted == logged):
            return {
                "route": route, "client_calls": recorded,
                "stats_counter_delta": counted, "access_log_lines": logged,
            }
    return True


def _answered_route(world: LiveWorld, route: str) -> List[Any]:
    return [r for r in world.calls_for(route) if r.status is not None]


def check_cache_accounting(world: LiveWorld) -> Any:
    """Per compute cache: hits + misses + coalesced == successful
    requests through it.  Errors (including 429 sheds) bypass cache
    accounting entirely, so only 200s count."""
    counters = world.counters()

    def cache_total(cache: str) -> float:
        return sum(
            world.counter_delta(counters, f"service.cache.{cache}.{kind}")
            for kind in ("hits", "misses", "coalesced")
        )

    for route, cache in (("artifacts", "artifacts"), ("predict", "predict"),
                         ("plan", "plan")):
        expected = len(world.calls_for(route, statuses=(200,)))
        observed = cache_total(cache)
        if observed != expected:
            return {
                "cache": cache, "route": route,
                "successful_calls": expected, "cache_transactions": observed,
            }
    # Planners: consulted by every /machine call that survives body
    # validation (200 or a post-planner 404) and by every /plan miss.
    machine_valid = len(world.calls_for("machine", statuses=(200,)))
    for record in world.calls_for("machine"):
        if record.status is not None and record.status != 200:
            if record.error_doc.get("code") in MACHINE_POST_PLANNER_CODES:
                machine_valid += 1
    plan_misses = world.counter_delta(counters, "service.cache.plan.misses")
    expected = machine_valid + plan_misses
    observed = cache_total("planner")
    if observed != expected:
        return {
            "cache": "planner", "machine_transactions": machine_valid,
            "plan_misses": plan_misses, "cache_transactions": observed,
        }
    return True


def check_learn_accounting(world: LiveWorld) -> Any:
    """The training pipeline's three ledgers agree: successful client
    ``/train`` calls == access-log train 200s == ``learn.train.requests``;
    every models-cache miss ran exactly one fit; and models-cache
    transactions are exactly the train 200s plus the learned ``/predict``
    responses that actually computed (lru/coalesced predicts reuse the
    model without consulting the models cache)."""
    train_records = world.calls_for("train")
    if any(record.status is None for record in train_records):
        return SKIP  # transport-failed train: server-side count unknowable
    train_200 = len(world.calls_for("train", statuses=(200,)))
    counters = world.counters()
    requested = world.counter_delta(counters, "learn.train.requests")
    logged = sum(
        1
        for entry in world.access_entries()
        if entry.get("route") == "train" and entry.get("status") == 200
    )
    if not (train_200 == requested == logged):
        return {
            "client_train_200s": train_200,
            "learn_train_requests_delta": requested,
            "access_log_train_200s": logged,
        }
    fits = world.counter_delta(counters, "learn.train.fits")
    model_misses = world.counter_delta(counters, "service.cache.models.misses")
    if fits != model_misses:
        return {"train_fits_delta": fits, "models_cache_misses_delta": model_misses}
    learned_computed = sum(
        1
        for record in world.calls_for("predict", statuses=(200,))
        if isinstance(record.body, dict)
        and str(record.body.get("predictor", "")).startswith("learned-")
        and isinstance(record.data, dict)
        and record.data.get("source") == "computed"
    )
    model_total = sum(
        world.counter_delta(counters, f"service.cache.models.{kind}")
        for kind in ("hits", "misses", "coalesced")
    )
    expected = train_200 + learned_computed
    if model_total != expected:
        return {
            "train_200s": train_200,
            "learned_predicts_computed": learned_computed,
            "models_cache_transactions": model_total,
        }
    return True


def check_coalesce_accounting(world: LiveWorld) -> Any:
    """Responses stamped ``coalesced`` — each a distinct X-Request-Id in
    the access log — match ``service.coalesce.hits`` exactly."""
    coalesced = [
        record
        for route in HEAVY_ROUTES
        for record in world.calls_for(route, statuses=(200,))
        if isinstance(record.data, dict) and record.data.get("source") == "coalesced"
    ]
    ids = [record.request_id for record in coalesced]
    if len(set(ids)) != len(ids):
        return {"duplicate_request_ids": len(ids) - len(set(ids))}
    logged = {e.get("request_id") for e in world.access_entries()}
    missing = [rid for rid in ids if rid not in logged]
    if missing:
        return {"coalesced_ids_missing_from_log": missing[:5]}
    counted = world.counter_delta(world.counters(), "service.coalesce.hits")
    if counted != len(coalesced):
        return {
            "client_coalesced_responses": len(coalesced),
            "coalesce_hits_delta": counted,
        }
    return True


def check_latency_histogram_agreement(world: LiveWorld) -> Any:
    """Per heavy route, the ``/metrics`` latency histogram grew by
    exactly one observation per request, and its p99 stays within the
    grid's error bound of the slowest client-observed latency."""
    parsed = world.metrics_parsed()
    from ..obs.hist import quantile_from_counts

    for route in HEAVY_ROUTES:
        records = _answered_route(world, route)
        if len(records) != len(world.calls_for(route)):
            return SKIP  # transport-failed call: server-side count unknowable
        delta = world.route_bucket_delta(route, parsed)
        observed = sum(count for _, count in delta)
        if observed != len(records):
            return {
                "route": route, "client_calls": len(records),
                "histogram_delta_count": observed,
            }
        if records:
            server_p99 = quantile_from_counts(delta, 0.99)
            client_max = max(record.latency_s for record in records)
            if server_p99 > client_max * LATENCY_SLACK:
                return {
                    "route": route,
                    "server_p99_s": round(server_p99, 6),
                    "client_max_s": round(client_max, 6),
                    "allowed_slack": LATENCY_SLACK,
                }
    return True


def check_disk_cache_consistent(world: LiveWorld) -> Any:
    """Disk accounting is exact: stores == new ``.trace`` files ==
    interpreter runs == disk-cache misses, and bytes written == bytes
    that appeared in the cache directory."""
    counters = world.counters()
    stores = world.counter_delta(counters, "artifacts.cache.stores")
    misses = world.counter_delta(counters, "artifacts.cache.misses")
    runs = world.counter_delta(counters, "artifacts.interpreter.runs")
    trace_files = world.disk_trace_delta()
    if not (stores == misses == runs == trace_files):
        return {
            "stores_delta": stores, "misses_delta": misses,
            "interpreter_runs_delta": runs, "new_trace_files": trace_files,
        }
    bytes_written = world.counter_delta(counters, "artifacts.cache.bytes_written")
    disk_bytes = world.disk_bytes_delta()
    if bytes_written != disk_bytes:
        return {"bytes_written_delta": bytes_written, "disk_bytes_delta": disk_bytes}
    return True


def check_service_vitals_sane(world: LiveWorld) -> Any:
    """Levels stay physical: the probe itself is in flight, the queue
    never exceeds its capacity, uptime is positive.

    Uptime is deliberately *not* checked for monotonicity: ``/stats``
    reports the answering worker's uptime, and successive scrapes can
    land on different workers (or a freshly respawned one).
    """
    health = world.probe_healthz()
    if health.get("in_flight", 0) < 1:  # the probe request itself
        return {"in_flight": health.get("in_flight")}
    stats = world.stats()
    service = stats.get("service", {})
    depth = service.get("queue_depth", 0)
    capacity = service.get("queue_capacity", 0)
    if not (0 <= depth <= capacity):
        return {"queue_depth": depth, "queue_capacity": capacity}
    if float(stats.get("uptime_seconds", 0.0)) <= 0:
        return {"uptime_seconds": stats.get("uptime_seconds")}
    return True


def check_trace_complete(world: LiveWorld) -> Any:
    """Every recent heavy 200's envelope trace id resolves via
    ``GET /trace/{id}`` to one stitched span tree: a single root,
    acyclic parent edges, spans from >= 2 worker pids when the request
    was proxied cross-shard, and a complete single-worker tree when the
    owner was unreachable (``fallback_local``).

    The QA fleet runs at ``--trace-sample 1``, so on a stable fleet a
    404 is itself a violation; after a worker kill the dead worker's
    ring is gone and a 404 is tolerated.
    """
    stable = "stable_fleet" in world.conditions
    verified = world.notes.setdefault("traces_verified", set())
    candidates = [
        record
        for route in HEAVY_ROUTES
        for record in world.calls_for(route, statuses=(200,))
        if not record.raw
    ][-8:]
    for record in candidates:
        doc = record.document if isinstance(record.document, dict) else {}
        trace_id = doc.get("trace_id")
        if not isinstance(trace_id, str) or len(trace_id) != 32:
            return {
                "step": record.step, "path": record.path,
                "envelope_trace_id": trace_id,
            }
        if trace_id in verified:
            continue
        try:
            status, envelope = world.trace_doc(trace_id)
        except OSError:
            return SKIP  # probe transport failure: nothing to compare
        if status == 404:
            if stable:
                return {
                    "step": record.step, "trace_id": trace_id,
                    "lookup_status": 404,
                    "note": "sample rate is 1.0 and the fleet is stable; "
                            "every recent trace must be retained",
                }
            continue  # a killed worker took its flight ring with it
        if status != 200:
            return {"step": record.step, "trace_id": trace_id,
                    "lookup_status": status}
        data = envelope.get("data") if isinstance(envelope, dict) else None
        data = data if isinstance(data, dict) else {}
        spans = [s for s in data.get("spans") or [] if isinstance(s, dict)]
        if not spans:
            return {"trace_id": trace_id, "spans": 0}
        ids = [s.get("span_id") for s in spans]
        if len(set(ids)) != len(ids) or None in ids:
            return {"trace_id": trace_id, "span_ids": ids[:10],
                    "note": "span ids must be present and distinct"}
        by_id = {s["span_id"]: s for s in spans}
        for span in spans:
            node, hops = span, 0
            while node is not None:
                hops += 1
                if hops > len(spans):
                    return {"trace_id": trace_id,
                            "parent_cycle_at": span.get("span_id")}
                node = by_id.get(node.get("parent_id"))
        roots = [s for s in spans if s.get("parent_id") not in by_id]
        if len(roots) != 1:
            return {
                "trace_id": trace_id,
                "roots": [s.get("name") for s in roots],
                "note": "a stitched trace has exactly one root span",
            }
        notes = data.get("notes") or {}
        pids = {s.get("pid") for s in spans}
        if notes.get("proxied") and stable and len(pids) < 2:
            return {
                "trace_id": trace_id, "proxied": True,
                "pids": sorted(pids),
                "note": "a cross-shard trace must carry both workers' spans",
            }
        if notes.get("fallback_local") and len(pids) != 1:
            return {
                "trace_id": trace_id, "fallback_local": True,
                "pids": sorted(pids),
                "note": "a fallback-local request never leaves its worker",
            }
        verified.add(trace_id)
    return True


# -- fleet invariants --------------------------------------------------------


def check_fleet_roster_sane(world: LiveWorld) -> Any:
    """/fleet accounting closes: alive + unreachable == workers, every
    entry carries a shard in range and a monotonic ``as_of``."""
    doc = world.fleet_doc()
    if doc.get("workers") != world.workers:
        return {"reported_workers": doc.get("workers"), "expected": world.workers}
    alive = doc.get("alive", 0)
    unreachable = doc.get("unreachable", [])
    if alive + len(unreachable) != world.workers:
        return {"alive": alive, "unreachable": unreachable, "workers": world.workers}
    if not isinstance(doc.get("as_of"), int):
        return {"as_of": doc.get("as_of")}
    for entry in doc.get("fleet", []):
        shard = entry.get("shard")
        if not isinstance(shard, int) or not 0 <= shard < world.workers:
            return {"entry_shard": shard, "workers": world.workers}
        if not isinstance(entry.get("as_of"), int):
            return {"shard": shard, "as_of": entry.get("as_of")}
    return True


def check_fleet_merge_exact(world: LiveWorld) -> Any:
    """Merged ``/stats`` counters equal the sum of per-worker
    control-socket snapshots — exactly, not approximately.

    Torn-read protocol: sweep every worker's snapshot (each carries an
    ``as_of`` epoch), scrape the merged ``/stats``, sweep again.  If any
    non-answering worker's epoch moved, or the answering worker's
    journey counters moved, something was writing mid-comparison and
    the check is SKIPped rather than reporting a phantom divergence.
    """
    try:
        sweep1 = world.worker_snapshots()
    except Exception:  # noqa: BLE001 — unreachable worker mid-chaos
        return SKIP
    stats = world.stats()
    answered_by = stats.get("fleet", {}).get("answered_by")
    try:
        sweep2 = world.worker_snapshots()
    except Exception:  # noqa: BLE001
        return SKIP
    if set(sweep1) != set(sweep2) or len(sweep1) != world.workers:
        return SKIP
    for shard in sweep1:
        if shard == answered_by:
            continue
        if sweep1[shard].get("as_of") != sweep2[shard].get("as_of"):
            return SKIP  # a peer mutated mid-comparison: torn read
    counters1 = {
        shard: dict(reply.get("snapshot", {}).get("counters", {}))
        for shard, reply in sweep1.items()
    }
    if answered_by in counters1:
        answering2 = dict(sweep2[answered_by].get("snapshot", {}).get("counters", {}))
        for name in MERGE_COMPARED_COUNTERS:
            if counters1[answered_by].get(name, 0) != answering2.get(name, 0):
                return SKIP  # the answering worker took journey traffic mid-scrape
    merged = stats.get("counters", {})
    for name in MERGE_COMPARED_COUNTERS:
        total = sum(counters.get(name, 0) for counters in counters1.values())
        if merged.get(name, 0) != total:
            return {
                "counter": name,
                "merged_stats_value": merged.get(name, 0),
                "sum_of_worker_snapshots": total,
                "per_worker": {s: c.get(name, 0) for s, c in counters1.items()},
            }
    return True


# -- catalog -----------------------------------------------------------------


def default_invariants() -> List[Invariant]:
    """The full catalog, ordered cheapest-first."""
    return [
        Invariant(
            "envelope.v1_contract", check_envelope_v1,
            description="every JSON response is a well-formed v1 envelope",
        ),
        Invariant(
            "http.request_id_echoed", check_request_id_echoed,
            description="X-Request-Id round-trips verbatim",
        ),
        Invariant(
            "cache.source_field_valid", check_source_field_valid,
            description="heavy 200s carry source in {lru, computed, coalesced}",
        ),
        Invariant(
            "backpressure.contract", check_backpressure_contract,
            description="429s are structured and the overload counter accounts for them",
        ),
        Invariant(
            "drain.contract", check_drain_contract,
            description="draining: JSON 503s with code=draining, /metrics stays live",
        ),
        Invariant(
            "vitals.sane", check_service_vitals_sane,
            severity=WARNING,
            description="in-flight/queue/uptime levels stay physical",
            requires=frozenset({"accepting"}),
        ),
        Invariant(
            "log.access_log_complete", check_access_log_complete,
            description="one access-log line per answered request, status+route agree",
            requires=frozenset({"accepting", "stable_fleet"}),
        ),
        Invariant(
            "counters.requests_match_log", check_requests_counter_matches_log,
            description="per route: client calls == /stats counter == access-log lines",
            requires=frozenset({"accepting", "stable_fleet"}),
        ),
        Invariant(
            "counters.cache_accounting", check_cache_accounting,
            description="hits+misses+coalesced == successful requests per cache",
            requires=frozenset({"accepting", "stable_fleet"}),
        ),
        Invariant(
            "counters.learn_accounting", check_learn_accounting,
            description="train 200s == learn.train.requests == log; fits == model misses",
            requires=frozenset({"accepting", "stable_fleet"}),
        ),
        Invariant(
            "counters.coalesce_vs_log", check_coalesce_accounting,
            description="coalesce.hits == coalesced responses, all distinct ids in log",
            requires=frozenset({"accepting", "stable_fleet"}),
        ),
        Invariant(
            "metrics.latency_agreement", check_latency_histogram_agreement,
            description="/metrics bucket deltas match client call counts and bounds",
            requires=frozenset({"accepting", "stable_fleet"}),
        ),
        Invariant(
            "disk.cache_consistent", check_disk_cache_consistent,
            description="stores/misses/bytes counters match files on disk exactly",
            requires=frozenset({"accepting", "stable_fleet", "pristine_cache"}),
        ),
        Invariant(
            "trace.complete", check_trace_complete,
            description="heavy 200 trace ids resolve to one acyclic stitched tree "
                        "(>= 2 pids when proxied; single-worker on fallback)",
            requires=frozenset({"accepting"}),
        ),
        Invariant(
            "fleet.roster_sane", check_fleet_roster_sane,
            description="/fleet accounting closes; every entry carries as_of",
            requires=frozenset({"accepting", "fleet"}),
        ),
        Invariant(
            "fleet.merge_exact", check_fleet_merge_exact,
            description="merged /stats == sum of per-worker snapshots (as_of-guarded)",
            requires=frozenset({"accepting", "stable_fleet", "fleet"}),
        ),
    ]


def sabotage_invariant() -> Invariant:
    """A deliberately wrong expectation (requests counter off by one) —
    proves a violation produces a non-zero exit and a report naming the
    step, the invariant and the divergent values."""

    def check(world: LiveWorld) -> Any:
        counters = world.counters()
        observed = world.counter_delta(counters, "service.requests.artifacts")
        skewed = len(world.calls_for("artifacts")) + 1
        if observed != skewed:
            return {
                "expected_with_injected_skew": skewed,
                "observed_counter_delta": observed,
                "note": "intentional failure injected via --inject-failure",
            }
        return True

    return Invariant(
        "sabotage.skewed_counter", check,
        description="intentionally wrong counter expectation (--inject-failure)",
        requires=frozenset({"accepting", "stable_fleet"}),
    )
