"""Real end-to-end journeys driven against a :class:`LiveWorld`.

A journey is a named sequence of steps; each step performs real traffic
(through the recording client) and may assert its own expectations
(:func:`~repro.qa.core.expect` — "the thing I set out to do happened").
After every step the runner settles the world and evaluates the whole
invariant catalog, so a journey is simultaneously a scenario *and* a
continuous consistency probe.

Keys are chosen from disjoint ``seed_offset`` ranges per journey so a
step's cache expectations (``computed`` vs ``lru``) are deterministic:
each journey gets a fresh world (fresh daemon, fresh cache dir), and
within it only the journey's own calls can warm a key.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .core import expect
from .world import LiveWorld

Step = Tuple[str, Callable[[], None]]

#: The benchmark every journey drives — small enough that a full
#: artifacts→predict→machine→plan chain is sub-second, rich enough
#: that /machine finds an improvable branch.
BENCH = "compress"
PREDICTOR = "profile"


@dataclass(frozen=True)
class Journey:
    name: str
    description: str
    build: Callable[[LiveWorld], List[Step]]
    workers_min: int = 1


def _expect_200(record, **context) -> dict:
    expect(record.status == 200, f"{record.method} {record.path} failed",
           status=record.status, body=repr(record.document)[:200], **context)
    return record.data


def _source(record) -> Optional[str]:
    data = record.data
    return data.get("source") if isinstance(data, dict) else None


# -- journey: pipeline -------------------------------------------------------


def build_pipeline(world: LiveWorld) -> List[Step]:
    """The paper's full flow as a service conversation:
    artifacts → predict → machine → plan, then a warm replay."""

    def artifacts_cold() -> None:
        record = world.call("POST", "/artifacts", {"name": BENCH})
        data = _expect_200(record)
        expect(data.get("sites", 0) > 0, "no branch sites in artifacts", data=data)
        expect(_source(record) == "computed", "first artifacts not computed",
               source=_source(record))

    def predict() -> None:
        record = world.call(
            "POST", "/predict", {"name": BENCH, "predictor": PREDICTOR}
        )
        data = _expect_200(record)
        expect(data.get("predictor") == PREDICTOR, "wrong predictor echoed",
               data={k: data.get(k) for k in ("predictor", "events")})

    def machine() -> None:
        record = world.call("POST", "/machine", {"name": BENCH})
        data = _expect_200(record)
        expect(data.get("n_states", 0) >= 2, "machine too small", data=data)

    def plan() -> None:
        record = world.call("POST", "/plan", {"name": BENCH, "max_size_factor": 2.0})
        data = _expect_200(record)
        expect(data.get("branches", 0) > 0, "plan saw no branches")

    def replay_warm() -> None:
        record = world.call("POST", "/artifacts", {"name": BENCH})
        _expect_200(record)
        expect(_source(record) == "lru", "replayed artifacts not served from lru",
               source=_source(record))
        record = world.call(
            "POST", "/predict", {"name": BENCH, "predictor": PREDICTOR}
        )
        _expect_200(record)
        expect(_source(record) == "lru", "replayed predict not served from lru",
               source=_source(record))

    return [
        ("artifacts-cold", artifacts_cold),
        ("predict", predict),
        ("machine", machine),
        ("plan", plan),
        ("replay-warm", replay_warm),
    ]


# -- journey: cold_burst -----------------------------------------------------


def build_cold_burst(world: LiveWorld) -> List[Step]:
    """Concurrent identical cold-key traffic (exercises single-flight
    coalescing) followed by a scan of distinct cold keys."""

    def burst_identical() -> None:
        body = {"name": BENCH, "predictor": PREDICTOR, "seed_offset": 101}
        records = world.parallel([{"path": "/predict", "body": body}] * 6)
        expect(len(records) == 6, "burst lost calls", got=len(records))
        for record in records:
            _expect_200(record, burst="identical")
        sources = sorted(_source(r) for r in records)
        expect(sources.count("computed") >= 1, "nobody computed the burst key",
               sources=sources)

    def cold_scan() -> None:
        for offset in range(200, 206):
            record = world.call(
                "POST", "/artifacts", {"name": BENCH, "seed_offset": offset}
            )
            _expect_200(record, seed_offset=offset)
            expect(_source(record) == "computed", "cold key not computed",
                   seed_offset=offset, source=_source(record))

    def rewarm() -> None:
        # Under a withdrawn stable_fleet (e.g. a killed worker that
        # respawned with an empty cache) a warmed key may legitimately
        # be recomputed; only hold the lru line on a stable fleet.
        warm_sources = ("lru", "coalesced")
        if "stable_fleet" not in world.conditions:
            warm_sources = ("lru", "coalesced", "computed")
        for offset in range(200, 206):
            record = world.call(
                "POST", "/artifacts", {"name": BENCH, "seed_offset": offset}
            )
            _expect_200(record, seed_offset=offset)
            expect(_source(record) in warm_sources,
                   "warmed key recomputed", seed_offset=offset,
                   source=_source(record))

    return [
        ("burst-identical", burst_identical),
        ("cold-scan", cold_scan),
        ("rewarm", rewarm),
    ]


# -- journey: error_paths ----------------------------------------------------


def build_error_paths(world: LiveWorld) -> List[Step]:
    """Every error class the contract defines, plus the ``?raw=1``
    legacy escape hatch."""

    def unknown_route() -> None:
        record = world.call("GET", "/nope")
        expect(record.status == 404, "unknown route not 404", status=record.status)
        expect(record.error_doc.get("code") == "unknown_route",
               "wrong code", code=record.error_doc.get("code"))

    def method_not_allowed() -> None:
        record = world.call("GET", "/artifacts")
        expect(record.status == 405, "GET /artifacts not 405", status=record.status)
        expect(record.error_doc.get("code") == "method_not_allowed",
               "wrong code", code=record.error_doc.get("code"))

    def unknown_benchmark() -> None:
        record = world.call("POST", "/artifacts", {"name": "no-such-benchmark"})
        expect(record.status == 404, "unknown benchmark not 404", status=record.status)
        expect(record.error_doc.get("code") == "unknown_benchmark",
               "wrong code", code=record.error_doc.get("code"))

    def bad_body() -> None:
        record = world.call("POST", "/predict", {"name": BENCH, "predictor": 7})
        expect(record.status == 400, "bad body not 400", status=record.status)

    def unknown_predictor() -> None:
        record = world.call(
            "POST", "/predict", {"name": BENCH, "predictor": "no-such-predictor"}
        )
        expect(record.status == 404, "unknown predictor not 404",
               status=record.status)
        expect(record.error_doc.get("code") == "unknown_predictor",
               "wrong code", code=record.error_doc.get("code"))

    def legacy_raw() -> None:
        record = world.call("GET", "/healthz", raw=True)
        expect(record.status == 200, "raw healthz failed", status=record.status)
        doc = record.document
        expect(isinstance(doc, dict) and "v" not in doc and "status" in doc,
               "?raw=1 did not produce the legacy body shape",
               body=repr(doc)[:200])

    return [
        ("unknown-route", unknown_route),
        ("method-not-allowed", method_not_allowed),
        ("unknown-benchmark", unknown_benchmark),
        ("bad-body", bad_body),
        ("unknown-predictor", unknown_predictor),
        ("legacy-raw", legacy_raw),
    ]


# -- journey: shard_spread ---------------------------------------------------


def build_shard_spread(world: LiveWorld) -> List[Step]:
    """Distinct keys spread over the fleet's rendezvous shards — some
    proxied to their owner — then a quiet step so the merged-vs-worker
    comparison runs against settled traffic."""

    def spread() -> None:
        proxied = 0
        for offset in range(300, 308):
            record = world.call(
                "POST", "/artifacts", {"name": BENCH, "seed_offset": offset}
            )
            data = _expect_200(record, seed_offset=offset)
            if isinstance(data, dict) and "shard" in data:
                proxied += 1
        world.notes["proxied_calls"] = proxied
        # 8 keys over >=2 shards through one fronting connection: the
        # odds every key is owned by the fronting worker are 2^-8.
        expect(proxied >= 1, "no request was proxied to an owning shard",
               proxied=proxied)

    def settle_and_compare() -> None:
        # no traffic: the post-step invariant sweep (fleet.merge_exact,
        # fleet.roster_sane) is the point of this step.
        time.sleep(0.1)

    return [
        ("spread", spread),
        ("settle-and-compare", settle_and_compare),
    ]


# -- journey: drain_while_loaded ---------------------------------------------


def build_drain_while_loaded(world: LiveWorld) -> List[Step]:
    """Flip the drain flag while requests are in flight: in-flight work
    finishes (200), late arrivals get structured 503s, and /metrics
    stays scrapeable throughout (asserted by drain.contract)."""

    def warm() -> None:
        record = world.call("POST", "/artifacts", {"name": BENCH})
        _expect_200(record)

    def drain_under_load() -> None:
        drainer_done = threading.Event()

        def drainer() -> None:
            time.sleep(0.05)  # let the burst get in flight first
            world.drain_all()
            drainer_done.set()

        thread = threading.Thread(target=drainer, daemon=True)
        thread.start()
        specs = [
            {"path": "/artifacts", "body": {"name": BENCH, "seed_offset": 600 + i}}
            for i in range(4)
        ]
        records = world.parallel(specs)
        thread.join(timeout=10.0)
        expect(drainer_done.is_set(), "drain flag was never flipped")
        statuses = sorted(r.status for r in records if r.status is not None)
        expect(set(statuses) <= {200, 503}, "drain produced a status outside {200,503}",
               statuses=statuses)

    def post_drain() -> None:
        record = world.call("GET", "/healthz")
        expect(record.status == 503, "healthz not 503 while draining",
               status=record.status)
        expect(record.error_doc.get("code") == "draining", "wrong drain code",
               code=record.error_doc.get("code"))

    return [
        ("warm", warm),
        ("drain-under-load", drain_under_load),
        ("post-drain", post_drain),
    ]


# -- journey: train_then_predict ---------------------------------------------

#: The learned model the training journey exercises end to end.
LEARNED = "learned-perceptron-global-8bit"


def build_train_then_predict(world: LiveWorld) -> List[Step]:
    """Train-as-a-service: POST /train produces a versioned model,
    /predict deploys it, a replayed /train is a cache hit — and the
    machine/plan pipeline is provably untouched throughout."""

    def train_cold() -> None:
        record = world.call("POST", "/train", {"name": BENCH, "predictor": LEARNED})
        data = _expect_200(record)
        expect(_source(record) == "computed", "first train not computed",
               source=_source(record))
        expect(data.get("model_format_version") == 1, "wrong model format version",
               version=data.get("model_format_version"))
        model = data.get("model")
        expect(isinstance(model, dict) and model.get("version") == 1,
               "model document missing its version stamp",
               model_keys=sorted(model) if isinstance(model, dict) else model)
        expect(data.get("sites_learned", 0) > 0, "trained model learned no sites",
               sites_learned=data.get("sites_learned"))
        expect(data.get("holdout", {}).get("events", 0) > 0,
               "train reported no holdout evaluation", holdout=data.get("holdout"))

    def predict_learned() -> None:
        record = world.call(
            "POST", "/predict", {"name": BENCH, "predictor": LEARNED}
        )
        data = _expect_200(record)
        expect(data.get("predictor") == LEARNED, "wrong predictor echoed",
               predictor=data.get("predictor"))
        expect(data.get("events", 0) > 0, "learned predict saw no events",
               events=data.get("events"))
        expect(data.get("learned", {}).get("model_format_version") == 1,
               "learned predict missing model metadata", learned=data.get("learned"))

    def train_warm() -> None:
        # Same stable-fleet caveat as cold_burst's rewarm: a respawned
        # worker legitimately recomputes.
        warm_sources = ("lru", "coalesced")
        if "stable_fleet" not in world.conditions:
            warm_sources = ("lru", "coalesced", "computed")
        record = world.call("POST", "/train", {"name": BENCH, "predictor": LEARNED})
        _expect_200(record)
        expect(_source(record) in warm_sources, "replayed train recomputed",
               source=_source(record))

    def machine_plan_untouched() -> None:
        counters = world.counters()
        for cache in ("planner", "plan"):
            for kind in ("hits", "misses", "coalesced"):
                delta = world.counter_delta(
                    counters, f"service.cache.{cache}.{kind}"
                )
                expect(delta == 0,
                       "training traffic reached the machine/plan pipeline",
                       cache=cache, kind=kind, delta=delta)

    return [
        ("train-cold", train_cold),
        ("predict-learned", predict_learned),
        ("train-warm", train_warm),
        ("machine-plan-untouched", machine_plan_untouched),
    ]


# -- catalog -----------------------------------------------------------------


JOURNEYS: Dict[str, Journey] = {
    journey.name: journey
    for journey in (
        Journey(
            "pipeline",
            "artifacts → predict → machine → plan, then a warm replay",
            build_pipeline,
        ),
        Journey(
            "cold_burst",
            "concurrent identical cold key (coalescing) + distinct cold-key scan",
            build_cold_burst,
        ),
        Journey(
            "error_paths",
            "every error class of the v1 contract, plus the ?raw=1 escape hatch",
            build_error_paths,
        ),
        Journey(
            "train_then_predict",
            "POST /train → learned /predict → warm replay; machine/plan untouched",
            build_train_then_predict,
        ),
        Journey(
            "shard_spread",
            "distinct keys across rendezvous shards; merged-vs-worker comparison",
            build_shard_spread,
            workers_min=2,
        ),
        Journey(
            "drain_while_loaded",
            "drain flag flipped mid-burst; 503 contract while /metrics stays live",
            build_drain_while_loaded,
            workers_min=2,
        ),
    )
}
