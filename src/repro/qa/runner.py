"""The journey runner: fresh world per journey, invariants after every
step, violations collected into a machine- and human-readable report.

Each (journey, chaos) pair gets its *own* :class:`LiveWorld` — a fresh
daemon subprocess, cache directory and access log — so baselines start
at zero, chaos cannot leak across runs, and counter expectations are
deterministic.  The suite's exit status is non-zero when any CRITICAL
invariant was violated or a journey could not complete.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .chaos import CHAOS_SCENARIOS, ChaosScenario
from .core import CRITICAL, Invariant, JourneyError, Skip, Violation, check_invariants
from .invariants import default_invariants, sabotage_invariant
from .journeys import JOURNEYS, Journey
from .world import LiveWorld


@dataclass
class JourneyResult:
    journey: str
    chaos: Optional[str]
    workers: int
    steps: List[str] = field(default_factory=list)
    checks: int = 0
    checked_invariants: Set[str] = field(default_factory=set)
    violations: List[Violation] = field(default_factory=list)
    skips: List[Skip] = field(default_factory=list)
    error: Optional[str] = None
    duration_s: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.journey}+{self.chaos}" if self.chaos else self.journey

    @property
    def ok(self) -> bool:
        return self.error is None and not any(
            v.severity == CRITICAL for v in self.violations
        )

    def to_dict(self) -> dict:
        return {
            "journey": self.journey,
            "chaos": self.chaos,
            "workers": self.workers,
            "steps": self.steps,
            "checks": self.checks,
            "checked_invariants": sorted(self.checked_invariants),
            "violations": [v.to_dict() for v in self.violations],
            "skips": [s.to_dict() for s in self.skips],
            "error": self.error,
            "duration_s": round(self.duration_s, 3),
            "ok": self.ok,
        }


def run_journey(
    journey: Journey,
    invariants: Sequence[Invariant],
    workers: int,
    chaos: Optional[ChaosScenario] = None,
    keep_root: bool = False,
) -> JourneyResult:
    """One journey (optionally under chaos) against a fresh world."""
    effective_workers = max(
        workers, journey.workers_min, chaos.workers_min if chaos else 1
    )
    world_kwargs: Dict[str, int] = dict(chaos.world_kwargs) if chaos else {}
    result = JourneyResult(
        journey=journey.name,
        chaos=chaos.name if chaos else None,
        workers=effective_workers,
    )
    started = time.monotonic()
    world = LiveWorld(workers=effective_workers, keep_root=keep_root, **world_kwargs)
    try:
        world.start()
        steps = journey.build(world)
        if chaos is not None and chaos.extra_steps is not None:
            steps = steps + chaos.extra_steps(world)
        for step_name, action in steps:
            world.current_step = step_name
            action()
            world.settle()
            result.steps.append(step_name)
            violations, skips, checked = check_invariants(
                world, invariants, result.label, step_name
            )
            result.violations.extend(violations)
            result.skips.extend(skips)
            result.checks += len(checked)
            result.checked_invariants.update(checked)
            if chaos is not None and chaos.on_step is not None:
                chaos.on_step(world, step_name)
        if chaos is not None and chaos.finalize is not None:
            step_name = "chaos-finalize"
            world.current_step = step_name
            chaos.finalize(world)
            world.settle()
            result.steps.append(step_name)
            violations, skips, checked = check_invariants(
                world, invariants, result.label, step_name
            )
            result.violations.extend(violations)
            result.skips.extend(skips)
            result.checks += len(checked)
            result.checked_invariants.update(checked)
    except JourneyError as error:
        result.error = str(error)
    except Exception:  # noqa: BLE001 — the report must survive any journey
        result.error = traceback.format_exc(limit=8)
    finally:
        try:
            world.stop()
        except Exception:  # noqa: BLE001 — teardown must not mask results
            pass
    result.duration_s = time.monotonic() - started
    return result


def run_suite(
    journey_names: Optional[Sequence[str]] = None,
    chaos_names: Optional[Sequence[str]] = None,
    workers: int = 2,
    inject_failure: bool = False,
    keep_root: bool = False,
    progress: Optional[callable] = None,
) -> dict:
    """Run the selected journeys healthy, then each chaos scenario on
    its base journey.  Returns the full report document."""
    selected = list(journey_names or JOURNEYS)
    unknown = [name for name in selected if name not in JOURNEYS]
    if unknown:
        raise ValueError(f"unknown journeys: {unknown}; have {sorted(JOURNEYS)}")
    chaos_selected = list(chaos_names or [])
    unknown = [name for name in chaos_selected if name not in CHAOS_SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown chaos scenarios: {unknown}; have {sorted(CHAOS_SCENARIOS)}"
        )
    invariants = default_invariants()
    if inject_failure:
        invariants = invariants + [sabotage_invariant()]

    results: List[JourneyResult] = []
    skipped_journeys: List[dict] = []
    for name in selected:
        journey = JOURNEYS[name]
        if journey.workers_min > workers:
            skipped_journeys.append(
                {"journey": name, "reason":
                 f"needs >= {journey.workers_min} workers, running with {workers}"}
            )
            continue
        if progress:
            progress(f"journey {name} (healthy, workers={workers})")
        results.append(run_journey(journey, invariants, workers, keep_root=keep_root))
    for name in chaos_selected:
        scenario = CHAOS_SCENARIOS[name]
        journey = JOURNEYS[scenario.base_journey]
        if progress:
            progress(
                f"journey {scenario.base_journey}+{name} "
                f"(chaos, workers={max(workers, scenario.workers_min, journey.workers_min)})"
            )
        results.append(
            run_journey(journey, invariants, workers, chaos=scenario,
                        keep_root=keep_root)
        )

    checked: Set[str] = set()
    for result in results:
        checked.update(result.checked_invariants)
    report = {
        "ok": all(result.ok for result in results) and bool(results),
        "workers": workers,
        "inject_failure": inject_failure,
        "journeys": [result.to_dict() for result in results],
        "journeys_skipped": skipped_journeys,
        "invariants_defined": [inv.name for inv in invariants],
        "invariants_checked": sorted(checked),
        "totals": {
            "journeys": len(results),
            "steps": sum(len(result.steps) for result in results),
            "checks": sum(result.checks for result in results),
            "violations": sum(len(result.violations) for result in results),
            "critical_violations": sum(
                1
                for result in results
                for violation in result.violations
                if violation.severity == CRITICAL
            ),
            "skips": sum(len(result.skips) for result in results),
            "errors": sum(1 for result in results if result.error),
        },
    }
    return report
