"""Render a QA suite report for humans (text) and machines (JSON)."""

from __future__ import annotations

import json
from typing import List, Optional


def render_text(report: dict) -> str:
    """The human-facing summary: one line per journey, every violation
    spelled out with its step, invariant and divergent values."""
    lines: List[str] = []
    totals = report.get("totals", {})
    for journey in report.get("journeys", []):
        label = journey["journey"] + (
            f"+{journey['chaos']}" if journey.get("chaos") else ""
        )
        mark = "ok " if journey.get("ok") else "FAIL"
        lines.append(
            f"{mark} {label:32s} workers={journey.get('workers')} "
            f"steps={len(journey.get('steps', []))} "
            f"checks={journey.get('checks', 0)} "
            f"violations={len(journey.get('violations', []))} "
            f"skips={len(journey.get('skips', []))} "
            f"({journey.get('duration_s', 0):.1f}s)"
        )
        if journey.get("error"):
            lines.append(f"     journey error: {journey['error'].strip()}")
        for violation in journey.get("violations", []):
            lines.append(
                f"     VIOLATION [{violation.get('severity')}] "
                f"step={violation.get('step')!r} "
                f"invariant={violation.get('invariant')!r}"
            )
            for key, value in sorted(violation.get("detail", {}).items()):
                lines.append(f"         {key} = {value!r}")
    for skipped in report.get("journeys_skipped", []):
        lines.append(
            f"--  {skipped['journey']:32s} skipped: {skipped['reason']}"
        )
    lines.append(
        f"{'PASS' if report.get('ok') else 'FAIL'}: "
        f"{totals.get('journeys', 0)} journeys, "
        f"{totals.get('steps', 0)} steps, "
        f"{totals.get('checks', 0)} invariant checks "
        f"({len(report.get('invariants_checked', []))} distinct invariants), "
        f"{totals.get('critical_violations', 0)} critical violations, "
        f"{totals.get('skips', 0)} skips, "
        f"{totals.get('errors', 0)} journey errors"
    )
    return "\n".join(lines)


def write_json(report: dict, path: Optional[str]) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=True)
        stream.write("\n")
