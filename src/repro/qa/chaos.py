"""Chaos scenarios: inject real faults mid-journey, keep checking.

A scenario rides on a base journey.  After each base step's invariant
sweep, ``on_step`` may act (kill a worker, corrupt the cache...);
``extra_steps`` appends fault-specific traffic to the journey; and
``finalize`` asserts the system *recovered* (supervisor respawned the
worker, the poisoned key still answers).

Faults withdraw world conditions rather than disabling invariants:
killing a worker withdraws ``stable_fleet`` (its in-memory counters
died, so exact counter==log equalities are no longer decidable — the
access-log lines it wrote persist), corrupting the cache withdraws
``pristine_cache``.  Everything *not* predicated on a withdrawn
condition keeps being enforced through the fault — that is the point.
Pool saturation withdraws nothing: a saturated pool must satisfy the
whole catalog, 429s included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .core import expect
from .journeys import BENCH, Step
from .world import LiveWorld


@dataclass(frozen=True)
class ChaosScenario:
    name: str
    description: str
    base_journey: str
    workers_min: int = 1
    #: LiveWorld overrides (threads/queue_limit) applied to this run.
    world_kwargs: Dict[str, int] = field(default_factory=dict)
    on_step: Optional[Callable[[LiveWorld, str], None]] = None
    extra_steps: Optional[Callable[[LiveWorld], List[Step]]] = None
    finalize: Optional[Callable[[LiveWorld], None]] = None


# -- worker kill -------------------------------------------------------------


def _kill_on_step(world: LiveWorld, step: str) -> None:
    if step != "burst-identical":
        return
    ready = world.handle.refresh_ready()
    world.notes["pids_before_kill"] = [int(p) for p in ready["pids"]]
    world.kill_worker(1)


def _kill_extra_steps(world: LiveWorld) -> List[Step]:
    def traffic_through_the_hole() -> None:
        # The dead shard's keys fall back to local compute on the
        # accepting worker: degraded locality, zero failed requests.
        for offset in range(400, 404):
            record = world.call(
                "POST", "/artifacts", {"name": BENCH, "seed_offset": offset}
            )
            expect(record.status == 200,
                   "request failed while a worker was down",
                   status=record.status, seed_offset=offset)

    return [("traffic-through-the-hole", traffic_through_the_hole)]


def _kill_finalize(world: LiveWorld) -> None:
    old_pids = world.notes.get("pids_before_kill", [])
    expect(world.wait_for_respawn(old_pids),
           "supervisor did not respawn the killed worker",
           old_pids=old_pids, killed=world.notes.get("killed_pid"))
    health = world.probe_healthz()
    expect(health.get("status") == "ok", "fleet unhealthy after respawn",
           health=health)


# -- cache corruption --------------------------------------------------------


def _corrupt_on_step(world: LiveWorld, step: str) -> None:
    if step != "artifacts-cold":
        return
    world.notes["corrupted_files"] = world.corrupt_disk_cache()


def _corrupt_extra_steps(world: LiveWorld) -> List[Step]:
    def poisoned_entry() -> None:
        # Plant garbage at the exact cache path of a key nobody asked
        # for yet; the daemon must shrug it off and recompute.
        world.plant_garbage_entry(BENCH, 1, 777)
        record = world.call(
            "POST", "/artifacts", {"name": BENCH, "seed_offset": 777}
        )
        expect(record.status == 200, "poisoned entry broke the request",
               status=record.status, body=repr(record.document)[:200])
        data = record.data
        source = data.get("source") if isinstance(data, dict) else None
        expect(source == "computed",
               "poisoned entry was not recomputed", source=source)

    def recover_lru() -> None:
        record = world.call(
            "POST", "/artifacts", {"name": BENCH, "seed_offset": 777}
        )
        expect(record.status == 200, "recovered key failed",
               status=record.status)
        data = record.data
        source = data.get("source") if isinstance(data, dict) else None
        expect(source == "lru", "recovered key not in lru", source=source)

    return [("poisoned-entry", poisoned_entry), ("recover-lru", recover_lru)]


# -- pool saturation ---------------------------------------------------------


def _saturate_extra_steps(world: LiveWorld) -> List[Step]:
    def saturate() -> None:
        # 8 barrier-started distinct heavy keys against capacity 1 per
        # worker (threads=1, queue_limit=0): the semaphore acquire is
        # non-blocking, so most of the burst must shed as instant 429s.
        specs = [
            {
                "path": "/artifacts",
                "body": {"name": BENCH, "scale": 3, "seed_offset": 500 + i},
            }
            for i in range(8)
        ]
        records = world.parallel(specs, timeout=180.0)
        statuses = sorted(r.status for r in records if r.status is not None)
        expect(set(statuses) <= {200, 429},
               "saturation produced a status outside {200, 429}",
               statuses=statuses)
        expect(statuses.count(429) >= 1, "saturation never shed a request",
               statuses=statuses)
        expect(statuses.count(200) >= 1, "saturation starved every request",
               statuses=statuses)

    def post_saturation() -> None:
        record = world.call(
            "POST", "/artifacts", {"name": BENCH, "scale": 3, "seed_offset": 500}
        )
        expect(record.status == 200, "pool did not recover after saturation",
               status=record.status)

    return [("saturate", saturate), ("post-saturation", post_saturation)]


# -- catalog -----------------------------------------------------------------


CHAOS_SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            "worker_kill",
            "SIGKILL a worker mid-burst; traffic keeps flowing, supervisor respawns",
            base_journey="cold_burst",
            workers_min=2,
            on_step=_kill_on_step,
            extra_steps=_kill_extra_steps,
            finalize=_kill_finalize,
        ),
        ChaosScenario(
            "cache_corruption",
            "corrupt every disk-cache entry and plant a poisoned key; service recomputes",
            base_journey="pipeline",
            on_step=_corrupt_on_step,
            extra_steps=_corrupt_extra_steps,
        ),
        ChaosScenario(
            "pool_saturation",
            "threads=1/queue=0 + a barrier-started burst forces 429s; full catalog holds",
            base_journey="pipeline",
            world_kwargs={"threads": 1, "queue_limit": 0},
            extra_steps=_saturate_extra_steps,
        ),
    )
}
