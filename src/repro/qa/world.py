"""The QA ``World``: every live system a journey touches, composed.

One :class:`LiveWorld` owns:

- a real ``python -m repro serve`` subprocess (daemon or pre-fork
  fleet) launched via :func:`~repro.service.supervisor.spawn_fleet`
  with ``--log-json`` and its stderr captured to a file,
- a fresh on-disk artifact cache directory (``REPRO_CACHE_DIR``),
- a recording :class:`~repro.service.client.ServiceClient` for journey
  traffic plus a separate *probe* client whose scrapes of ``/stats``,
  ``/metrics``, ``/fleet`` and ``/healthz`` are **not** recorded (so
  observation does not pollute the journey's own request accounting),
- the per-worker control sockets (snapshots with ``as_of`` epochs),
- the parsed JSON access-log stream.

Everything a journey did is kept as :class:`CallRecord` rows; every
invariant gets the whole world and cross-checks the systems against
them.  Conditions (``accepting``, ``stable_fleet``, ``pristine_cache``,
``fleet``) start present and are withdrawn by chaos actions; invariants
requiring a withdrawn condition are skipped, not failed.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.promtext import histogram_bucket_counts, parse_exposition
from ..service.client import ServiceClient, unwrap_envelope
from ..service.control import ControlError, control_request, socket_path
from ..service.supervisor import FleetHandle, spawn_fleet
from .core import expect

#: Routes that run real pipeline work through the compute caches.
HEAVY_ROUTES = ("artifacts", "predict", "machine", "plan", "train")

#: How long ``settle()`` waits for the access log to catch up with the
#: recorded calls.  The log line is written *after* the counters bump
#: (same ``finally``), so a settled log means settled counters.
SETTLE_TIMEOUT = 5.0


@dataclass
class CallRecord:
    """One journey request as the client experienced it."""

    step: str
    method: str
    path: str
    body: Optional[dict]
    status: Optional[int]  # None: transport error (no response)
    latency_s: float
    request_id: str
    echoed_id: Optional[str]
    document: Any  # parsed response body (envelope unless raw)
    raw: bool
    error: Optional[str] = None

    @property
    def route(self) -> str:
        return self.path.strip("/").replace("/", ".") or "root"

    @property
    def data(self) -> Any:
        """The payload: envelope-unwrapped (pass-through for raw)."""
        return unwrap_envelope(self.document)

    @property
    def error_doc(self) -> dict:
        doc = self.document if isinstance(self.document, dict) else {}
        err = doc.get("error")
        return err if isinstance(err, dict) else {}


class LiveWorld:
    """A live daemon/fleet plus everything needed to cross-examine it."""

    def __init__(
        self,
        workers: int = 2,
        threads: int = 4,
        queue_limit: int = 16,
        lru_size: int = 128,
        keep_root: bool = False,
    ) -> None:
        self.workers = workers
        self.threads = threads
        self.queue_limit = queue_limit
        self.lru_size = lru_size
        self.keep_root = keep_root
        self.handle: Optional[FleetHandle] = None
        self.root: Optional[str] = None
        self.cache_dir: Optional[str] = None
        self.log_path: Optional[str] = None
        self.client: Optional[ServiceClient] = None
        self._probe: Optional[ServiceClient] = None
        self.calls: List[CallRecord] = []
        self.notes: Dict[str, Any] = {}
        self.conditions: set = set()
        self.draining = False
        self.current_step = "setup"
        self._lock = threading.Lock()
        self._rid_seq = 0
        self._baseline_counters: Dict[str, float] = {}
        self._baseline_metrics: Dict[str, list] = {}
        self._baseline_trace_files = 0
        self._baseline_disk_bytes = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "LiveWorld":
        self.root = tempfile.mkdtemp(prefix="repro-qa-")
        self.cache_dir = os.path.join(self.root, "cache")
        os.makedirs(self.cache_dir)
        self.log_path = os.path.join(self.root, "daemon.log")
        self.handle = spawn_fleet(
            workers=self.workers,
            threads=self.threads,
            extra_args=[
                "--log-json",
                "--queue-limit", str(self.queue_limit),
                "--lru-size", str(self.lru_size),
                # Keep every finished trace: the trace invariants must be
                # able to resolve any answered request's trace id.
                "--trace-sample", "1",
            ],
            extra_env={"REPRO_CACHE_DIR": self.cache_dir},
            log_path=self.log_path,
        )
        self.client = ServiceClient(self.handle.host, self.handle.port, timeout=120.0)
        self._probe = ServiceClient(self.handle.host, self.handle.port, timeout=30.0)
        health = self._probe.healthz()
        expect(health.get("status") == "ok", "daemon did not come up healthy",
               health=health)
        self.conditions = {"accepting", "stable_fleet", "pristine_cache"}
        if self.workers > 1:
            self.conditions.add("fleet")
        self._baseline_counters = dict(self.stats().get("counters", {}))
        self._baseline_metrics = self.metrics_parsed()
        self._baseline_trace_files = self.disk_trace_files()
        self._baseline_disk_bytes = self.disk_bytes()
        return self

    def stop(self) -> None:
        for client in (self.client, self._probe):
            if client is not None:
                client.close()
        if self.handle is not None:
            self.handle.stop()
            try:
                os.unlink(self.handle.ready_file)
            except OSError:
                pass
        if self.root and not self.keep_root:
            shutil.rmtree(self.root, ignore_errors=True)

    def __enter__(self) -> "LiveWorld":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- journey traffic (recorded) ------------------------------------------

    def _next_rid(self) -> str:
        with self._lock:
            self._rid_seq += 1
            return f"qa-{os.getpid()}-{self._rid_seq:05d}"

    def call(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        raw: bool = False,
        client: Optional[ServiceClient] = None,
        step: Optional[str] = None,
    ) -> CallRecord:
        """One recorded request; transport errors are recorded, not raised."""
        rid = self._next_rid()
        target = path + ("?raw=1" if raw else "")
        active = client or self.client
        started = perf_counter()
        status: Optional[int] = None
        document: Any = None
        error: Optional[str] = None
        echoed: Optional[str] = None
        try:
            status, document = active.request_raw(method, target, body, request_id=rid)
            echoed = active.last_request_id
        except OSError as exc:
            error = f"{type(exc).__name__}: {exc}"
        record = CallRecord(
            step=step or self.current_step,
            method=method,
            path=path,
            body=body,
            status=status,
            latency_s=perf_counter() - started,
            request_id=rid,
            echoed_id=echoed,
            document=document,
            raw=raw,
            error=error,
        )
        with self._lock:
            self.calls.append(record)
        return record

    def parallel(self, specs: Sequence[dict], timeout: float = 120.0) -> List[CallRecord]:
        """Barrier-started concurrent calls, one fresh client per thread.

        Each spec: ``{"method", "path", "body"?, "raw"?}``.  Results come
        back in spec order (the shared record list fills in completion
        order, which is fine — invariants never depend on it).
        """
        results: List[Optional[CallRecord]] = [None] * len(specs)
        barrier = threading.Barrier(len(specs))
        step = self.current_step

        def work(index: int, spec: dict) -> None:
            with ServiceClient(self.handle.host, self.handle.port, timeout=timeout) as cl:
                barrier.wait()
                results[index] = self.call(
                    spec.get("method", "POST"),
                    spec["path"],
                    spec.get("body"),
                    raw=bool(spec.get("raw", False)),
                    client=cl,
                    step=step,
                )

        threads = [
            threading.Thread(target=work, args=(i, spec), daemon=True)
            for i, spec in enumerate(specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [r for r in results if r is not None]

    def calls_for(
        self, route: Optional[str] = None, statuses: Optional[Iterable[int]] = None
    ) -> List[CallRecord]:
        wanted = None if statuses is None else set(statuses)
        return [
            record
            for record in self.calls
            if (route is None or record.route == route)
            and (wanted is None or record.status in wanted)
        ]

    def settle(self, timeout: float = SETTLE_TIMEOUT) -> bool:
        """Wait until the access log has a line for every answered call.

        The server writes the access-log line *after* bumping the
        request counters (same ``finally`` block), so once the log has
        caught up, every counter a recorded call implies has landed —
        the ordering guarantee all counter==traffic invariants lean on.
        Best-effort by design: a worker killed between response and log
        write leaves a permanent gap, so chaos runs may time out here
        (and the counter invariants requiring ``stable_fleet`` are
        skipped in exactly those runs).
        """
        want = {r.request_id for r in self.calls if r.status is not None}
        deadline = time.monotonic() + timeout
        while True:
            have = {entry.get("request_id") for entry in self.access_entries()}
            if want <= have:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    # -- probes (not recorded) -----------------------------------------------

    def probe_healthz(self) -> dict:
        return self._probe.healthz()

    def probe_raw(self, method: str, path: str, body: Optional[dict] = None) -> Tuple[int, dict]:
        return self._probe.request_raw(method, path, body)

    def probe_metrics_status(self) -> int:
        status, _ = self._probe.request_text("GET", "/metrics")
        return status

    def stats(self) -> dict:
        return self._probe.stats()

    def counters(self) -> Dict[str, float]:
        return dict(self.stats().get("counters", {}))

    def counter_delta(self, counters: Dict[str, float], name: str) -> float:
        return counters.get(name, 0) - self._baseline_counters.get(name, 0)

    def fleet_doc(self) -> dict:
        return self._probe.request("GET", "/fleet")

    def metrics_parsed(self) -> Dict[str, list]:
        return parse_exposition(self._probe.metrics())

    def trace_doc(self, trace_id: str) -> Tuple[int, Any]:
        """``GET /trace/{id}`` via the probe client: ``(status, envelope)``."""
        return self._probe.request_raw("GET", f"/trace/{trace_id}")

    def route_bucket_delta(
        self, route: str, parsed: Optional[Dict[str, list]] = None
    ) -> List[Tuple[float, float]]:
        """Per-bucket latency counts for *route* since the baseline scrape."""
        from ..obs.promtext import delta_bucket_counts

        family = f"repro_service_latency_seconds_{route}"
        before = histogram_bucket_counts(self._baseline_metrics, family)
        after = histogram_bucket_counts(parsed or self.metrics_parsed(), family)
        return delta_bucket_counts(before, after)

    # -- access log ----------------------------------------------------------

    def _log_entries(self) -> List[dict]:
        if not self.log_path:
            return []
        try:
            with open(self.log_path, "r", encoding="utf-8", errors="replace") as stream:
                text = stream.read()
        except OSError:
            return []
        entries = []
        for line in text.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "request_id" in record:
                entries.append(record)
        return entries

    def access_entries(self) -> List[dict]:
        """Parsed *client-facing* access-log lines.

        Owner-side lines (``"owner": true`` — an owner worker running a
        peer's control-socket invoke) are excluded: a proxied request
        legitimately logs on both workers, but the client-facing
        population must hold exactly one line per request id.
        """
        return [
            entry for entry in self._log_entries() if entry.get("owner") is not True
        ]

    def invoke_entries(self) -> List[dict]:
        """Owner-side access-log lines (cross-shard control invokes)."""
        return [
            entry for entry in self._log_entries() if entry.get("owner") is True
        ]

    # -- disk cache ----------------------------------------------------------

    def _disk_files(self) -> List[str]:
        if not self.cache_dir:
            return []
        try:
            return sorted(os.listdir(self.cache_dir))
        except OSError:
            return []

    def disk_trace_files(self) -> int:
        return sum(1 for name in self._disk_files() if name.endswith(".trace"))

    def disk_bytes(self) -> int:
        total = 0
        for name in self._disk_files():
            try:
                total += os.path.getsize(os.path.join(self.cache_dir, name))
            except OSError:
                pass
        return total

    def disk_trace_delta(self) -> int:
        return self.disk_trace_files() - self._baseline_trace_files

    def disk_bytes_delta(self) -> int:
        return self.disk_bytes() - self._baseline_disk_bytes

    # -- fleet control plane -------------------------------------------------

    @property
    def control_dir(self) -> Optional[str]:
        return self.handle.control_dir if self.handle else None

    def worker_snapshots(self, timeout: float = 5.0) -> Dict[int, dict]:
        """``{shard: snapshot op reply}`` (reply carries ``as_of``).

        Raises :class:`~repro.service.control.ControlError` when a
        worker is unreachable — callers under chaos catch it or require
        ``stable_fleet``.
        """
        if not self.control_dir:
            return {}
        return {
            shard: control_request(
                socket_path(self.control_dir, shard), {"op": "snapshot"}, timeout
            )
            for shard in range(self.workers)
        }

    def kill_worker(self, shard: int) -> int:
        """SIGKILL worker *shard*; withdraws ``stable_fleet``. Returns pid."""
        ready = self.handle.refresh_ready()
        pid = int(ready["pids"][shard])
        os.kill(pid, signal.SIGKILL)
        self.conditions.discard("stable_fleet")
        self.notes["killed_pid"] = pid
        return pid

    def wait_for_respawn(self, old_pids: List[int], timeout: float = 20.0) -> bool:
        """Wait until the supervisor replaced the killed worker."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            ready = self.handle.refresh_ready()
            pids = [int(p) for p in ready.get("pids", [])]
            if (
                int(ready.get("restarts", 0)) >= 1
                and len(pids) == self.workers
                and set(pids) != set(old_pids)
                and all(_alive(pid) for pid in pids)
            ):
                return True
            time.sleep(0.1)
        return False

    def drain_all(self, timeout: float = 5.0) -> List[int]:
        """Flip the drain flag on every worker; withdraws ``accepting``."""
        drained = []
        if not self.control_dir:
            raise ControlError("drain_all needs a fleet (no control_dir)")
        for shard in range(self.workers):
            reply = control_request(
                socket_path(self.control_dir, shard), {"op": "drain"}, timeout
            )
            if reply.get("ok"):
                drained.append(shard)
        self.draining = True
        self.conditions.discard("accepting")
        return drained

    # -- cache chaos hooks ---------------------------------------------------

    def corrupt_disk_cache(self) -> int:
        """Truncate every artifact file to garbage; withdraws
        ``pristine_cache``.  Returns how many files were mangled."""
        mangled = 0
        for name in self._disk_files():
            path = os.path.join(self.cache_dir, name)
            try:
                with open(path, "wb") as stream:
                    stream.write(b"\x00garbage\x00")
                mangled += 1
            except OSError:
                pass
        self.conditions.discard("pristine_cache")
        return mangled

    def plant_garbage_entry(self, name: str, scale: int, seed_offset: int) -> Tuple[str, str]:
        """Write an unreadable cache entry for a key a journey will ask
        for next; withdraws ``pristine_cache``.  The daemon must fall
        back to recomputation (and answer 200) when it trips over it."""
        from ..workloads.artifacts import DEFAULT_HISTORY_BITS, _entry_paths

        trace_path, aux_path = _entry_paths(
            self.cache_dir, name, scale, seed_offset, DEFAULT_HISTORY_BITS
        )
        for path in (trace_path, aux_path):
            with open(path, "wb") as stream:
                stream.write(b"not an artifact")
        self.conditions.discard("pristine_cache")
        return trace_path, aux_path


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True
