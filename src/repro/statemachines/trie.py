"""Suffix-trie enumeration of intra-loop state machines.

An intra-loop machine's states are history patterns chosen so that
every (sufficiently long) history matches exactly one state: the states
are the **leaves of a full binary suffix trie**.  The trie branches on
the most recent outcome at the root, the next older one below, and so
on; a leaf at depth *d* is the pattern of the last *d* outcomes.

Enumerating all full binary tries with *k* leaves (there are
Catalan(k-1) of them) and keeping the ones whose transition function is
*determined* — following any outcome from any state identifies the next
state using only the bits the machine knows — yields the machine family
the paper searches exhaustively.

Shapes are independent of any particular branch, so their structural
analysis (leaf patterns, transitions, validity, strong connectivity) is
computed once and cached; scoring a shape against a branch's pattern
table is then a handful of dictionary lookups.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from .machine import Pattern, pattern_str

#: Trie shape: a leaf is the string "L"; an internal node is a pair
#: (child-on-0, child-on-1), where the branching bit is "the next older
#: outcome" as we descend.
Shape = Union[str, Tuple["Shape", "Shape"]]

LEAF: Shape = "L"


@functools.lru_cache(maxsize=None)
def shapes_with_leaves(k: int) -> Tuple[Shape, ...]:
    """All full binary trie shapes with exactly *k* leaves."""
    if k < 1:
        return ()
    if k == 1:
        return (LEAF,)
    out: List[Shape] = []
    for left_leaves in range(1, k):
        for left in shapes_with_leaves(left_leaves):
            for right in shapes_with_leaves(k - left_leaves):
                out.append((left, right))
    return tuple(out)


def shape_leaves(shape: Shape) -> List[Pattern]:
    """Leaf patterns of *shape*, in trie DFS order."""
    leaves: List[Pattern] = []

    def walk(node: Shape, value: int, depth: int) -> None:
        if node == LEAF:
            leaves.append((value, depth))
            return
        walk(node[0], value, depth + 1)
        walk(node[1], value | (1 << depth), depth + 1)

    walk(shape, 0, 0)
    return leaves


def shape_depth(shape: Shape) -> int:
    if shape == LEAF:
        return 0
    return 1 + max(shape_depth(shape[0]), shape_depth(shape[1]))


def _walk(shape: Shape, bits: Sequence[int]) -> Optional[Pattern]:
    """Follow *bits* (most recent first) down the trie.

    Returns the leaf pattern reached, or None when the bits run out at
    an internal node (the transition would depend on history the
    machine does not remember).
    """
    node = shape
    value = 0
    depth = 0
    for bit in bits:
        if node == LEAF:
            break
        node = node[bit]
        value |= bit << depth
        depth += 1
    if node != LEAF:
        return None
    return (value, depth)


@dataclass(frozen=True)
class TrieMachineShape:
    """Structural analysis of one trie shape."""

    shape: Shape
    leaves: Tuple[Pattern, ...]
    #: transitions[i] = (next index on not-taken, next index on taken)
    transitions: Tuple[Tuple[int, int], ...]
    initial: int
    depth: int
    strongly_connected: bool

    @property
    def n_states(self) -> int:
        return len(self.leaves)

    def state_names(self) -> List[str]:
        return [pattern_str(leaf) for leaf in self.leaves]


def analyze_shape(shape: Shape) -> Optional[TrieMachineShape]:
    """Compute transitions for *shape*; None if underdetermined."""
    leaves = shape_leaves(shape)
    index = {leaf: i for i, leaf in enumerate(leaves)}
    transitions: List[Tuple[int, int]] = []
    for value, length in leaves:
        row = []
        for bit in (0, 1):
            # After outcome `bit` the known recent history is `bit`
            # followed by this leaf's bits, oldest last.
            bits = [bit] + [(value >> i) & 1 for i in range(length)]
            target = _walk(shape, bits)
            if target is None:
                return None
            row.append(index[target])
        transitions.append((row[0], row[1]))
    initial = _walk(shape, [0] * (shape_depth(shape) + 1))
    assert initial is not None  # all-zero path always reaches a leaf
    info = TrieMachineShape(
        shape=shape,
        leaves=tuple(leaves),
        transitions=tuple(transitions),
        initial=index[initial],
        depth=shape_depth(shape),
        strongly_connected=_strongly_connected(transitions),
    )
    return info


def _strongly_connected(transitions: Sequence[Tuple[int, int]]) -> bool:
    count = len(transitions)
    for start in range(count):
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for succ in transitions[node]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        if len(seen) != count:
            return False
    return True


@functools.lru_cache(maxsize=None)
def valid_shapes(
    n_leaves: int, max_depth: int = 9, require_connected: bool = True
) -> Tuple[TrieMachineShape, ...]:
    """All determined (and optionally strongly connected) trie machine
    shapes with exactly *n_leaves* states and depth ≤ *max_depth*."""
    result: List[TrieMachineShape] = []
    for shape in shapes_with_leaves(n_leaves):
        if shape_depth(shape) > max_depth:
            continue
        info = analyze_shape(shape)
        if info is None:
            continue
        if require_connected and not info.strongly_connected:
            continue
        result.append(info)
    return tuple(result)
