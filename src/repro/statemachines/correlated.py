"""Correlated branch state machines (Section 4.3).

"A state in a correlated branch state machine represents a path from
correlated branches to the branch to be predicted.  The correlated
branch state machine is the set of those paths which give the lowest
misprediction rate.  One state covers the case where the control flow
matches none of the paths."

States are therefore *independent* — there are no transitions between
them; which state applies is decided by the path control flow took,
i.e. by the most recent global branch outcomes.  An execution is
charged to the longest chosen path matching its global history, or to
the catch-all.

``best_correlated_machine`` selects the path set greedily by exact
marginal gain: with at most a few hundred observed history patterns per
branch, each candidate evaluation is a full recount, so nested paths
and majority flips in the residual group are handled exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..obs import OBS
from ..profiling import PatternTable
from .machine import Pattern, ScoredMachine, pattern_str
from .scoring import longest_match_groups, majority, node_counts


@dataclass(frozen=True)
class CorrelatedMachine:
    """Independent path states plus a catch-all."""

    paths: Tuple[Pattern, ...]
    predictions: Tuple[bool, ...]
    fallback: bool
    kind: str = "correlated"

    @property
    def n_states(self) -> int:
        return len(self.paths) + 1

    def state_of(self, history: int) -> Optional[int]:
        """Index of the longest path matching *history* (None = catch-all)."""
        best: Optional[int] = None
        best_length = -1
        for index, (value, length) in enumerate(self.paths):
            if length > best_length and (history & ((1 << length) - 1)) == value:
                best = index
                best_length = length
        return best

    def predict(self, history: int) -> bool:
        state = self.state_of(history)
        if state is None:
            return self.fallback
        return self.predictions[state]

    def describe(self) -> str:
        lines = [f"correlated machine, {self.n_states} states"]
        for (pattern, prediction) in zip(self.paths, self.predictions):
            lines.append(
                f"   [{pattern_str(pattern)}] predict "
                f"{'taken' if prediction else 'not-taken'}"
            )
        lines.append(
            f"   [*] predict {'taken' if self.fallback else 'not-taken'}"
        )
        return "\n".join(lines)


def _score_paths(
    table: PatternTable, paths: List[Pattern], default: bool
) -> Tuple[int, List[bool], bool]:
    """Correct count + per-path and fallback majority predictions."""
    groups, fallback_counts = longest_match_groups(table, paths)
    correct = sum(max(cell) for cell in groups) + max(fallback_counts)
    predictions = [majority((cell[0], cell[1]), default) for cell in groups]
    fallback = majority((fallback_counts[0], fallback_counts[1]), default)
    return correct, predictions, fallback


def best_correlated_machine(
    table: PatternTable,
    max_states: int,
    max_path_length: Optional[int] = None,
    max_candidates: int = 64,
) -> ScoredMachine:
    """Greedy exact-gain selection of at most ``max_states - 1`` paths.

    *table* is the branch's **global**-history pattern table.  Paths
    longer than ``max_path_length`` (default: ``max_states - 1``, the
    paper's "maximum path length of n for an n state machine" bound to
    keep the replicated code small) are not considered.  Candidates are
    the ``max_candidates`` most frequent observed patterns.
    """
    if max_states < 1:
        raise ValueError("need at least one state")
    total = table.executions()
    nodes = node_counts(table)
    default = majority(nodes.get((0, 0), (0, 0)))
    limit = max_path_length if max_path_length is not None else max(1, max_states - 1)
    limit = min(limit, table.bits)
    candidates = [
        (pattern, counts)
        for pattern, counts in nodes.items()
        if 1 <= pattern[1] <= limit
    ]
    candidates.sort(key=lambda item: -(item[1][0] + item[1][1]))
    candidates = [pattern for pattern, _ in candidates[:max_candidates]]

    chosen: List[Pattern] = []
    best_correct, predictions, fallback = _score_paths(table, chosen, default)
    rounds = 0
    scored = 0
    with OBS.span("sm.search.correlated", max_states=max_states) as span:
        while len(chosen) < max_states - 1:
            rounds += 1
            best_gain = 0
            best_pattern: Optional[Pattern] = None
            for pattern in candidates:
                if pattern in chosen:
                    continue
                scored += 1
                correct, _, _ = _score_paths(table, chosen + [pattern], default)
                gain = correct - best_correct
                if gain > best_gain:
                    best_gain = gain
                    best_pattern = pattern
            if best_pattern is None:
                break
            chosen.append(best_pattern)
            best_correct, predictions, fallback = _score_paths(
                table, chosen, default
            )
        span.set(candidates=scored, rounds=rounds, paths=len(chosen))
    OBS.add("sm.correlated.searches")
    OBS.add("sm.correlated.candidates", scored)
    OBS.add("sm.correlated.rounds", rounds)
    OBS.add("sm.correlated.paths", len(chosen))
    if total:
        OBS.set_gauge("sm.correlated.best_score", best_correct / total)
    machine = CorrelatedMachine(tuple(chosen), tuple(predictions), fallback)
    return ScoredMachine(machine, best_correct, total)


def correlated_machine_options(
    table: PatternTable,
    max_states: int,
    max_candidates: int = 64,
) -> List[ScoredMachine]:
    """One scored machine per state count 1..max_states.

    Runs the greedy selection once at the largest budget and derives
    the smaller machines from prefixes of the chosen path sequence,
    dropping paths longer than each size's ``n - 1`` length bound and
    rescoring exactly.  Returned machines are indexed so that
    ``options[n - 1]`` has at most *n* states.
    """
    total = table.executions()
    nodes = node_counts(table)
    default = majority(nodes.get((0, 0), (0, 0)))
    full = best_correlated_machine(
        table, max_states, max_path_length=table.bits, max_candidates=max_candidates
    )
    sequence: Tuple[Pattern, ...] = full.machine.paths
    options: List[ScoredMachine] = []
    for n_states in range(1, max_states + 1):
        limit = n_states - 1
        chosen = [p for p in sequence if p[1] <= limit][:limit]
        correct, predictions, fallback = _score_paths(table, chosen, default)
        machine = CorrelatedMachine(tuple(chosen), tuple(predictions), fallback)
        options.append(ScoredMachine(machine, correct, total))
    return options
