"""Joint machines: one state machine for all branches of a loop.

Section 6 ("Further Work"): "A possible solution treats all branches of
that loop at the same time and constructs a single state machine for
all branches using a higher number of states."

A joint machine's history is the interleaved outcome sequence of *all*
member branches of the loop; every member execution both consults and
advances the state.  Because the same trie-shape enumeration as the
intra-loop search applies — only the scoring sums over members — the
search stays exhaustive over the (small) valid-shape family rather than
needing the paper's branch-and-bound.

The payoff: improving two branches with independent 4- and 2-state
machines replicates the loop 4 x 2 = 8 times, while one 8-state joint
machine reaches a similar accuracy at the same size — or the same
accuracy at fewer states — whenever the branches' histories overlap in
information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ir import BranchSite
from ..profiling import PatternTable
from .machine import Pattern, pattern_str
from .scoring import NodeCounts, majority, node_counts, partition_score
from .trie import TrieMachineShape, valid_shapes


@dataclass(frozen=True)
class JointState:
    """One joint state: transitions plus one prediction per member."""

    name: str
    predictions: Tuple[Tuple[BranchSite, bool], ...]
    on_not_taken: int
    on_taken: int
    pattern: Optional[Pattern] = None

    def prediction_for(self, site: BranchSite) -> bool:
        for candidate, prediction in self.predictions:
            if candidate == site:
                return prediction
        raise KeyError(site)


@dataclass(frozen=True)
class JointLoopMachine:
    """A shared machine over a loop's member branches."""

    sites: Tuple[BranchSite, ...]
    states: Tuple[JointState, ...]
    initial: int
    kind: str = "joint-loop"

    @property
    def n_states(self) -> int:
        return len(self.states)

    def next_state(self, state: int, taken: bool) -> int:
        s = self.states[state]
        return s.on_taken if taken else s.on_not_taken

    def simulate(
        self, events: Iterable[Tuple[BranchSite, bool]]
    ) -> Tuple[int, int]:
        """Run over an interleaved (site, outcome) stream of members."""
        current = self.initial
        correct = 0
        total = 0
        for site, taken in events:
            state = self.states[current]
            if state.prediction_for(site) is bool(taken):
                correct += 1
            total += 1
            current = state.on_taken if taken else state.on_not_taken
        return correct, total

    def describe(self) -> str:
        lines = [
            f"joint machine over {len(self.sites)} branches, "
            f"{self.n_states} states"
        ]
        for index, state in enumerate(self.states):
            marker = "*" if index == self.initial else " "
            predictions = ", ".join(
                f"{site.block}:{'T' if p else 'N'}"
                for site, p in state.predictions
            )
            lines.append(
                f" {marker} [{state.name}] {predictions}; "
                f"0 -> {self.states[state.on_not_taken].name}, "
                f"1 -> {self.states[state.on_taken].name}"
            )
        return "\n".join(lines)


@dataclass
class ScoredJointMachine:
    """A joint machine plus its training score."""

    machine: JointLoopMachine
    correct: int
    total: int
    #: per-member (correct, total) split
    per_site: Dict[BranchSite, Tuple[int, int]]

    @property
    def mispredictions(self) -> int:
        return self.total - self.correct

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.total if self.total else 0.0


def best_joint_machine(
    tables: Mapping[BranchSite, PatternTable],
    max_states: int,
    require_connected: bool = True,
) -> ScoredJointMachine:
    """Exhaustive search for the best shared machine.

    *tables* map each member branch to its pattern table keyed by the
    **joint** (loop-local, interleaved) history.  The search enumerates
    the same valid trie shapes as the intra-loop search; a shape's
    score is the sum of every member's partition score on it.
    """
    if not tables:
        raise ValueError("need at least one member branch")
    sites = tuple(sorted(tables))
    bits = min(table.bits for table in tables.values())
    nodes: Dict[BranchSite, NodeCounts] = {
        site: node_counts(tables[site]) for site in sites
    }
    defaults: Dict[BranchSite, bool] = {
        site: majority(nodes[site].get((0, 0), (0, 0))) for site in sites
    }
    total = sum(tables[site].executions() for site in sites)

    def shape_score(info: TrieMachineShape) -> int:
        return sum(partition_score(nodes[site], info.leaves) for site in sites)

    best_info: Optional[TrieMachineShape] = None
    best_correct = sum(
        max(nodes[site].get((0, 0), (0, 0))) for site in sites
    )
    for n_states in range(2, max_states + 1):
        for info in valid_shapes(n_states, bits, require_connected):
            correct = shape_score(info)
            if correct > best_correct:
                best_correct = correct
                best_info = info

    if best_info is None:
        machine = _single_state_joint(sites, defaults)
        per_site = {
            site: (max(nodes[site].get((0, 0), (0, 0))), tables[site].executions())
            for site in sites
        }
        return ScoredJointMachine(machine, best_correct, total, per_site)

    states: List[JointState] = []
    for index, leaf in enumerate(best_info.leaves):
        predictions = tuple(
            (site, majority(nodes[site].get(leaf, (0, 0)), defaults[site]))
            for site in sites
        )
        on_not_taken, on_taken = best_info.transitions[index]
        states.append(
            JointState(pattern_str(leaf), predictions, on_not_taken, on_taken, leaf)
        )
    machine = JointLoopMachine(sites, tuple(states), best_info.initial)
    per_site = {
        site: (
            partition_score(nodes[site], best_info.leaves),
            tables[site].executions(),
        )
        for site in sites
    }
    return ScoredJointMachine(machine, best_correct, total, per_site)


def _single_state_joint(
    sites: Sequence[BranchSite], defaults: Mapping[BranchSite, bool]
) -> JointLoopMachine:
    predictions = tuple((site, defaults[site]) for site in sites)
    state = JointState("*", predictions, 0, 0, None)
    return JointLoopMachine(tuple(sites), (state,), 0)
