"""Scoring state machines against pattern tables.

"For each 9 bit pattern we collected the number of taken and not taken
branches.  This information is used to compute the number of taken and
not taken branches for all shorter patterns.  Adding now the counts for
the more frequent direction of all states ... taking care that patterns
are counted not more than once, we get the number of correct predicted
branches for the state machine."  (Section 4.1)

:func:`node_counts` materialises the counts of *every* pattern length
at once; each full-depth pattern is then charged to exactly one state
(its unique trie leaf, or its longest matching path for correlated
machines).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..profiling import PatternTable
from .machine import Pattern


NodeCounts = Dict[Pattern, Tuple[int, int]]


def node_counts(table: PatternTable) -> NodeCounts:
    """Counts for all suffixes of all observed patterns.

    Key ``(value, length)`` with LSB = most recent outcome; value
    ``(not_taken, taken)``.  Includes the empty pattern ``(0, 0)``
    holding the branch totals.
    """
    acc: Dict[Pattern, List[int]] = {}
    bits = table.bits
    for history, entry in table.counts.items():
        for length in range(0, bits + 1):
            key = (history & ((1 << length) - 1), length)
            cell = acc.get(key)
            if cell is None:
                acc[key] = [entry[0], entry[1]]
            else:
                cell[0] += entry[0]
                cell[1] += entry[1]
    return {key: (cell[0], cell[1]) for key, cell in acc.items()}


def leaf_counts(
    nodes: NodeCounts, leaves: Iterable[Pattern]
) -> List[Tuple[int, int]]:
    """Counts charged to each leaf of a partition machine."""
    return [nodes.get(leaf, (0, 0)) for leaf in leaves]


def partition_score(nodes: NodeCounts, leaves: Iterable[Pattern]) -> int:
    """Correct predictions when each leaf predicts its majority."""
    return sum(max(nodes.get(leaf, (0, 0))) for leaf in leaves)


def longest_match_groups(
    table: PatternTable, patterns: List[Pattern]
) -> Tuple[List[List[int]], List[int]]:
    """Charge each full-depth table entry to its *longest* matching
    pattern (correlated-machine semantics).

    Returns ``(per_pattern_counts, fallback_counts)`` where each counts
    cell is ``[not_taken, taken]``; entries matching no pattern land in
    the fallback (catch-all) cell.
    """
    ordered = sorted(range(len(patterns)), key=lambda i: -patterns[i][1])
    groups: List[List[int]] = [[0, 0] for _ in patterns]
    fallback = [0, 0]
    for history, entry in table.counts.items():
        target: Optional[int] = None
        for index in ordered:
            value, length = patterns[index]
            if (history & ((1 << length) - 1)) == value:
                target = index
                break
        cell = groups[target] if target is not None else fallback
        cell[0] += entry[0]
        cell[1] += entry[1]
    return groups, fallback


def majority(counts: Tuple[int, int], default: bool = True) -> bool:
    """Majority direction of a (not_taken, taken) cell."""
    not_taken, taken = counts
    if taken == not_taken:
        return default
    return taken > not_taken
