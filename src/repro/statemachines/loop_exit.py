"""Loop-exit branch state machines (Section 4.2).

A loop-exit branch leaves the loop on one of its directions.  Its
machines are chains: the initial state represents "the loop exited on
the last execution", the following states count iterations since then,
and the deepest state is a catch-all.  Figure 5's variant additionally
lets the two deepest states alternate, capturing loops with a strong
even/odd iteration-count bias.

Both variants are built here and ``best_loop_exit_machine`` picks the
better one per branch.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import OBS
from ..profiling import PatternTable
from .machine import (
    MachineState,
    Pattern,
    PredictionMachine,
    ScoredMachine,
    pattern_str,
    single_state_machine,
)
from .scoring import NodeCounts, majority, node_counts, partition_score


def _comb_patterns(n_states: int, stay_bit: int) -> List[Pattern]:
    """Patterns of the saturating chain: [exit], [stay,exit], ...,
    [stay^(n-1)] — in taken-bit terms, newest outcome in bit 0."""
    exit_bit = 1 - stay_bit
    patterns: List[Pattern] = []
    for i in range(n_states - 1):
        value = sum(stay_bit << j for j in range(i)) | (exit_bit << i)
        patterns.append((value, i + 1))
    catch_value = sum(stay_bit << j for j in range(n_states - 1))
    patterns.append((catch_value, n_states - 1))
    return patterns


def comb_machine(
    table: PatternTable,
    n_states: int,
    exit_on_taken: bool,
    nodes: Optional[NodeCounts] = None,
) -> ScoredMachine:
    """The saturating loop-exit chain with *n_states* states."""
    if n_states < 1:
        raise ValueError("need at least one state")
    if n_states - 1 > table.bits:
        raise ValueError("chain deeper than the recorded history")
    nodes = nodes if nodes is not None else node_counts(table)
    total = table.executions()
    default = majority(nodes.get((0, 0), (0, 0)))
    if n_states == 1:
        return ScoredMachine(
            single_state_machine(default, "loop-exit"),
            max(nodes.get((0, 0), (0, 0))),
            total,
        )
    stay_bit = 0 if exit_on_taken else 1
    patterns = _comb_patterns(n_states, stay_bit)
    states: List[MachineState] = []
    last = n_states - 1
    for index, pattern in enumerate(patterns):
        counts = nodes.get(pattern, (0, 0))
        on_stay, on_exit = (min(index + 1, last), 0)
        on_not_taken = on_stay if exit_on_taken else on_exit
        on_taken = on_exit if exit_on_taken else on_stay
        states.append(
            MachineState(
                pattern_str(pattern),
                majority(counts, default),
                on_not_taken,
                on_taken,
                pattern,
            )
        )
    machine = PredictionMachine(tuple(states), 0, "loop-exit")
    return ScoredMachine(machine, partition_score(nodes, patterns), total)


def parity_machine(
    table: PatternTable,
    n_states: int,
    exit_on_taken: bool,
    nodes: Optional[NodeCounts] = None,
) -> ScoredMachine:
    """Figure 5's variant: the two deepest states alternate, tracking
    the parity of the iteration count beyond the chain."""
    if n_states < 3:
        raise ValueError("parity machine needs at least 3 states")
    nodes = nodes if nodes is not None else node_counts(table)
    total = table.executions()
    default = majority(nodes.get((0, 0), (0, 0)))
    stay_bit = 0 if exit_on_taken else 1
    exit_bit = 1 - stay_bit
    depth = n_states - 2  # chain states 0..depth-1, then parity pair
    chain_patterns: List[Pattern] = []
    for i in range(depth):
        value = sum(stay_bit << j for j in range(i)) | (exit_bit << i)
        chain_patterns.append((value, i + 1))
    chain_counts = [nodes.get(p, (0, 0)) for p in chain_patterns]
    # Deep patterns [stay^k, exit] with k >= depth split by parity of k.
    parity_counts = [[0, 0], [0, 0]]  # index = k % 2
    for k in range(depth, table.bits):
        value = sum(stay_bit << j for j in range(k)) | (exit_bit << k)
        counts = nodes.get((value, k + 1), (0, 0))
        parity_counts[k % 2][0] += counts[0]
        parity_counts[k % 2][1] += counts[1]
    # The all-stay pattern cannot reveal its exit distance; charge it to
    # the parity of the full history depth (documented approximation).
    all_stay = (sum(stay_bit << j for j in range(table.bits)), table.bits)
    counts = nodes.get(all_stay, (0, 0))
    parity_counts[table.bits % 2][0] += counts[0]
    parity_counts[table.bits % 2][1] += counts[1]

    states: List[MachineState] = []
    for i, pattern in enumerate(chain_patterns):
        # Chain state i has seen i stays; one more stay gives i+1.
        next_k = i + 1
        if next_k < depth:
            on_stay = next_k
        else:
            on_stay = depth + (next_k % 2 != depth % 2)
        states.append(
            MachineState(
                pattern_str(pattern),
                majority(chain_counts[i], default),
                0 if not exit_on_taken else on_stay,
                on_stay if not exit_on_taken else 0,
                pattern,
            )
        )
    # Parity states: index depth = parity (depth % 2), depth+1 = other.
    for offset in (0, 1):
        parity = (depth + offset) % 2
        counts_cell = (
            parity_counts[parity][0],
            parity_counts[parity][1],
        )
        other = depth + (1 - offset)
        name = f"{'1' if stay_bit else '0'}^{'even' if parity == 0 else 'odd'}"
        states.append(
            MachineState(
                name,
                majority(counts_cell, default),
                0 if not exit_on_taken else other,
                other if not exit_on_taken else 0,
                None,
            )
        )
    machine = PredictionMachine(tuple(states), 0, "loop-exit-parity")
    correct = sum(max(c) for c in chain_counts)
    correct += max(parity_counts[0]) + max(parity_counts[1])
    # Plus everything shorter than depth that the chain cannot see is
    # already covered: chain + parity states partition all histories.
    return ScoredMachine(machine, correct, total)


def best_loop_exit_machine(
    table: PatternTable,
    max_states: int,
    exit_on_taken: bool,
) -> ScoredMachine:
    """Best chain or parity machine with at most *max_states* states."""
    nodes = node_counts(table)
    best: Optional[ScoredMachine] = None
    considered = 0
    improvements = 0
    with OBS.span("sm.search.loop_exit", max_states=max_states) as span:
        for n_states in range(1, min(max_states, table.bits + 1) + 1):
            candidates = [comb_machine(table, n_states, exit_on_taken, nodes)]
            if n_states >= 3:
                candidates.append(
                    parity_machine(table, n_states, exit_on_taken, nodes)
                )
            for scored in candidates:
                considered += 1
                if best is None or scored.correct > best.correct:
                    improvements += 1
                    best = scored
        span.set(candidates=considered, improvements=improvements)
    assert best is not None
    OBS.add("sm.loop_exit.searches")
    OBS.add("sm.loop_exit.candidates", considered)
    OBS.add("sm.loop_exit.pruned", considered - improvements)
    OBS.add("sm.loop_exit.improvements", improvements)
    if best.total:
        OBS.set_gauge("sm.loop_exit.best_score", best.correct / best.total)
    return best
