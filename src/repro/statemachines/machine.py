"""Branch prediction state machines (Section 4).

A :class:`PredictionMachine` is a small deterministic automaton over
branch outcomes.  Each state carries a fixed direction prediction; the
transition function consumes the actual outcome.  Code replication
later materialises the automaton in the program text — one copy of the
code per state — so "the outcome of branches is represented in the
program state".

States usually correspond to *history patterns*: the last *k* outcomes
of the branch (or of all branches, for correlated machines).  Patterns
are stored as ``(value, length)`` with **bit 0 = most recent outcome**;
:func:`pattern_str` renders them the way the paper prints states
(oldest outcome leftmost, "the rightmost digit represents the direction
of the last iteration").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


Pattern = Tuple[int, int]  # (value, length), LSB = most recent outcome


def pattern_str(pattern: Optional[Pattern]) -> str:
    """Render a pattern the way the paper does (oldest bit first)."""
    if pattern is None:
        return "*"
    value, length = pattern
    if length == 0:
        return "ε"
    return "".join(str((value >> i) & 1) for i in range(length - 1, -1, -1))


def pattern_suffix(pattern: Pattern, bits: int) -> Pattern:
    """The *bits* most recent outcomes of *pattern*."""
    value, length = pattern
    if bits >= length:
        return pattern
    return (value & ((1 << bits) - 1), bits)


def is_suffix(shorter: Pattern, longer: Pattern) -> bool:
    """True iff *shorter* equals the most recent bits of *longer*."""
    svalue, slength = shorter
    lvalue, llength = longer
    if slength > llength:
        return False
    return (lvalue & ((1 << slength) - 1)) == svalue


@dataclass(frozen=True)
class MachineState:
    """One state: a prediction plus transitions on the two outcomes."""

    name: str
    prediction: bool
    on_not_taken: int
    on_taken: int
    pattern: Optional[Pattern] = None

    def next(self, taken: bool) -> int:
        return self.on_taken if taken else self.on_not_taken


@dataclass(frozen=True)
class PredictionMachine:
    """A scored branch prediction state machine."""

    states: Tuple[MachineState, ...]
    initial: int
    kind: str = "generic"

    def __post_init__(self) -> None:
        for state in self.states:
            if not (0 <= state.on_taken < len(self.states)):
                raise ValueError(f"state {state.name!r}: bad taken transition")
            if not (0 <= state.on_not_taken < len(self.states)):
                raise ValueError(f"state {state.name!r}: bad not-taken transition")
        if not (0 <= self.initial < len(self.states)):
            raise ValueError("bad initial state")

    @property
    def n_states(self) -> int:
        return len(self.states)

    def next_state(self, state: int, taken: bool) -> int:
        return self.states[state].next(taken)

    def predict(self, state: int) -> bool:
        return self.states[state].prediction

    def simulate(self, outcomes: Iterable[bool]) -> Tuple[int, int]:
        """Run the machine over an outcome sequence.

        Returns (correct predictions, total outcomes) — the exact
        semantics the replicated code realises.
        """
        states = self.states
        current = self.initial
        correct = 0
        total = 0
        for taken in outcomes:
            state = states[current]
            if state.prediction is bool(taken):
                correct += 1
            total += 1
            current = state.on_taken if taken else state.on_not_taken
        return correct, total

    def reachable_states(self) -> List[int]:
        """States reachable from the initial state."""
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            index = stack.pop()
            state = self.states[index]
            for succ in (state.on_not_taken, state.on_taken):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return sorted(seen)

    def is_strongly_connected(self) -> bool:
        """True when every state can reach every other state — the
        paper's validity requirement for intra-loop machines."""
        count = len(self.states)
        for start in range(count):
            seen = {start}
            stack = [start]
            while stack:
                index = stack.pop()
                state = self.states[index]
                for succ in (state.on_not_taken, state.on_taken):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            if len(seen) != count:
                return False
        return True

    def describe(self) -> str:
        """One-line-per-state textual summary."""
        lines = [f"{self.kind} machine, {self.n_states} states, initial "
                 f"{self.states[self.initial].name!r}"]
        for index, state in enumerate(self.states):
            marker = "*" if index == self.initial else " "
            lines.append(
                f" {marker} [{state.name}] predict "
                f"{'taken' if state.prediction else 'not-taken'}; "
                f"0 -> {self.states[state.on_not_taken].name}, "
                f"1 -> {self.states[state.on_taken].name}"
            )
        return "\n".join(lines)


@dataclass
class ScoredMachine:
    """A machine plus its training-profile score.

    ``machine`` is a :class:`PredictionMachine` or a
    :class:`~repro.statemachines.correlated.CorrelatedMachine` (the two
    machine families share scoring but not transition structure).
    """

    machine: "object"
    correct: int
    total: int

    @property
    def mispredictions(self) -> int:
        return self.total - self.correct

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.total if self.total else 0.0


def single_state_machine(prediction: bool, kind: str = "profile") -> PredictionMachine:
    """The degenerate 1-state machine — plain profile prediction."""
    state = MachineState("*", prediction, 0, 0, None)
    return PredictionMachine((state,), 0, kind)
