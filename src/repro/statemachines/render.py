"""Rendering state machines as Graphviz DOT or ASCII.

The paper's Figures 2-5 are state machine diagrams; these helpers
regenerate their content for any machine the search produces.
"""

from __future__ import annotations

from typing import List

from .correlated import CorrelatedMachine
from .machine import PredictionMachine, pattern_str


def machine_to_dot(machine: PredictionMachine, name: str = "machine") -> str:
    """Graphviz DOT for a transition machine."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for index, state in enumerate(machine.states):
        shape = "doublecircle" if index == machine.initial else "circle"
        prediction = "T" if state.prediction else "N"
        lines.append(
            f'  s{index} [label="{state.name}\\npredict {prediction}", '
            f"shape={shape}];"
        )
    for index, state in enumerate(machine.states):
        lines.append(f'  s{index} -> s{state.on_not_taken} [label="0"];')
        lines.append(f'  s{index} -> s{state.on_taken} [label="1"];')
    lines.append("}")
    return "\n".join(lines)


def correlated_to_dot(machine: CorrelatedMachine, name: str = "machine") -> str:
    """Graphviz DOT for a correlated (transition-free) machine."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for index, (pattern, prediction) in enumerate(
        zip(machine.paths, machine.predictions)
    ):
        label = pattern_str(pattern)
        lines.append(
            f'  p{index} [label="path {label}\\npredict '
            f'{"T" if prediction else "N"}", shape=box];'
        )
    lines.append(
        f'  fallback [label="no match\\npredict '
        f'{"T" if machine.fallback else "N"}", shape=box, style=dashed];'
    )
    lines.append("}")
    return "\n".join(lines)


def joint_to_dot(machine, name: str = "machine") -> str:
    """Graphviz DOT for a joint loop machine (per-branch predictions)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for index, state in enumerate(machine.states):
        shape = "doublecircle" if index == machine.initial else "circle"
        predictions = "\\n".join(
            f"{site.block}: {'T' if p else 'N'}" for site, p in state.predictions
        )
        lines.append(
            f'  s{index} [label="{state.name}\\n{predictions}", shape={shape}];'
        )
    for index, state in enumerate(machine.states):
        lines.append(f'  s{index} -> s{state.on_not_taken} [label="0"];')
        lines.append(f'  s{index} -> s{state.on_taken} [label="1"];')
    lines.append("}")
    return "\n".join(lines)


def machine_to_ascii(machine: PredictionMachine) -> str:
    """Compact transition table."""
    rows: List[str] = []
    width = max(len(state.name) for state in machine.states)
    header = f"{'state':<{width}}  pred  on-0{'':<{width - 4 if width > 4 else 0}}  on-1"
    rows.append(header)
    for index, state in enumerate(machine.states):
        marker = "*" if index == machine.initial else " "
        rows.append(
            f"{state.name:<{width}}{marker} {'T' if state.prediction else 'N':>4}  "
            f"{machine.states[state.on_not_taken].name:<{width}}  "
            f"{machine.states[state.on_taken].name}"
        )
    return "\n".join(rows)
