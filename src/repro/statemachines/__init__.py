"""Branch prediction state machines (Section 4 of the paper)."""

from .correlated import (
    CorrelatedMachine,
    best_correlated_machine,
    correlated_machine_options,
)
from .intra_loop import (
    best_intra_machine,
    greedy_intra_machine,
    machine_from_shape,
)
from .joint import (
    JointLoopMachine,
    JointState,
    ScoredJointMachine,
    best_joint_machine,
)
from .loop_exit import best_loop_exit_machine, comb_machine, parity_machine
from .minimize import minimize_machine
from .serialize import MachineFormatError, machine_from_json, machine_to_json
from .machine import (
    MachineState,
    Pattern,
    PredictionMachine,
    ScoredMachine,
    is_suffix,
    pattern_str,
    pattern_suffix,
    single_state_machine,
)
from .render import correlated_to_dot, joint_to_dot, machine_to_ascii, machine_to_dot
from .scoring import (
    NodeCounts,
    leaf_counts,
    longest_match_groups,
    majority,
    node_counts,
    partition_score,
)
from .trie import (
    LEAF,
    Shape,
    TrieMachineShape,
    analyze_shape,
    shape_depth,
    shape_leaves,
    shapes_with_leaves,
    valid_shapes,
)

__all__ = [
    "CorrelatedMachine",
    "JointLoopMachine",
    "JointState",
    "LEAF",
    "ScoredJointMachine",
    "best_joint_machine",
    "MachineState",
    "NodeCounts",
    "Pattern",
    "PredictionMachine",
    "ScoredMachine",
    "Shape",
    "TrieMachineShape",
    "analyze_shape",
    "best_correlated_machine",
    "best_intra_machine",
    "correlated_machine_options",
    "best_loop_exit_machine",
    "comb_machine",
    "correlated_to_dot",
    "greedy_intra_machine",
    "is_suffix",
    "joint_to_dot",
    "leaf_counts",
    "longest_match_groups",
    "machine_from_shape",
    "machine_to_ascii",
    "machine_from_json",
    "machine_to_dot",
    "machine_to_json",
    "MachineFormatError",
    "minimize_machine",
    "majority",
    "node_counts",
    "parity_machine",
    "partition_score",
    "pattern_str",
    "pattern_suffix",
    "shape_depth",
    "shape_leaves",
    "shapes_with_leaves",
    "single_state_machine",
    "valid_shapes",
]
