"""Intra-loop branch state machines (Section 4.1).

For a branch inside a loop whose both successors stay in the loop, a
state represents "the last *n* branch directions of previous iterations
of the loop".  ``best_intra_machine`` performs the paper's exhaustive
search: every valid trie machine with at most ``max_states`` states is
scored against the branch's local pattern table and the one predicting
the most branches correctly wins (ties go to fewer states — less code
replication for the same accuracy).

``greedy_intra_machine`` is the ablation: grow the machine one state at
a time by always splitting the most profitable leaf.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs import OBS
from ..profiling import PatternTable
from .machine import (
    MachineState,
    Pattern,
    PredictionMachine,
    ScoredMachine,
    pattern_str,
    single_state_machine,
)
from .scoring import NodeCounts, majority, node_counts, partition_score
from .trie import TrieMachineShape, valid_shapes


def machine_from_shape(
    info: TrieMachineShape,
    nodes: NodeCounts,
    kind: str = "intra-loop",
    default: Optional[bool] = None,
) -> PredictionMachine:
    """Instantiate a trie shape with predictions from *nodes*."""
    if default is None:
        default = majority(nodes.get((0, 0), (0, 0)))
    states = []
    for index, leaf in enumerate(info.leaves):
        counts = nodes.get(leaf, (0, 0))
        prediction = majority(counts, default)
        on_not_taken, on_taken = info.transitions[index]
        states.append(
            MachineState(
                pattern_str(leaf), prediction, on_not_taken, on_taken, leaf
            )
        )
    return PredictionMachine(tuple(states), info.initial, kind)


def best_intra_machine(
    table: PatternTable,
    max_states: int,
    require_connected: bool = True,
    exact_states: bool = False,
) -> ScoredMachine:
    """Exhaustive search for the best intra-loop machine.

    Considers machines with 1..max_states states (or exactly
    *max_states* when *exact_states*), depth limited by the table's
    history length.  Returns the machine with the most correct
    predictions on the training profile; among equals, the one with
    fewer states.
    """
    if max_states < 1:
        raise ValueError("need at least one state")
    nodes = node_counts(table)
    total = table.executions()
    default = majority(nodes.get((0, 0), (0, 0)))
    best_machine = single_state_machine(default, "intra-loop")
    best_correct = max(nodes.get((0, 0), (0, 0)))
    sizes = [max_states] if exact_states else range(2, max_states + 1)
    # Search telemetry is aggregated locally and reported once per call
    # — the inner loop enumerates thousands of shapes and must stay
    # free of per-candidate observer traffic.
    candidates = 0
    improvements = 0
    with OBS.span("sm.search.intra", max_states=max_states) as span:
        for n_states in sizes:
            if n_states == 1:
                continue
            for info in valid_shapes(n_states, table.bits, require_connected):
                candidates += 1
                correct = partition_score(nodes, info.leaves)
                if correct > best_correct:
                    improvements += 1
                    best_correct = correct
                    best_machine = machine_from_shape(
                        info, nodes, "intra-loop", default
                    )
        span.set(candidates=candidates, improvements=improvements)
    OBS.add("sm.intra.searches")
    OBS.add("sm.intra.candidates", candidates)
    OBS.add("sm.intra.pruned", candidates - improvements)
    OBS.add("sm.intra.improvements", improvements)
    if total:
        OBS.set_gauge("sm.intra.best_score", best_correct / total)
    return ScoredMachine(best_machine, best_correct, total)


def greedy_intra_machine(
    table: PatternTable, max_states: int
) -> ScoredMachine:
    """Greedy leaf-splitting search (the ablation baseline).

    Starts from the single-state machine and repeatedly splits the leaf
    whose split most increases correct predictions, until no split
    helps or the state budget is reached.  May miss machines the
    exhaustive search finds (splits are monotone refinements).
    """
    nodes = node_counts(table)
    total = table.executions()
    leaves: List[Pattern] = [(0, 0)]  # the empty pattern: predict bias

    def score(current: List[Pattern]) -> int:
        return partition_score(nodes, current)

    while len(leaves) < max_states:
        best_gain = 0
        best_split: Optional[int] = None
        current = score(leaves)
        for index, (value, length) in enumerate(leaves):
            if length >= table.bits:
                continue
            split = [
                (value, length + 1),
                (value | (1 << length), length + 1),
            ]
            candidate = leaves[:index] + split + leaves[index + 1 :]
            # Splits that leave some transition underdetermined (the
            # next state would depend on history the machine forgot)
            # are invalid — the exhaustive search rejects the same
            # shapes via analyze_shape.
            if not _is_determined(candidate):
                continue
            gain = score(candidate) - current
            if gain > best_gain:
                best_gain = gain
                best_split = index
        if best_split is None:
            break
        value, length = leaves[best_split]
        leaves[best_split : best_split + 1] = [
            (value, length + 1),
            (value | (1 << length), length + 1),
        ]
    machine = _machine_from_partition(leaves, nodes, "intra-loop")
    return ScoredMachine(machine, score(leaves), total)


def _is_determined(leaves: List[Pattern]) -> bool:
    """True when every transition of the partition machine resolves
    using only the bits the source state knows."""
    members = set(leaves)

    def resolves(value: int, length: int) -> bool:
        for bits in range(length, -1, -1):
            if (value & ((1 << bits) - 1), bits) in members:
                return True
        return False

    for value, length in leaves:
        for bit in (0, 1):
            if not resolves((value << 1) | bit, length + 1):
                return False
    return True


def _machine_from_partition(
    leaves: List[Pattern], nodes: NodeCounts, kind: str
) -> PredictionMachine:
    """Build a machine from an arbitrary partition of histories.

    Transitions resolve to the longest leaf determined by the known
    bits; the partition produced by leaf splitting is always a full
    trie, so resolution is exact.
    """
    default = majority(nodes.get((0, 0), (0, 0)))
    if len(leaves) == 1:
        return single_state_machine(
            majority(nodes.get(leaves[0], (0, 0)), default), kind
        )
    index = {leaf: i for i, leaf in enumerate(leaves)}

    def resolve(value: int, length: int) -> int:
        # Longest leaf that matches the known bits.
        for bits in range(min(length, max(l for _, l in leaves)), -1, -1):
            key = (value & ((1 << bits) - 1), bits)
            if key in index:
                return index[key]
        raise AssertionError("partition must contain a matching leaf")

    states: List[MachineState] = []
    for value, length in leaves:
        succ = []
        for bit in (0, 1):
            succ.append(resolve((value << 1) | bit, length + 1))
        counts = nodes.get((value, length), (0, 0))
        states.append(
            MachineState(
                pattern_str((value, length)),
                majority(counts, default),
                succ[0],
                succ[1],
                (value, length),
            )
        )
    initial = resolve(0, max(l for _, l in leaves))
    return PredictionMachine(tuple(states), initial, kind)
