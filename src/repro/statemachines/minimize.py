"""State machine minimisation.

Every machine state becomes a copy of the loop, so redundant states are
pure code-size waste.  Two states are *equivalent* when they predict
the same direction and their successors are (recursively) equivalent —
the Moore-machine variant of DFA minimisation, solved by the classic
partition-refinement algorithm.

``minimize_machine`` returns a machine with the same prediction
behaviour on every outcome sequence (property-tested) and the fewest
states that can have it.  The exhaustive trie search usually produces
already-minimal machines; minimisation pays off for hand-built or
chain machines whose deep states agree.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .machine import MachineState, PredictionMachine


def minimize_machine(machine: PredictionMachine) -> PredictionMachine:
    """Merge behaviourally equivalent states (reachable ones only)."""
    reachable = machine.reachable_states()
    index_of = {state: i for i, state in enumerate(reachable)}

    # Initial partition: by prediction.
    block_of: List[int] = [
        0 if machine.states[state].prediction else 1 for state in reachable
    ]
    # Normalise block ids to be dense.
    block_of = _renumber(block_of)

    while True:
        # Refine: signature = (block, successor blocks).
        signatures: List[Tuple[int, int, int]] = []
        for position, state in enumerate(reachable):
            on_not_taken = machine.states[state].on_not_taken
            on_taken = machine.states[state].on_taken
            signatures.append(
                (
                    block_of[position],
                    block_of[index_of[on_not_taken]],
                    block_of[index_of[on_taken]],
                )
            )
        refined = _renumber([_intern(signatures)[i] for i in range(len(reachable))])
        if refined == block_of:
            break
        block_of = refined

    block_count = max(block_of) + 1
    if block_count == len(reachable) and reachable == list(range(machine.n_states)):
        return machine  # already minimal

    # Build the quotient machine: one representative per block.
    representative: Dict[int, int] = {}
    for position, block in enumerate(block_of):
        representative.setdefault(block, reachable[position])
    states: List[MachineState] = []
    for block in range(block_count):
        old = machine.states[representative[block]]
        members = [
            machine.states[reachable[i]].name
            for i, b in enumerate(block_of)
            if b == block
        ]
        name = members[0] if len(members) == 1 else "{" + ",".join(members) + "}"
        states.append(
            MachineState(
                name,
                old.prediction,
                block_of[index_of[old.on_not_taken]],
                block_of[index_of[old.on_taken]],
                old.pattern if len(members) == 1 else None,
            )
        )
    initial = block_of[index_of[machine.initial]]
    return PredictionMachine(tuple(states), initial, machine.kind)


def _renumber(blocks: List[int]) -> List[int]:
    """Relabel block ids densely in first-appearance order."""
    mapping: Dict[int, int] = {}
    out: List[int] = []
    for block in blocks:
        if block not in mapping:
            mapping[block] = len(mapping)
        out.append(mapping[block])
    return out


def _intern(signatures: List[Tuple[int, int, int]]) -> Dict[int, int]:
    """Map each position to a dense id of its signature."""
    ids: Dict[Tuple[int, int, int], int] = {}
    out: Dict[int, int] = {}
    for position, signature in enumerate(signatures):
        if signature not in ids:
            ids[signature] = len(ids)
        out[position] = ids[signature]
    return out
