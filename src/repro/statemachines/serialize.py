"""Machine serialisation (JSON).

Chosen machines are compiler artefacts worth persisting — a build
system would compute them once per training run and reuse them across
compilations.  Round-trips :class:`PredictionMachine`,
:class:`CorrelatedMachine` and :class:`JointLoopMachine`.
"""

from __future__ import annotations

import json
from typing import Union

from ..ir import BranchSite
from .correlated import CorrelatedMachine
from .joint import JointLoopMachine, JointState
from .machine import MachineState, PredictionMachine

Machine = Union[PredictionMachine, CorrelatedMachine, JointLoopMachine]


class MachineFormatError(Exception):
    """Raised when serialised machine data is malformed."""


def machine_to_json(machine: Machine) -> str:
    """Serialise any machine kind to a JSON string."""
    if isinstance(machine, PredictionMachine):
        document = {
            "type": "prediction",
            "kind": machine.kind,
            "initial": machine.initial,
            "states": [
                {
                    "name": state.name,
                    "prediction": state.prediction,
                    "on_not_taken": state.on_not_taken,
                    "on_taken": state.on_taken,
                    "pattern": list(state.pattern) if state.pattern else None,
                }
                for state in machine.states
            ],
        }
    elif isinstance(machine, CorrelatedMachine):
        document = {
            "type": "correlated",
            "kind": machine.kind,
            "paths": [list(p) for p in machine.paths],
            "predictions": list(machine.predictions),
            "fallback": machine.fallback,
        }
    elif isinstance(machine, JointLoopMachine):
        document = {
            "type": "joint",
            "kind": machine.kind,
            "initial": machine.initial,
            "sites": [[s.function, s.block] for s in machine.sites],
            "states": [
                {
                    "name": state.name,
                    "predictions": [
                        [site.function, site.block, p]
                        for site, p in state.predictions
                    ],
                    "on_not_taken": state.on_not_taken,
                    "on_taken": state.on_taken,
                    "pattern": list(state.pattern) if state.pattern else None,
                }
                for state in machine.states
            ],
        }
    else:
        raise MachineFormatError(f"cannot serialise {type(machine).__name__}")
    return json.dumps(document, indent=2)


def machine_from_json(text: str) -> Machine:
    """Deserialise a machine written by :func:`machine_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise MachineFormatError(f"bad JSON: {error}") from None
    try:
        machine_type = document["type"]
        if machine_type == "prediction":
            states = tuple(
                MachineState(
                    entry["name"],
                    bool(entry["prediction"]),
                    entry["on_not_taken"],
                    entry["on_taken"],
                    tuple(entry["pattern"]) if entry["pattern"] else None,
                )
                for entry in document["states"]
            )
            return PredictionMachine(states, document["initial"], document["kind"])
        if machine_type == "correlated":
            return CorrelatedMachine(
                tuple(tuple(p) for p in document["paths"]),
                tuple(bool(p) for p in document["predictions"]),
                bool(document["fallback"]),
                document["kind"],
            )
        if machine_type == "joint":
            sites = tuple(
                BranchSite(function, block)
                for function, block in document["sites"]
            )
            states = tuple(
                JointState(
                    entry["name"],
                    tuple(
                        (BranchSite(function, block), bool(p))
                        for function, block, p in entry["predictions"]
                    ),
                    entry["on_not_taken"],
                    entry["on_taken"],
                    tuple(entry["pattern"]) if entry["pattern"] else None,
                )
                for entry in document["states"]
            )
            return JointLoopMachine(sites, states, document["initial"], document["kind"])
    except (KeyError, TypeError, ValueError) as error:
        raise MachineFormatError(f"malformed machine document: {error}") from None
    raise MachineFormatError(f"unknown machine type {machine_type!r}")
