"""Machine serialisation (JSON).

Chosen machines are compiler artefacts worth persisting — a build
system would compute them once per training run and reuse them across
compilations, and the service layer ships them over the wire.
Round-trips :class:`PredictionMachine`, :class:`CorrelatedMachine` and
:class:`JointLoopMachine`.

Every document carries a ``"version"`` stamp (:data:`FORMAT_VERSION`).
:func:`machine_from_json` rejects documents with a missing or unknown
version — a consumer must never silently misinterpret a machine written
by a newer producer — and wraps every malformed-payload failure in
:class:`MachineFormatError`.
"""

from __future__ import annotations

import json
from typing import Optional, Union

from ..ir import BranchSite
from .correlated import CorrelatedMachine
from .joint import JointLoopMachine, JointState
from .machine import MachineState, PredictionMachine

Machine = Union[PredictionMachine, CorrelatedMachine, JointLoopMachine]

#: Wire-format version stamped into every serialised machine.  Bump on
#: any schema change; readers reject versions they do not know.
FORMAT_VERSION = 1


class MachineFormatError(Exception):
    """Raised when serialised machine data is malformed."""


def machine_to_json(machine: Machine) -> str:
    """Serialise any machine kind to a JSON string."""
    if isinstance(machine, PredictionMachine):
        document = {
            "version": FORMAT_VERSION,
            "type": "prediction",
            "kind": machine.kind,
            "initial": machine.initial,
            "states": [
                {
                    "name": state.name,
                    "prediction": state.prediction,
                    "on_not_taken": state.on_not_taken,
                    "on_taken": state.on_taken,
                    "pattern": list(state.pattern) if state.pattern else None,
                }
                for state in machine.states
            ],
        }
    elif isinstance(machine, CorrelatedMachine):
        document = {
            "version": FORMAT_VERSION,
            "type": "correlated",
            "kind": machine.kind,
            "paths": [list(p) for p in machine.paths],
            "predictions": list(machine.predictions),
            "fallback": machine.fallback,
        }
    elif isinstance(machine, JointLoopMachine):
        document = {
            "version": FORMAT_VERSION,
            "type": "joint",
            "kind": machine.kind,
            "initial": machine.initial,
            "sites": [[s.function, s.block] for s in machine.sites],
            "states": [
                {
                    "name": state.name,
                    "predictions": [
                        [site.function, site.block, p]
                        for site, p in state.predictions
                    ],
                    "on_not_taken": state.on_not_taken,
                    "on_taken": state.on_taken,
                    "pattern": list(state.pattern) if state.pattern else None,
                }
                for state in machine.states
            ],
        }
    else:
        raise MachineFormatError(f"cannot serialise {type(machine).__name__}")
    return json.dumps(document, indent=2)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise MachineFormatError(f"malformed machine document: {message}")


def _check_state_index(value: object, n_states: int, field: str) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{field} must be an integer",
    )
    _require(0 <= value < n_states, f"{field} {value} out of range 0..{n_states - 1}")
    return value  # type: ignore[return-value]


def _check_pattern(value: object) -> Optional[tuple]:
    if value is None:
        return None
    _require(
        isinstance(value, list)
        and all(isinstance(bit, int) and not isinstance(bit, bool) for bit in value),
        "pattern must be null or a list of integers",
    )
    return tuple(value)


def machine_from_json(text: str) -> Machine:
    """Deserialise a machine written by :func:`machine_to_json`.

    Raises :class:`MachineFormatError` — never a bare
    ``KeyError``/``TypeError`` — on any malformed payload, and rejects
    documents whose ``"version"`` is missing or not
    :data:`FORMAT_VERSION`.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise MachineFormatError(f"bad JSON: {error}") from None
    if not isinstance(document, dict):
        raise MachineFormatError(
            f"machine document must be a JSON object, got {type(document).__name__}"
        )
    version = document.get("version")
    # bool is an int subclass: json true would equal 1 — reject it too.
    if isinstance(version, bool) or version != FORMAT_VERSION:
        raise MachineFormatError(
            f"unsupported machine format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        machine_type = document["type"]
        if machine_type == "prediction":
            kind = document["kind"]
            _require(isinstance(kind, str), "kind must be a string")
            raw_states = document["states"]
            _require(
                isinstance(raw_states, list) and raw_states,
                "states must be a non-empty list",
            )
            n_states = len(raw_states)
            states = tuple(
                MachineState(
                    str(entry["name"]),
                    bool(entry["prediction"]),
                    _check_state_index(entry["on_not_taken"], n_states, "on_not_taken"),
                    _check_state_index(entry["on_taken"], n_states, "on_taken"),
                    _check_pattern(entry["pattern"]),
                )
                for entry in raw_states
            )
            initial = _check_state_index(document["initial"], n_states, "initial")
            return PredictionMachine(states, initial, kind)
        if machine_type == "correlated":
            kind = document["kind"]
            _require(isinstance(kind, str), "kind must be a string")
            raw_paths = document["paths"]
            _require(isinstance(raw_paths, list), "paths must be a list")
            paths = []
            for raw in raw_paths:
                _require(
                    isinstance(raw, list)
                    and len(raw) == 2
                    and all(
                        isinstance(part, int) and not isinstance(part, bool)
                        for part in raw
                    ),
                    "each path must be a [pattern, depth] integer pair",
                )
                paths.append(tuple(raw))
            raw_predictions = document["predictions"]
            _require(
                isinstance(raw_predictions, list)
                and len(raw_predictions) == len(paths),
                "predictions must be a list aligned with paths",
            )
            fallback = document["fallback"]
            _require(isinstance(fallback, bool), "fallback must be a boolean")
            return CorrelatedMachine(
                tuple(paths),
                tuple(bool(p) for p in raw_predictions),
                fallback,
                kind,
            )
        if machine_type == "joint":
            kind = document["kind"]
            _require(isinstance(kind, str), "kind must be a string")
            raw_sites = document["sites"]
            _require(isinstance(raw_sites, list), "sites must be a list")
            _require(
                all(isinstance(pair, list) and len(pair) == 2 for pair in raw_sites),
                "each site must be a [function, block] pair",
            )
            sites = tuple(
                BranchSite(str(function), str(block))
                for function, block in raw_sites
            )
            raw_states = document["states"]
            _require(
                isinstance(raw_states, list) and raw_states,
                "states must be a non-empty list",
            )
            n_states = len(raw_states)
            states = tuple(
                JointState(
                    str(entry["name"]),
                    tuple(
                        (BranchSite(str(function), str(block)), bool(p))
                        for function, block, p in entry["predictions"]
                    ),
                    _check_state_index(entry["on_not_taken"], n_states, "on_not_taken"),
                    _check_state_index(entry["on_taken"], n_states, "on_taken"),
                    _check_pattern(entry["pattern"]),
                )
                for entry in raw_states
            )
            initial = _check_state_index(document["initial"], n_states, "initial")
            return JointLoopMachine(sites, states, initial, kind)
    except MachineFormatError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise MachineFormatError(f"malformed machine document: {error}") from None
    raise MachineFormatError(f"unknown machine type {machine_type!r}")
