"""Dominator analysis (Cooper–Harvey–Kennedy).

Computes immediate dominators over the reachable part of a CFG using
the simple-and-fast iterative algorithm, and wraps them in a
:class:`DominatorTree` with O(depth) dominance queries — all the loop
analysis needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .graph import CFG


class DominatorTree:
    """Immediate-dominator tree for the reachable blocks of a CFG."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.idom: Dict[str, Optional[str]] = _compute_idoms(cfg)
        self.children: Dict[str, List[str]] = {label: [] for label in self.idom}
        for label, parent in self.idom.items():
            if parent is not None and parent != label:
                self.children[parent].append(label)
        self.depth: Dict[str, int] = {}
        self._compute_depths()

    def _compute_depths(self) -> None:
        self.depth[self.cfg.entry] = 0
        stack = [self.cfg.entry]
        while stack:
            label = stack.pop()
            for child in self.children[label]:
                self.depth[child] = self.depth[label] + 1
                stack.append(child)

    def dominates(self, a: str, b: str) -> bool:
        """True iff *a* dominates *b* (reflexively)."""
        while b is not None and self.depth.get(b, -1) > self.depth.get(a, -1):
            b = self.idom[b]  # type: ignore[assignment]
        return a == b

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def immediate_dominator(self, label: str) -> Optional[str]:
        """The idom of *label* (None for the entry)."""
        parent = self.idom[label]
        return None if parent == label else parent


def _compute_idoms(cfg: CFG) -> Dict[str, Optional[str]]:
    """Cooper–Harvey–Kennedy iterative dominator computation."""
    rpo = cfg.reverse_postorder()
    index = {label: i for i, label in enumerate(rpo)}
    idom: Dict[str, Optional[str]] = {cfg.entry: cfg.entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo:
            if label == cfg.entry:
                continue
            processed = [
                p for p in cfg.preds[label] if p in index and idom.get(p) is not None
            ]
            if not processed:
                continue
            new_idom = processed[0]
            for pred in processed[1:]:
                new_idom = intersect(pred, new_idom)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True
    return idom
