"""Natural-loop detection and the loop nesting forest [ASU86 §10.4].

A back edge is an edge ``tail -> head`` where ``head`` dominates
``tail``.  The natural loop of a header is the union, over its back
edges, of the nodes that reach the tail without passing through the
header.  Loops sharing a header are merged.  The forest records, per
loop: body, back edges, exit edges, nesting parent and depth — exactly
the "natural loop analysis" the paper performs before classifying
branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .dominators import DominatorTree
from .graph import CFG


@dataclass
class Loop:
    """One natural loop."""

    header: str
    body: Set[str] = field(default_factory=set)
    back_edges: List[Tuple[str, str]] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)
    depth: int = 1

    def __contains__(self, label: str) -> bool:
        return label in self.body

    def exit_edges(self, cfg: CFG) -> List[Tuple[str, str]]:
        """Edges from inside the loop to outside it."""
        return [
            (label, target)
            for label in self.body
            for target in cfg.succs[label]
            if target not in self.body
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Loop(header={self.header!r}, |body|={len(self.body)})"


class LoopForest:
    """All natural loops of a function, with nesting structure."""

    def __init__(self, cfg: CFG, domtree: Optional[DominatorTree] = None) -> None:
        self.cfg = cfg
        self.domtree = domtree or DominatorTree(cfg)
        self.loops: List[Loop] = _find_loops(cfg, self.domtree)
        self._by_header: Dict[str, Loop] = {l.header: l for l in self.loops}
        _build_nesting(self.loops)
        # Innermost loop per block.
        self._innermost: Dict[str, Loop] = {}
        for loop in sorted(self.loops, key=lambda l: l.depth):
            for label in loop.body:
                self._innermost[label] = loop

    def loop_of(self, label: str) -> Optional[Loop]:
        """Innermost loop containing *label*, or None."""
        return self._innermost.get(label)

    def loop_with_header(self, header: str) -> Optional[Loop]:
        return self._by_header.get(header)

    def top_level(self) -> List[Loop]:
        """Loops not nested in any other loop."""
        return [loop for loop in self.loops if loop.parent is None]

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)


def _find_loops(cfg: CFG, domtree: DominatorTree) -> List[Loop]:
    reachable = set(domtree.depth)
    loops_by_header: Dict[str, Loop] = {}
    for tail, head in cfg.edges():
        if tail not in reachable or head not in reachable:
            continue
        if not domtree.dominates(head, tail):
            continue
        loop = loops_by_header.get(head)
        if loop is None:
            loop = Loop(head, {head})
            loops_by_header[head] = loop
        loop.back_edges.append((tail, head))
        # Backward walk from the tail, stopping at the header.
        stack = [tail]
        while stack:
            label = stack.pop()
            if label in loop.body:
                continue
            loop.body.add(label)
            stack.extend(p for p in cfg.preds[label] if p in reachable)
    return list(loops_by_header.values())


def _build_nesting(loops: List[Loop]) -> None:
    """Set parent/children/depth.  The parent of L is the smallest loop
    strictly containing L's header that is not L itself."""
    for loop in loops:
        best: Optional[Loop] = None
        for other in loops:
            if other is loop:
                continue
            if loop.header in other.body and loop.body <= other.body:
                if best is None or len(other.body) < len(best.body):
                    best = other
        loop.parent = best
        if best is not None:
            best.children.append(loop)
    # Depths: roots are depth 1.
    def set_depth(loop: Loop, depth: int) -> None:
        loop.depth = depth
        for child in loop.children:
            set_depth(child, depth + 1)

    for loop in loops:
        if loop.parent is None:
            set_depth(loop, 1)
