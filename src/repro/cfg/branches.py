"""Branch classification, following Section 5 of the paper.

Every conditional branch is classified relative to the innermost loop
containing it:

* ``INTRA_LOOP`` — both successors stay inside the loop ("intra loop
  branches do not leave the loop");
* ``LOOP_EXIT``  — at least one successor leaves the loop ("loop exit
  branches ... go from inside the loop to the surrounding code");
* ``NON_LOOP``   — the branch is not inside any loop; these are the
  candidates for the *correlated branch* strategy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir import BranchSite, Function, Program
from .graph import CFG
from .loops import Loop, LoopForest


class BranchClass(enum.Enum):
    """Kind of a conditional branch relative to loop structure."""

    INTRA_LOOP = "intra-loop"
    LOOP_EXIT = "loop-exit"
    NON_LOOP = "non-loop"


@dataclass
class BranchInfo:
    """Classification record for one static branch site."""

    site: BranchSite
    kind: BranchClass
    loop: Optional[Loop]
    #: True when the *taken* edge is the one leaving the loop
    #: (meaningful for LOOP_EXIT branches only).
    taken_exits: bool = False
    not_taken_exits: bool = False


def classify_function_branches(function: Function) -> Dict[BranchSite, BranchInfo]:
    """Classify every conditional branch in *function*."""
    cfg = CFG.from_function(function)
    forest = LoopForest(cfg)
    reachable = cfg.reachable()
    result: Dict[BranchSite, BranchInfo] = {}
    for block in function:
        branch = block.branch
        if branch is None or block.label not in reachable:
            continue
        site = BranchSite(function.name, block.label)
        loop = forest.loop_of(block.label)
        if loop is None:
            result[site] = BranchInfo(site, BranchClass.NON_LOOP, None)
            continue
        taken_exits = branch.taken not in loop.body
        not_taken_exits = branch.not_taken not in loop.body
        if taken_exits or not_taken_exits:
            kind = BranchClass.LOOP_EXIT
        else:
            kind = BranchClass.INTRA_LOOP
        result[site] = BranchInfo(site, kind, loop, taken_exits, not_taken_exits)
    return result


def classify_branches(program: Program) -> Dict[BranchSite, BranchInfo]:
    """Classify every conditional branch in *program*."""
    result: Dict[BranchSite, BranchInfo] = {}
    for function in program:
        result.update(classify_function_branches(function))
    return result


def branches_of_class(
    infos: Dict[BranchSite, BranchInfo], kind: BranchClass
) -> List[BranchSite]:
    """Sites with classification *kind*, in stable order."""
    return [site for site, info in infos.items() if info.kind is kind]
