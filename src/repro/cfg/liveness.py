"""Live-variable analysis (backward dataflow at block granularity).

Speculative code motion needs to know whether hoisting an instruction
above a branch could clobber a register the off-trace path still
reads; ``live_in`` at a block answers exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import Function, Instr
from .graph import CFG


class LivenessInfo:
    """Per-block live-in / live-out register sets for one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        cfg = CFG.from_function(function)
        use: Dict[str, Set[str]] = {}
        define: Dict[str, Set[str]] = {}
        for block in function:
            used: Set[str] = set()
            defined: Set[str] = set()
            instrs: List[Instr] = list(block.instrs)
            if block.terminator is not None:
                instrs.append(block.terminator)
            for instr in instrs:
                for reg in instr.uses():
                    if reg not in defined:
                        used.add(reg)
                defined.update(instr.defs())
            use[block.label] = used
            define[block.label] = defined

        self.live_in: Dict[str, Set[str]] = {label: set() for label in function.blocks}
        self.live_out: Dict[str, Set[str]] = {label: set() for label in function.blocks}
        changed = True
        while changed:
            changed = False
            for label in function.blocks:
                out: Set[str] = set()
                for succ in cfg.succs[label]:
                    out |= self.live_in[succ]
                new_in = use[label] | (out - define[label])
                if out != self.live_out[label] or new_in != self.live_in[label]:
                    self.live_out[label] = out
                    self.live_in[label] = new_in
                    changed = True

    def live_into(self, label: str) -> Set[str]:
        """Registers read before being written on some path from *label*."""
        return self.live_in[label]
