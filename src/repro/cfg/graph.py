"""Control-flow graphs over IR functions.

A :class:`CFG` is a snapshot of a function's block-level flow: successor
and predecessor maps plus the traversal orders the dominator and loop
analyses need.  Transforms that edit the function must rebuild the CFG.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..ir import Function


class CFG:
    """Successor/predecessor maps for one function."""

    def __init__(
        self,
        entry: str,
        succs: Dict[str, Tuple[str, ...]],
    ) -> None:
        self.entry = entry
        self.succs = succs
        self.preds: Dict[str, List[str]] = {label: [] for label in succs}
        for label, targets in succs.items():
            for target in targets:
                self.preds[target].append(label)

    @classmethod
    def from_function(cls, function: Function) -> "CFG":
        """Build the CFG of *function* (all blocks, reachable or not)."""
        succs = {block.label: block.successors() for block in function}
        return cls(function.entry, succs)

    def nodes(self) -> Iterable[str]:
        return self.succs.keys()

    def __len__(self) -> int:
        return len(self.succs)

    def __contains__(self, label: str) -> bool:
        return label in self.succs

    def reachable(self) -> Set[str]:
        """Labels reachable from the entry."""
        seen: Set[str] = set()
        stack = [self.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.succs[label])
        return seen

    def postorder(self) -> List[str]:
        """Postorder over reachable nodes (iterative DFS)."""
        order: List[str] = []
        seen: Set[str] = set()
        # Stack of (label, iterator over successors).
        stack: List[Tuple[str, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            label, index = stack[-1]
            targets = self.succs[label]
            if index < len(targets):
                stack[-1] = (label, index + 1)
                target = targets[index]
                if target not in seen:
                    seen.add(target)
                    stack.append((target, 0))
            else:
                stack.pop()
                order.append(label)
        return order

    def reverse_postorder(self) -> List[str]:
        """Reverse postorder — the order forward dataflow analyses want."""
        order = self.postorder()
        order.reverse()
        return order

    def edges(self) -> List[Tuple[str, str]]:
        """All edges as (source, target) pairs."""
        return [
            (label, target)
            for label, targets in self.succs.items()
            for target in targets
        ]


def remove_unreachable_blocks(function: Function) -> List[str]:
    """Delete blocks not reachable from the entry; returns removed labels.

    This is the paper's "since there is no path to them they have been
    discarded" step after replication (Figure 1: blocks 2b and 3a).
    """
    cfg = CFG.from_function(function)
    live = cfg.reachable()
    dead = [label for label in function.blocks if label not in live]
    for label in dead:
        function.remove_block(label)
    return dead
