"""Control-flow analysis: CFG, dominators, natural loops, branch classes."""

from .branches import (
    BranchClass,
    BranchInfo,
    branches_of_class,
    classify_branches,
    classify_function_branches,
)
from .dominators import DominatorTree
from .graph import CFG, remove_unreachable_blocks
from .liveness import LivenessInfo
from .loops import Loop, LoopForest
from .paths import Path, PathStep, predecessor_paths

__all__ = [
    "BranchClass",
    "BranchInfo",
    "CFG",
    "DominatorTree",
    "LivenessInfo",
    "Loop",
    "LoopForest",
    "Path",
    "PathStep",
    "branches_of_class",
    "classify_branches",
    "classify_function_branches",
    "predecessor_paths",
    "remove_unreachable_blocks",
]
