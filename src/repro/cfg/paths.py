"""Predecessor-path enumeration for correlated branches.

"For all branches all predecessors with a path length less than the
size of the state machine are collected" (Section 5).  A *path* here is
a concrete block route ending at a target block, together with the
sequence of conditional-branch decisions taken along it.  Paths are
what the correlated-branch replication duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..ir import BranchSite, Function
from .graph import CFG


@dataclass(frozen=True)
class PathStep:
    """One decision on a path: *site* went in direction *taken*."""

    site: BranchSite
    taken: bool


@dataclass(frozen=True)
class Path:
    """A control-flow path reaching some block.

    ``blocks`` is the block route, oldest block first, ending with the
    target block itself.  ``steps`` are the branch decisions along the
    route, oldest first — ``steps[-1]`` is the decision immediately
    preceding the target.
    """

    steps: Tuple[PathStep, ...]
    blocks: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def pattern(self) -> Tuple[int, int]:
        """The decisions as a history pattern (value, length) with the
        most recent decision in bit 0."""
        value = 0
        for index, step in enumerate(reversed(self.steps)):
            if step.taken:
                value |= 1 << index
        return value, len(self.steps)

    def __str__(self) -> str:
        bits = "".join("1" if step.taken else "0" for step in self.steps)
        return f"{bits or 'ε'}:{'->'.join(self.blocks)}"


def predecessor_paths(
    function: Function,
    target: str,
    max_branches: int,
    max_paths: int = 4096,
) -> List[Path]:
    """Enumerate CFG paths ending at block *target*.

    Walks backwards from *target* collecting up to *max_branches*
    conditional-branch decisions per path.  A path stops early at the
    function entry, when it would revisit a block already on it (one
    unrolling only), or when *max_branches* decisions were gathered.
    Enumeration is cut off at *max_paths* paths to bound work on
    pathological CFGs.
    """
    cfg = CFG.from_function(function)
    results: List[Path] = []
    # Worklist of (current block, steps newest-last reversed order,
    # block route target-first, visited set).
    stack: List[Tuple[str, Tuple[PathStep, ...], Tuple[str, ...], frozenset]] = [
        (target, (), (target,), frozenset((target,)))
    ]
    while stack and len(results) < max_paths:
        label, steps, route, visited = stack.pop()
        preds = cfg.preds.get(label, [])
        extended = False
        if len(steps) < max_branches:
            for pred in preds:
                if pred in visited:
                    continue
                block = function.block(pred)
                branch = block.branch
                if branch is None:
                    stack.append(
                        (pred, steps, route + (pred,), visited | {pred})
                    )
                    extended = True
                    continue
                site = BranchSite(function.name, pred)
                # The branch may reach `label` on either (or both) arms;
                # enumerate each decision separately.
                for direction, arm in ((True, branch.taken), (False, branch.not_taken)):
                    if arm != label:
                        continue
                    step = PathStep(site, direction)
                    stack.append(
                        (pred, (step,) + steps, route + (pred,), visited | {pred})
                    )
                    extended = True
        if not extended:
            results.append(Path(steps, tuple(reversed(route))))
    # De-duplicate identical block routes (the decision sequence is a
    # function of the route).
    unique = {}
    for path in results:
        unique.setdefault((path.blocks, path.steps), path)
    return list(unique.values())
