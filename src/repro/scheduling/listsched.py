"""A latency-aware list scheduler for a statically scheduled core.

Models a simple in-order multi-issue machine: up to ``issue_width``
instructions start per cycle, each finishing after its latency; an
instruction may start once all its dependence predecessors have
finished.  Critical-path priority breaks ties — the classic greedy
list-scheduling heuristic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..ir import Instr
from .deps import DEFAULT_LATENCIES, DepGraph, build_dep_graph, latency_of


@dataclass
class Schedule:
    """Result of scheduling one instruction sequence."""

    cycles: int
    #: issue cycle of every instruction, in original order
    start_cycle: List[int]

    def __len__(self) -> int:
        return len(self.start_cycle)


def _critical_path(graph: DepGraph) -> List[int]:
    """Longest latency path from each node to any sink."""
    order = _topological(graph)
    height = [0] * len(graph.instrs)
    for node in reversed(order):
        latency = latency_of(graph.instrs[node])
        best = 0
        for succ in graph.succs[node]:
            best = max(best, height[succ])
        height[node] = latency + best
    return height


def _topological(graph: DepGraph) -> List[int]:
    indegree = [len(p) for p in graph.preds]
    ready = [node for node, degree in enumerate(indegree) if degree == 0]
    order: List[int] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in graph.succs[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph.instrs):
        raise ValueError("dependence graph has a cycle")
    return order


def list_schedule(
    graph: DepGraph,
    issue_width: int = 2,
    latencies: Dict[str, int] = DEFAULT_LATENCIES,
) -> Schedule:
    """Greedy critical-path list scheduling of *graph*."""
    count = len(graph.instrs)
    if count == 0:
        return Schedule(0, [])
    priority = _critical_path(graph)
    indegree = [len(p) for p in graph.preds]
    earliest = [0] * count
    # Ready heap keyed by (-priority, original position).
    ready: List = []
    for node in range(count):
        if indegree[node] == 0:
            heapq.heappush(ready, (-priority[node], node))
    start = [0] * count
    pending: List = []  # (finish cycle, node)
    cycle = 0
    issued_total = 0
    deferred: List = []
    while issued_total < count:
        issued_this_cycle = 0
        # Issue up to width from the ready set whose earliest <= cycle.
        deferred = []
        while ready and issued_this_cycle < issue_width:
            _, node = heapq.heappop(ready)
            if earliest[node] > cycle:
                deferred.append((-priority[node], node))
                continue
            start[node] = cycle
            issued_total += 1
            issued_this_cycle += 1
            finish = cycle + latency_of(graph.instrs[node], latencies)
            heapq.heappush(pending, (finish, node))
        for item in deferred:
            heapq.heappush(ready, item)
        # Advance time; retire finished instructions, waking successors.
        cycle += 1
        while pending and pending[0][0] <= cycle:
            _, node = heapq.heappop(pending)
            for succ in graph.succs[node]:
                earliest[succ] = max(earliest[succ], pending_finish(graph, succ, start, latencies))
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, (-priority[succ], succ))
    finish_cycles = [
        start[node] + latency_of(graph.instrs[node], latencies)
        for node in range(count)
    ]
    return Schedule(max(finish_cycles), start)


def pending_finish(graph: DepGraph, node: int, start: List[int], latencies) -> int:
    """Earliest start of *node* given its predecessors' finish times."""
    value = 0
    for pred, _ in graph.preds[node]:
        value = max(value, start[pred] + latency_of(graph.instrs[pred], latencies))
    return value


def schedule_instructions(
    instrs: Sequence[Instr],
    issue_width: int = 2,
    latencies: Dict[str, int] = DEFAULT_LATENCIES,
) -> Schedule:
    """Convenience: build the graph and schedule in one call."""
    return list_schedule(build_dep_graph(instrs, latencies), issue_width, latencies)
