"""Superblock formation along predicted paths, and speculative
scheduling of the result.

This is the consumer the paper builds its prediction machinery *for*:
"we will apply branch prediction to compiler based speculative
execution and other code motion techniques".  A superblock is a
straight-line trace of blocks following each branch's ``predict``
annotation; scheduling the whole trace as one region lets pure
computations start before the branches that guard them (speculation),
shortening the critical path — but only pays off when the predictions
hold, which is exactly what code replication improves.

Safety rules for hoisting an instruction above a branch:

* the instruction has no side effect and cannot trap (``div``/``mod``
  excluded);
* its destination register is not live into the branch's off-trace
  successor (otherwise the speculated write clobbers it).

Unsafe instructions keep an extra dependence edge on the branch, which
is how the region scheduler enforces the rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..cfg import CFG, LivenessInfo
from ..ir import BinOp, Branch, Function, Instr, Jump, Program, Terminator
from .deps import DEFAULT_LATENCIES, build_dep_graph, has_side_effect
from .listsched import Schedule, list_schedule


@dataclass
class Superblock:
    """A predicted trace: block labels plus the flattened instructions."""

    function: str
    blocks: List[str]
    instrs: List[Instr]
    #: indices (into instrs) of the conditional branches inside the trace
    branch_positions: List[int]
    #: index of the block each instruction came from
    block_of: List[int]


def _predicted_successor(terminator: Terminator) -> Optional[str]:
    if isinstance(terminator, Jump):
        return terminator.target
    if isinstance(terminator, Branch):
        if terminator.predict is None:
            return None
        return terminator.taken if terminator.predict else terminator.not_taken
    return None


def form_superblocks(
    function: Function,
    block_counts: Optional[Dict[str, int]] = None,
) -> List[Superblock]:
    """Partition reachable blocks into predicted traces.

    A trace starts at a seed and extends along the predicted successor
    until it reaches a block already placed in some trace.  Seeds are
    the entry first, then — when *block_counts* (label -> executions)
    is given — the hottest unplaced blocks, so hot loop bodies become
    long traces even in heavily replicated code; without counts, seeds
    follow layout order.
    """
    cfg = CFG.from_function(function)
    reachable = cfg.reachable()
    placed: Set[str] = set()
    traces: List[Superblock] = []
    rest = [label for label in function.blocks if label != function.entry]
    if block_counts is not None:
        rest.sort(key=lambda label: -block_counts.get(label, 0))
    seeds = [function.entry] + rest
    # Reverse predicted-successor map, for backward trace growth.
    predicted_pred: Dict[str, List[str]] = {}
    for block in function:
        succ = _predicted_successor(block.terminator)
        if succ is not None:
            predicted_pred.setdefault(succ, []).append(block.label)
    for seed in seeds:
        if seed not in reachable or seed in placed:
            continue
        # Grow backward first: a hot mid-loop seed should not rotate
        # the trace away from the block executions actually enter at.
        head = seed
        on_path = {seed}
        while True:
            predecessors = [
                p
                for p in predicted_pred.get(head, ())
                if p in reachable and p not in placed and p not in on_path
            ]
            if not predecessors:
                break
            if block_counts is not None:
                predecessors.sort(key=lambda label: -block_counts.get(label, 0))
            head = predecessors[0]
            on_path.add(head)
        blocks: List[str] = []
        label: Optional[str] = head
        while label is not None and label not in placed and label in reachable:
            blocks.append(label)
            placed.add(label)
            label = _predicted_successor(function.block(label).terminator)
        instrs: List[Instr] = []
        branch_positions: List[int] = []
        block_of: List[int] = []
        for block_index, block_label in enumerate(blocks):
            block = function.block(block_label)
            for instr in block.instrs:
                instrs.append(instr)
                block_of.append(block_index)
            terminator = block.terminator
            if isinstance(terminator, Branch):
                branch_positions.append(len(instrs))
            instrs.append(terminator)
            block_of.append(block_index)
        traces.append(
            Superblock(function.name, blocks, instrs, branch_positions, block_of)
        )
    return traces


def _can_speculate(instr: Instr) -> bool:
    if has_side_effect(instr) or isinstance(instr, Terminator):
        return False
    if isinstance(instr, BinOp) and instr.op in ("div", "mod"):
        return False  # may trap on zero
    return True


def schedule_superblock(
    function: Function,
    trace: Superblock,
    liveness: Optional[LivenessInfo] = None,
    issue_width: int = 2,
    latencies: Dict[str, int] = DEFAULT_LATENCIES,
    allow_speculation: bool = True,
) -> Schedule:
    """Region-schedule *trace*; speculation governed by liveness."""
    liveness = liveness or LivenessInfo(function)
    graph = build_dep_graph(trace.instrs, latencies)
    # Off-trace live sets per branch inside the trace.
    for position in trace.branch_positions:
        branch = trace.instrs[position]
        assert isinstance(branch, Branch)
        on_trace = _predicted_successor(branch)
        off_trace = (
            branch.not_taken if on_trace == branch.taken else branch.taken
        )
        off_live = liveness.live_into(off_trace) if off_trace in function.blocks else set()
        for later in range(position + 1, len(trace.instrs)):
            instr = trace.instrs[later]
            speculable = (
                allow_speculation
                and _can_speculate(instr)
                and not (set(instr.defs()) & off_live)
            )
            if not speculable:
                # Pin the instruction below this branch.
                graph.preds[later].append((position, 1))
                graph.succs[position].append(later)
    return list_schedule(graph, issue_width, latencies)


def schedule_blocks_individually(
    function: Function,
    trace: Superblock,
    issue_width: int = 2,
    latencies: Dict[str, int] = DEFAULT_LATENCIES,
) -> int:
    """Baseline: sum of per-block schedule lengths along the trace."""
    total = 0
    for label in trace.blocks:
        block = function.block(label)
        instrs: List[Instr] = list(block.instrs)
        if block.terminator is not None:
            instrs.append(block.terminator)
        total += list_schedule(build_dep_graph(instrs, latencies), issue_width, latencies).cycles
    return total


def estimate_program_cycles(
    program: Program,
    block_counts: Dict[Tuple[str, str], int],
    edge_counts: Optional[Dict[Tuple[str, str, str], int]] = None,
    issue_width: int = 2,
    latencies: Dict[str, int] = DEFAULT_LATENCIES,
    allow_speculation: bool = True,
) -> Tuple[int, int]:
    """Weighted (baseline, superblock) cycle estimates for a program.

    *block_counts* maps (function, label) to execution counts (from an
    edge profile).  Every block's cost is its schedule length within
    its trace: under superblock scheduling a block's instructions may
    start early, so the per-block incremental cost is the difference
    between cumulative trace schedules with and without it.

    When *edge_counts* is given (``(function, source, target) ->
    executions``), every off-trace exit additionally pays for the
    speculated work it wasted: the instructions of later blocks that
    the region scheduler had already issued above the exiting branch.
    This is the term accurate prediction shrinks.
    """
    baseline_total = 0
    super_total = 0
    for function in program:
        local_counts = {
            label: count
            for (function_name, label), count in block_counts.items()
            if function_name == function.name
        }
        liveness = LivenessInfo(function)
        baseline_total += _baseline_cycles(
            function, local_counts, issue_width, latencies
        )
        # Two trace-formation policies — layout-order seeds and
        # hot-seeds-with-backward-growth — suit different code shapes
        # (straight-line vs replicated loops); keep the better schedule.
        candidates = []
        for counts_arg in (None, local_counts):
            traces = form_superblocks(function, counts_arg)
            candidates.append(
                _superblock_cycles(
                    function,
                    traces,
                    local_counts,
                    edge_counts,
                    liveness,
                    issue_width,
                    latencies,
                    allow_speculation,
                )
            )
        super_total += min(candidates)
    return baseline_total, super_total


def _baseline_cycles(
    function: Function,
    local_counts: Dict[str, int],
    issue_width: int,
    latencies: Dict[str, int],
) -> int:
    total = 0
    for block in function:
        weight = local_counts.get(block.label, 0)
        if not weight:
            continue
        instrs: List[Instr] = list(block.instrs)
        if block.terminator is not None:
            instrs.append(block.terminator)
        length = list_schedule(
            build_dep_graph(instrs, latencies), issue_width, latencies
        ).cycles
        total += weight * length
    return total


def _superblock_cycles(
    function: Function,
    traces: List[Superblock],
    local_counts: Dict[str, int],
    edge_counts: Optional[Dict[Tuple[str, str, str], int]],
    liveness: LivenessInfo,
    issue_width: int,
    latencies: Dict[str, int],
    allow_speculation: bool,
) -> int:
    total = 0
    for trace in traces:
        weights = [local_counts.get(label, 0) for label in trace.blocks]
        if not any(weights):
            continue
        schedule = schedule_superblock(
            function, trace, liveness, issue_width, latencies, allow_speculation
        )
        finish_by_block: List[int] = [0] * len(trace.blocks)
        for position, start in enumerate(schedule.start_cycle):
            block_index = trace.block_of[position]
            finish_by_block[block_index] = max(
                finish_by_block[block_index], start + 1
            )
        previous = 0
        for block_index, weight in enumerate(weights):
            cumulative = max(finish_by_block[block_index], previous)
            incremental = cumulative - previous
            previous = cumulative
            total += weight * incremental
        if edge_counts:
            total += _divergence_cost(
                function, trace, schedule, edge_counts, issue_width
            )
    return total


def _divergence_cost(
    function: Function,
    trace: Superblock,
    schedule: Schedule,
    edge_counts: Dict[Tuple[str, str, str], int],
    issue_width: int,
) -> int:
    """Wasted-speculation cycles charged to off-trace exits."""
    total = 0
    for position in trace.branch_positions:
        branch = trace.instrs[position]
        assert isinstance(branch, Branch)
        on_trace = _predicted_successor(branch)
        off_trace = branch.not_taken if on_trace == branch.taken else branch.taken
        label = trace.blocks[trace.block_of[position]]
        exits = edge_counts.get((function.name, label, off_trace), 0)
        if not exits:
            continue
        branch_start = schedule.start_cycle[position]
        wasted = sum(
            1
            for later, start in enumerate(schedule.start_cycle)
            if trace.block_of[later] > trace.block_of[position]
            and start <= branch_start
        )
        total += exits * -(-wasted // issue_width)  # ceil division
    return total
