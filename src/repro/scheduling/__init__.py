"""Speculative superblock scheduling driven by branch predictions."""

from .deps import (
    DEFAULT_LATENCIES,
    DepGraph,
    build_dep_graph,
    has_side_effect,
    latency_of,
)
from .listsched import Schedule, list_schedule, schedule_instructions
from .superblock import (
    Superblock,
    estimate_program_cycles,
    form_superblocks,
    schedule_blocks_individually,
    schedule_superblock,
)

__all__ = [
    "DEFAULT_LATENCIES",
    "DepGraph",
    "Schedule",
    "Superblock",
    "build_dep_graph",
    "estimate_program_cycles",
    "form_superblocks",
    "has_side_effect",
    "latency_of",
    "list_schedule",
    "schedule_blocks_individually",
    "schedule_instructions",
    "schedule_superblock",
]
