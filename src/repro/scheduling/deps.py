"""Dependence graphs over instruction sequences.

The list scheduler works on a straight-line instruction sequence (one
block, or a superblock trace).  Edges:

* true (RAW), anti (WAR) and output (WAW) register dependences;
* memory ordering: loads after stores, stores after any memory op
  (no alias analysis — addresses are dynamic);
* side effects (``call``, ``in``, ``out``, ``alloc``) are ordered among
  themselves and act as barriers for memory;
* branches depend on their operands and on all earlier side effects,
  and everything *with a side effect* stays on its side of a branch.
  Pure value computations may cross branches — that is precisely the
  speculation opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..ir import Alloc, Call, In, Instr, Load, Out, Store, Terminator

#: default operation latencies, in cycles
DEFAULT_LATENCIES = {
    "mul": 3,
    "div": 8,
    "mod": 8,
    "load": 2,
    "call": 4,
}


def latency_of(instr: Instr, latencies: Dict[str, int] = DEFAULT_LATENCIES) -> int:
    from ..ir import BinOp

    if isinstance(instr, BinOp) and instr.op in latencies:
        return latencies[instr.op]
    if isinstance(instr, Load):
        return latencies.get("load", 2)
    if isinstance(instr, Call):
        return latencies.get("call", 4)
    return 1


def has_side_effect(instr: Instr) -> bool:
    """Instructions that must not be duplicated, dropped or reordered
    relative to each other (or executed speculatively)."""
    return isinstance(instr, (Store, Call, In, Out, Alloc))


def is_memory_read(instr: Instr) -> bool:
    return isinstance(instr, Load)


def is_memory_write(instr: Instr) -> bool:
    return isinstance(instr, (Store, Call))  # calls may store


@dataclass
class DepGraph:
    """Predecessor lists + latencies for one instruction sequence."""

    instrs: List[Instr]
    preds: List[List[Tuple[int, int]]]  # (pred index, latency) per node
    succs: List[List[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.succs:
            self.succs = [[] for _ in self.instrs]
            for node, edges in enumerate(self.preds):
                for pred, _ in edges:
                    self.succs[pred].append(node)


def build_dep_graph(
    instrs: Sequence[Instr],
    latencies: Dict[str, int] = DEFAULT_LATENCIES,
) -> DepGraph:
    """Dependence graph over *instrs* (terminators allowed inline)."""
    instrs = list(instrs)
    preds: List[List[Tuple[int, int]]] = [[] for _ in instrs]
    last_def: Dict[str, int] = {}
    last_uses: Dict[str, List[int]] = {}
    last_mem_write = -1
    mem_reads_since_write: List[int] = []
    last_side_effect = -1
    last_branch = -1

    def add_edge(source: int, target: int) -> None:
        if source >= 0 and source != target:
            preds[target].append((source, latency_of(instrs[source], latencies)))

    for index, instr in enumerate(instrs):
        # Register dependences.
        for reg in instr.uses():
            add_edge(last_def.get(reg, -1), index)  # RAW
        for reg in instr.defs():
            add_edge(last_def.get(reg, -1), index)  # WAW
            for user in last_uses.get(reg, ()):  # WAR
                add_edge(user, index)
        # Memory ordering.
        if is_memory_read(instr):
            add_edge(last_mem_write, index)
            mem_reads_since_write.append(index)
        if is_memory_write(instr):
            add_edge(last_mem_write, index)
            for reader in mem_reads_since_write:
                add_edge(reader, index)
            mem_reads_since_write = []
            last_mem_write = index
        # Side-effect ordering (program order among effects, and
        # effects never cross branches).
        if has_side_effect(instr):
            add_edge(last_side_effect, index)
            add_edge(last_branch, index)
            last_side_effect = index
        if isinstance(instr, Terminator):
            add_edge(last_side_effect, index)
            add_edge(last_branch, index)
            last_branch = index
        # Bookkeeping.
        for reg in instr.uses():
            last_uses.setdefault(reg, []).append(index)
        for reg in instr.defs():
            last_def[reg] = index
            last_uses[reg] = []
    return DepGraph(instrs, preds)
