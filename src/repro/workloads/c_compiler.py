"""`c-compiler` stand-in: the lcc front end's lexer/dispatch behaviour.

A compiler front end spends its branches classifying tokens and
dispatching on them.  Token streams are far from random: an identifier
is usually followed by an operator or punctuation, an operator by an
identifier or number, and so on.  We generate tokens from exactly such
a Markov chain, then *re-dispatch* on them in a separate if-chain —
those dispatch branches correlate strongly with the generator branches
a few events back, which is the behaviour global-history (correlated)
prediction exploits.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg

IDENT, NUMBER, OPERATOR, PUNCT = 0, 1, 2, 3


def build() -> Program:
    """``main(tokens, seed)`` returns a class-count checksum."""
    pb = ProgramBuilder()
    add_global_lcg(pb)

    fb = pb.function("main", ["tokens", "seed"])
    fb.call("gseed", ["seed"], void=True)
    counts = fb.alloc(4, "counts")
    fb.move(0, "t")
    fb.move(PUNCT, "prev")
    fb.move(0, "chars")

    fb.label("head")
    fb.branch("lt", "t", "tokens", "gen", "finish")

    # --- Markov token generator -------------------------------------------
    fb.label("gen")
    pick = fb.call("grand", [])
    fb.mod(pick, 10, "r")
    fb.branch("eq", "prev", IDENT, "after_ident", "gen2")
    fb.label("after_ident")
    # ident -> operator (70%) | punct (30%)
    fb.branch("lt", "r", 7, "make_op", "make_punct")
    fb.label("gen2")
    fb.branch("eq", "prev", OPERATOR, "after_op", "gen3")
    fb.label("after_op")
    # operator -> ident (60%) | number (40%)
    fb.branch("lt", "r", 6, "make_ident", "make_number")
    fb.label("gen3")
    fb.branch("eq", "prev", NUMBER, "after_number", "after_punct")
    fb.label("after_number")
    # number -> operator (50%) | punct (50%)
    fb.branch("lt", "r", 5, "make_op", "make_punct")
    fb.label("after_punct")
    # punct -> ident (80%) | punct (20%)
    fb.branch("lt", "r", 8, "make_ident", "make_punct")

    fb.label("make_ident")
    fb.move(IDENT, "tok")
    fb.jump("dispatch")
    fb.label("make_number")
    fb.move(NUMBER, "tok")
    fb.jump("dispatch")
    fb.label("make_op")
    fb.move(OPERATOR, "tok")
    fb.jump("dispatch")
    fb.label("make_punct")
    fb.move(PUNCT, "tok")
    fb.jump("dispatch")

    # --- Dispatch chain (correlates with the generator) ---------------------
    fb.label("dispatch")
    fb.branch("eq", "tok", IDENT, "lex_ident", "disp2")
    fb.label("disp2")
    fb.branch("eq", "tok", NUMBER, "lex_number", "disp3")
    fb.label("disp3")
    fb.branch("eq", "tok", OPERATOR, "lex_op", "lex_punct")

    # Identifier: scan a short name.
    fb.label("lex_ident")
    len_pick = fb.call("grand", [])
    short = fb.mod(len_pick, 6)
    name_len = fb.add(short, 2, "name_len")
    fb.move(0, "p")
    fb.label("ident_scan")
    fb.branch("lt", "p", "name_len", "ident_char", "ident_done")
    fb.label("ident_char")
    fb.add("chars", 1, "chars")
    fb.add("p", 1, "p")
    fb.jump("ident_scan")
    fb.label("ident_done")
    fb.move(IDENT, "class")
    fb.jump("account")

    # Number: scan digits.
    fb.label("lex_number")
    dig_pick = fb.call("grand", [])
    digits = fb.mod(dig_pick, 4)
    num_len = fb.add(digits, 1, "num_len")
    fb.move(0, "q")
    fb.label("num_scan")
    fb.branch("lt", "q", "num_len", "num_char", "num_done")
    fb.label("num_char")
    fb.add("chars", 1, "chars")
    fb.add("q", 1, "q")
    fb.jump("num_scan")
    fb.label("num_done")
    fb.move(NUMBER, "class")
    fb.jump("account")

    fb.label("lex_op")
    fb.add("chars", 1, "chars")
    fb.move(OPERATOR, "class")
    fb.jump("account")

    fb.label("lex_punct")
    fb.add("chars", 1, "chars")
    fb.move(PUNCT, "class")
    fb.jump("account")

    fb.label("account")
    slot = fb.add("counts", "class")
    old = fb.load(slot)
    new = fb.add(old, 1)
    fb.store(slot, new)
    fb.move("tok", "prev")
    fb.add("t", 1, "t")
    fb.jump("head")

    fb.label("finish")
    fb.move(0, "sum")
    fb.move(0, "k")
    fb.label("sum_head")
    fb.branch("lt", "k", 4, "sum_body", "done")
    fb.label("sum_body")
    slot2 = fb.add("counts", "k")
    val = fb.load(slot2)
    weighted = fb.mul(val, "k")
    fb.add("sum", weighted, "sum")
    fb.add("sum", "chars", "sum")
    fb.add("k", 1, "k")
    fb.jump("sum_head")
    fb.label("done")
    fb.output("sum")
    fb.ret("sum")
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    tokens = max(1, (scale * 10_000) // 10)
    return (tokens, 31415), ()
