"""The benchmark registry: the paper's eight programs, synthesised.

Each entry mirrors one program of the paper's suite (Section 3).  The
stand-ins generate real branch traces through the interpreter; DESIGN.md
documents why each is a behavioural substitute for the original.

``get_trace`` memoises traces per (name, scale) — trace generation is
by far the most expensive step of the experiment pipeline.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..ir import Program
from ..profiling import ProfileData, Trace, collect_path_tables, trace_program
from . import (
    abalone,
    c_compiler,
    compress,
    doduc,
    ghostview,
    predict,
    prolog,
    scheduler,
)


@dataclass(frozen=True)
class Workload:
    """One benchmark: a program builder plus its input convention."""

    name: str
    description: str
    build: Callable[[], Program]
    default_args: Callable[[int], Tuple[Sequence[int], Sequence[int]]]


#: The paper's benchmark suite, in its presentation order.
WORKLOADS: Dict[str, Workload] = {
    spec.name: spec
    for spec in (
        Workload(
            "abalone",
            "a board game employing alpha-beta search",
            abalone.build,
            abalone.default_args,
        ),
        Workload(
            "c-compiler",
            "the lcc compiler front end of Fraser & Hanson",
            c_compiler.build,
            c_compiler.default_args,
        ),
        Workload(
            "compress",
            "a file compression utility (SPEC)",
            compress.build,
            compress.default_args,
        ),
        Workload(
            "ghostview",
            "an X postscript previewer",
            ghostview.build,
            ghostview.default_args,
        ),
        Workload(
            "predict",
            "our profiling and trace tool",
            predict.build,
            predict.default_args,
        ),
        Workload(
            "prolog",
            "the miniVIP Prolog interpreter",
            prolog.build,
            prolog.default_args,
        ),
        Workload(
            "scheduler",
            "an instruction scheduler",
            scheduler.build,
            scheduler.default_args,
        ),
        Workload(
            "doduc",
            "hydrocode simulation (floating point) (SPEC)",
            doduc.build,
            doduc.default_args,
        ),
    )
}

BENCHMARK_NAMES: List[str] = list(WORKLOADS)


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}"
        ) from None


@functools.lru_cache(maxsize=None)
def get_program(name: str) -> Program:
    """The (cached, shared — treat as read-only) program of *name*."""
    return get_workload(name).build()


@functools.lru_cache(maxsize=32)
def get_trace(name: str, scale: int = 1, seed_offset: int = 0) -> Trace:
    """Trace of one run of *name* at *scale* (≈ scale × 10k branches).

    ``seed_offset`` perturbs the workload seed — used by the
    cross-dataset experiments to produce a *different* run of the same
    program.
    """
    workload = get_workload(name)
    args, input_values = workload.default_args(scale)
    if seed_offset:
        args = tuple(args[:-1]) + (args[-1] + seed_offset,)
    trace, _ = trace_program(get_program(name), args, input_values)
    return trace


@functools.lru_cache(maxsize=32)
def get_run_steps(name: str, scale: int = 1, seed_offset: int = 0) -> int:
    """Executed instruction count of the reference run (used by the
    Fisher/Freudenberger instructions-per-misprediction metric)."""
    from ..interp import run_program

    workload = get_workload(name)
    args, input_values = workload.default_args(scale)
    if seed_offset:
        args = tuple(args[:-1]) + (args[-1] + seed_offset,)
    return run_program(get_program(name), args, input_values).steps


@functools.lru_cache(maxsize=32)
def get_profile(
    name: str, scale: int = 1, seed_offset: int = 0, local_bits: int = 9, global_bits: int = 8
) -> ProfileData:
    """Cached profile data for a workload trace, with frame-local path
    tables attached (an extra instrumented run)."""
    profile = ProfileData.from_trace(
        get_trace(name, scale, seed_offset), local_bits, global_bits
    )
    workload = get_workload(name)
    args, input_values = workload.default_args(scale)
    if seed_offset:
        args = tuple(args[:-1]) + (args[-1] + seed_offset,)
    profile.attach_path_tables(
        collect_path_tables(get_program(name), args, input_values, global_bits)
    )
    return profile
