"""The benchmark registry: the paper's eight programs, synthesised.

Each entry mirrors one program of the paper's suite (Section 3).  The
stand-ins generate real branch traces through the interpreter; DESIGN.md
documents why each is a behavioural substitute for the original.

``get_trace``/``get_profile``/``get_run_steps`` all derive from the
**run artifacts** of :mod:`repro.workloads.artifacts` — a single
instrumented interpreter pass per (name, scale, seed_offset), memoised
in memory and persisted to the on-disk artifact cache.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..ir import Program
from ..profiling import ProfileData, Trace
from . import (
    abalone,
    c_compiler,
    compress,
    doduc,
    ghostview,
    predict,
    prolog,
    scheduler,
)


@dataclass(frozen=True)
class Workload:
    """One benchmark: a program builder plus its input convention."""

    name: str
    description: str
    build: Callable[[], Program]
    default_args: Callable[[int], Tuple[Sequence[int], Sequence[int]]]
    #: index into the argument tuple of the workload's RNG seed — the
    #: parameter the cross-dataset experiments perturb.  Declared
    #: explicitly so seed offsetting never silently lands on a
    #: size/iteration argument.
    seed_arg: int

    def seeded_args(
        self, scale: int = 1, seed_offset: int = 0
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """``default_args(scale)`` with *seed_offset* applied to the
        declared seed parameter."""
        args, input_values = self.default_args(scale)
        args = tuple(args)
        if seed_offset:
            if not (-len(args) <= self.seed_arg < len(args)):
                raise IndexError(
                    f"workload {self.name!r} declares seed_arg={self.seed_arg} "
                    f"but takes only {len(args)} arguments"
                )
            index = self.seed_arg % len(args)
            args = (
                args[:index] + (args[index] + seed_offset,) + args[index + 1 :]
            )
        return args, tuple(input_values)


#: The paper's benchmark suite, in its presentation order.
WORKLOADS: Dict[str, Workload] = {
    spec.name: spec
    for spec in (
        Workload(
            "abalone",
            "a board game employing alpha-beta search",
            abalone.build,
            abalone.default_args,
            seed_arg=1,
        ),
        Workload(
            "c-compiler",
            "the lcc compiler front end of Fraser & Hanson",
            c_compiler.build,
            c_compiler.default_args,
            seed_arg=1,
        ),
        Workload(
            "compress",
            "a file compression utility (SPEC)",
            compress.build,
            compress.default_args,
            seed_arg=1,
        ),
        Workload(
            "ghostview",
            "an X postscript previewer",
            ghostview.build,
            ghostview.default_args,
            seed_arg=1,
        ),
        Workload(
            "predict",
            "our profiling and trace tool",
            predict.build,
            predict.default_args,
            seed_arg=1,
        ),
        Workload(
            "prolog",
            "the miniVIP Prolog interpreter",
            prolog.build,
            prolog.default_args,
            seed_arg=1,
        ),
        Workload(
            "scheduler",
            "an instruction scheduler",
            scheduler.build,
            scheduler.default_args,
            seed_arg=1,
        ),
        Workload(
            "doduc",
            "hydrocode simulation (floating point) (SPEC)",
            doduc.build,
            doduc.default_args,
            seed_arg=1,
        ),
    )
}

BENCHMARK_NAMES: List[str] = list(WORKLOADS)


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}"
        ) from None


@functools.lru_cache(maxsize=None)
def get_program(name: str) -> Program:
    """The (cached, shared — treat as read-only) program of *name*."""
    return get_workload(name).build()


def get_trace(name: str, scale: int = 1, seed_offset: int = 0) -> Trace:
    """Trace of one run of *name* at *scale* (≈ scale × 10k branches).

    ``seed_offset`` perturbs the workload's declared seed argument —
    used by the cross-dataset experiments to produce a *different* run
    of the same program.
    """
    from .artifacts import get_artifacts

    return get_artifacts(name, scale=scale, seed_offset=seed_offset).trace


def get_run_steps(name: str, scale: int = 1, seed_offset: int = 0) -> int:
    """Executed instruction count of the reference run (used by the
    Fisher/Freudenberger instructions-per-misprediction metric)."""
    from .artifacts import get_artifacts

    return get_artifacts(name, scale=scale, seed_offset=seed_offset).steps


@functools.lru_cache(maxsize=32)
def get_profile(
    name: str, scale: int = 1, seed_offset: int = 0, local_bits: int = 9, global_bits: int = 8
) -> ProfileData:
    """Cached profile data for a workload trace, with frame-local path
    tables attached — all derived from the same single-pass artifacts."""
    from ..obs import OBS
    from .artifacts import get_artifacts

    artifacts = get_artifacts(
        name, scale=scale, seed_offset=seed_offset, history_bits=global_bits
    )
    with OBS.span(
        "profiling.build", benchmark=name, scale=scale, seed_offset=seed_offset
    ) as span:
        profile = ProfileData.from_trace(artifacts.trace, local_bits, global_bits)
        profile.attach_path_tables(artifacts.path_tables)
        span.set(sites=len(profile.totals))
    OBS.add("profiling.builds")
    return profile
