"""`compress` stand-in: run-length + hash-table compression.

The SPEC ``compress`` utility's hot branches test "is this code in the
table?" and "does the run continue?".  Our stand-in generates a symbol
stream with geometric runs, probes a small hash table (hit/miss branch
whose behaviour correlates with run structure) and run-length encodes
(the "same as previous symbol" branch is strongly correlated with its
own recent history).
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg

TABLE = 32
SYMBOLS = 12


def build() -> Program:
    """``main(length, seed)`` returns (hits << 16) + emitted codes."""
    pb = ProgramBuilder()
    add_global_lcg(pb)

    fb = pb.function("main", ["length", "seed"])
    fb.call("gseed", ["seed"], void=True)
    table = fb.alloc(TABLE, "table")
    fb.move(0, "i")
    fb.move(-1, "prev")
    fb.move(0, "run")
    fb.move(0, "hits")
    fb.move(0, "emitted")
    fb.move(0, "runleft")
    fb.move(0, "sym")

    fb.label("head")
    fb.branch("lt", "i", "length", "body", "finish")

    # Produce the next symbol: continue the current run or start a new
    # one with a fresh symbol and a geometric-ish run length.
    fb.label("body")
    fb.branch("gt", "runleft", 0, "continue_run", "new_run")
    fb.label("continue_run")
    fb.sub("runleft", 1, "runleft")
    fb.jump("have_symbol")
    fb.label("new_run")
    pick = fb.call("grand", [])
    fb.mod(pick, SYMBOLS, "sym")
    length_pick = fb.call("grand", [])
    short = fb.mod(length_pick, 7)
    fb.move(short, "runleft")
    fb.jump("have_symbol")

    # Hash-table probe: hit keeps the entry, miss replaces it.
    fb.label("have_symbol")
    spread = fb.mul("sym", 7)
    slot = fb.mod(spread, TABLE)
    slot_addr = fb.add("table", slot)
    entry = fb.load(slot_addr)
    fb.branch("eq", entry, "sym", "probe_hit", "probe_miss")
    fb.label("probe_hit")
    fb.add("hits", 1, "hits")
    fb.jump("rle")
    fb.label("probe_miss")
    fb.store(slot_addr, "sym")
    fb.jump("rle")

    # Run-length encoding: emit a code when the run breaks.
    fb.label("rle")
    fb.branch("eq", "sym", "prev", "same", "differ")
    fb.label("same")
    fb.add("run", 1, "run")
    fb.jump("next")
    fb.label("differ")
    fb.branch("gt", "run", 0, "flush", "start")
    fb.label("flush")
    fb.add("emitted", 1, "emitted")
    fb.jump("start")
    fb.label("start")
    fb.move("sym", "prev")
    fb.move(1, "run")
    fb.jump("next")

    fb.label("next")
    fb.add("i", 1, "i")
    fb.jump("head")

    fb.label("finish")
    packed = fb.shl("hits", 16)
    result = fb.add(packed, "emitted")
    fb.output(result)
    fb.ret(result)
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    length = max(1, (scale * 10_000) // 4)
    return (length, 13579), ()
