"""`abalone` stand-in: alpha-beta game-tree search.

The original is a board game engine built on alpha-beta search — the
paper's hardest benchmark: its figures show it needs enormous code
growth to approach its best misprediction rate, because the pruning
branches ("is this move better?" / "can we cut off?") are dominated by
data and carry little exploitable history structure.  We reproduce
that with a negamax search over a pseudo-random game tree.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg

DEPTH = 4


def build() -> Program:
    """``main(games, seed)`` returns the total of root evaluations."""
    pb = ProgramBuilder()
    add_global_lcg(pb)

    # func search(depth, alpha, beta) -> score (negamax with pruning)
    fb = pb.function("search", ["depth", "alpha", "beta"])
    fb.branch("le", "depth", 0, "leaf", "expand")
    fb.label("leaf")
    pick = fb.call("grand", [])
    bounded = fb.mod(pick, 201)
    score = fb.sub(bounded, 100)
    fb.ret(score)

    fb.label("expand")
    width_pick = fb.call("grand", [])
    extra = fb.mod(width_pick, 3)
    fb.add(extra, 2, "nmoves")
    fb.move(-1000, "best")
    fb.move("alpha", "a")
    fb.move(0, "m")

    fb.label("move_head")
    fb.branch("lt", "m", "nmoves", "move_body", "done")
    fb.label("move_body")
    child_depth = fb.sub("depth", 1)
    neg_beta = fb.unop("neg", "beta")
    neg_a = fb.unop("neg", "a")
    child = fb.call("search", [child_depth, neg_beta, neg_a])
    value = fb.unop("neg", child)
    # Is this move an improvement?  Data-dependent, hard to predict.
    fb.branch("gt", value, "best", "improve", "no_improve")
    fb.label("improve")
    fb.move(value, "best")
    fb.branch("gt", value, "a", "raise_alpha", "no_improve")
    fb.label("raise_alpha")
    fb.move(value, "a")
    # Beta cutoff: prune the remaining moves.
    fb.branch("ge", "a", "beta", "done", "no_improve")
    fb.label("no_improve")
    fb.add("m", 1, "m")
    fb.jump("move_head")

    fb.label("done")
    fb.ret("best")

    # main
    fb = pb.function("main", ["games", "seed"])
    fb.call("gseed", ["seed"], void=True)
    fb.move(0, "total")
    fb.move(0, "g")
    fb.label("head")
    fb.branch("lt", "g", "games", "body", "finish")
    fb.label("body")
    result = fb.call("search", [DEPTH, -1000, 1000])
    fb.add("total", result, "total")
    fb.add("g", 1, "g")
    fb.jump("head")
    fb.label("finish")
    fb.output("total")
    fb.ret("total")
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    games = max(1, (scale * 10_000) // 150)
    return (games, 97531), ()
