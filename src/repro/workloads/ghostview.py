"""`ghostview` stand-in: a PostScript-like command interpreter.

The original is an X11 PostScript previewer.  Its interpreter loop
dispatches drawing commands, and many branches test *mode flags* set by
earlier commands — the classic correlated-branch situation: whether
"fill" is enabled when a path is painted is decided by the most recent
``setfill`` command, i.e. by the outcome of an earlier branch.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg


def build() -> Program:
    """``main(commands, seed)`` returns the number of painted cells."""
    pb = ProgramBuilder()
    add_global_lcg(pb)

    fb = pb.function("main", ["commands", "seed"])
    fb.call("gseed", ["seed"], void=True)
    fb.move(0, "c")
    fb.move(0, "fill_mode")
    fb.move(0, "clip_mode")
    fb.move(0, "painted")
    fb.move(0, "x")

    fb.label("head")
    fb.branch("lt", "c", "commands", "body", "finish")

    # Dispatch: 0 = fill on, 1 = fill off, 2 = clip toggle,
    # 3/4/5 = draw (draws are the common case).
    fb.label("body")
    pick = fb.call("grand", [])
    cmd = fb.mod(pick, 6, "cmd")
    fb.branch("eq", "cmd", 0, "fill_on", "not_fill_on")
    fb.label("fill_on")
    fb.move(1, "fill_mode")
    fb.jump("next")
    fb.label("not_fill_on")
    fb.branch("eq", "cmd", 1, "fill_off", "not_fill_off")
    fb.label("fill_off")
    fb.move(0, "fill_mode")
    fb.jump("next")
    fb.label("not_fill_off")
    fb.branch("eq", "cmd", 2, "clip_toggle", "draw")
    fb.label("clip_toggle")
    fb.sub(1, "clip_mode", "clip_mode")
    fb.jump("next")

    # Draw a short path; the fill branch correlates with the dispatch
    # branches that set fill_mode.
    fb.label("draw")
    seg_pick = fb.call("grand", [])
    segs = fb.mod(seg_pick, 4)
    nsegs = fb.add(segs, 1, "nsegs")
    fb.move(0, "s")
    fb.label("seg_head")
    fb.branch("lt", "s", "nsegs", "seg_body", "paint_check")
    fb.label("seg_body")
    step = fb.call("grand", [])
    dx = fb.mod(step, 5)
    fb.add("x", dx, "x")
    fb.add("s", 1, "s")
    fb.jump("seg_head")

    fb.label("paint_check")
    fb.branch("eq", "fill_mode", 1, "paint_fill", "paint_stroke")
    fb.label("paint_fill")
    area = fb.mul("nsegs", 3)
    fb.add("painted", area, "painted")
    fb.jump("clip_check")
    fb.label("paint_stroke")
    fb.add("painted", "nsegs", "painted")
    fb.jump("clip_check")

    fb.label("clip_check")
    fb.branch("eq", "clip_mode", 1, "clipped", "next")
    fb.label("clipped")
    fb.sub("painted", 1, "painted")
    fb.jump("next")

    fb.label("next")
    fb.add("c", 1, "c")
    fb.jump("head")

    fb.label("finish")
    fb.output("painted")
    fb.ret("painted")
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    commands = max(1, (scale * 10_000) // 8)
    return (commands, 55331), ()
