"""`predict` stand-in: the paper's own profiling/analysis tool.

A trace analyser spends its time updating per-branch counters and
comparing predictions against outcomes.  We simulate exactly that: a
stream of synthetic branch events drives a bank of 2-bit saturating
counters; some event sources are strongly biased, some alternate
(pathological for counters, ideal for 1-bit-history replication), some
are random.  The comparison and counter-update branches inherit this
mixture.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg

SOURCES = 12


def build() -> Program:
    """``main(events, seed)`` returns the number of correct guesses."""
    pb = ProgramBuilder()
    add_global_lcg(pb)

    fb = pb.function("main", ["events", "seed"])
    fb.call("gseed", ["seed"], void=True)
    counters = fb.alloc(SOURCES, "counters")
    parity = fb.alloc(SOURCES, "parity")
    fb.move(0, "hits")
    fb.move(0, "e")

    fb.label("event_head")
    fb.branch("lt", "e", "events", "event_body", "finish")

    fb.label("event_body")
    raw = fb.call("grand", [])
    fb.mod(raw, SOURCES, "src")

    # Outcome model: sources 0-3 biased taken, 4-7 alternate, 8-11 random.
    fb.branch("lt", "src", 4, "biased", "not_biased")
    fb.label("biased")
    noise = fb.call("grand", [])
    chance = fb.mod(noise, 10)
    # Taken 90% of the time.
    fb.cmp("lt", chance, 9, "outcome")
    fb.jump("have_outcome")

    fb.label("not_biased")
    fb.branch("lt", "src", 8, "alternating", "random_source")
    fb.label("alternating")
    par_addr = fb.add("parity", "src")
    par = fb.load(par_addr)
    flipped = fb.sub(1, par)
    fb.store(par_addr, flipped)
    fb.move(flipped, "outcome")
    fb.jump("have_outcome")

    fb.label("random_source")
    coin = fb.call("grand", [])
    fb.mod(coin, 2, "outcome")
    fb.jump("have_outcome")

    # Predict from the 2-bit counter, compare, update (saturating).
    fb.label("have_outcome")
    ctr_addr = fb.add("counters", "src")
    ctr = fb.load(ctr_addr, 0, "ctr")
    fb.branch("ge", "ctr", 2, "guess_taken", "guess_not")
    fb.label("guess_taken")
    fb.move(1, "guess")
    fb.jump("compare")
    fb.label("guess_not")
    fb.move(0, "guess")
    fb.jump("compare")

    fb.label("compare")
    fb.branch("eq", "guess", "outcome", "hit", "update")
    fb.label("hit")
    fb.add("hits", 1, "hits")
    fb.jump("update")

    fb.label("update")
    fb.branch("eq", "outcome", 1, "count_up", "count_down")
    fb.label("count_up")
    fb.branch("lt", "ctr", 3, "inc", "event_next")
    fb.label("inc")
    up = fb.add("ctr", 1)
    fb.store(ctr_addr, up)
    fb.jump("event_next")
    fb.label("count_down")
    fb.branch("gt", "ctr", 0, "dec", "event_next")
    fb.label("dec")
    down = fb.sub("ctr", 1)
    fb.store(ctr_addr, down)
    fb.jump("event_next")

    fb.label("event_next")
    fb.add("e", 1, "e")
    fb.jump("event_head")

    fb.label("finish")
    fb.output("hits")
    fb.ret("hits")
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    events = max(1, (scale * 10_000) // 8)
    return (events, 24680), ()
