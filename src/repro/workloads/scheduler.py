"""`scheduler` stand-in: a list instruction scheduler.

The original is the authors' instruction scheduler.  Its hot loop
repeatedly scans a ready list for the highest-priority instruction —
a max-update branch whose taken probability decays over the scan — and
retires it, waking dependents (a data-dependent readiness branch).
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg

ITEMS = 10


def build() -> Program:
    """``main(rounds, seed)`` returns a checksum of schedule orders."""
    pb = ProgramBuilder()
    add_global_lcg(pb)

    fb = pb.function("main", ["rounds", "seed"])
    fb.call("gseed", ["seed"], void=True)
    priority = fb.alloc(ITEMS, "priority")
    done = fb.alloc(ITEMS, "done")
    deps = fb.alloc(ITEMS, "deps")
    fb.move(0, "order")
    fb.move(0, "round")

    fb.label("round_head")
    fb.branch("lt", "round", "rounds", "setup_init", "finish")

    # Fresh priorities, clear done flags, simple chain dependencies:
    # item k depends on item k-1 with probability 1/2.
    fb.label("setup_init")
    fb.move(0, "k")
    fb.label("setup_head")
    fb.branch("lt", "k", ITEMS, "setup_body", "sched_init")
    fb.label("setup_body")
    prio_pick = fb.call("grand", [])
    prio = fb.mod(prio_pick, 100)
    prio_addr = fb.add("priority", "k")
    fb.store(prio_addr, prio)
    done_addr = fb.add("done", "k")
    fb.store(done_addr, 0)
    dep_pick = fb.call("grand", [])
    dep_coin = fb.mod(dep_pick, 2)
    dep_addr = fb.add("deps", "k")
    fb.branch("eq", dep_coin, 1, "chain_dep", "no_dep")
    fb.label("chain_dep")
    pred = fb.sub("k", 1)
    fb.store(dep_addr, pred)
    fb.jump("setup_next")
    fb.label("no_dep")
    fb.store(dep_addr, -1)
    fb.jump("setup_next")
    fb.label("setup_next")
    fb.add("k", 1, "k")
    fb.jump("setup_head")

    # Schedule all items: repeatedly pick the ready item with the
    # highest priority.
    fb.label("sched_init")
    fb.move(0, "scheduled")
    fb.label("sched_head")
    fb.branch("lt", "scheduled", ITEMS, "scan_init", "round_next")

    fb.label("scan_init")
    fb.move(-1, "best")
    fb.move(-1, "best_prio")
    fb.move(0, "j")
    fb.label("scan_head")
    fb.branch("lt", "j", ITEMS, "scan_body", "retire")
    fb.label("scan_body")
    jdone_addr = fb.add("done", "j")
    jdone = fb.load(jdone_addr)
    fb.branch("eq", jdone, 1, "scan_next", "check_ready")
    fb.label("check_ready")
    jdep_addr = fb.add("deps", "j")
    jdep = fb.load(jdep_addr)
    fb.branch("lt", jdep, 0, "ready", "check_dep_done")
    fb.label("check_dep_done")
    dep_done_addr = fb.add("done", jdep)
    dep_done = fb.load(dep_done_addr)
    fb.branch("eq", dep_done, 1, "ready", "scan_next")
    fb.label("ready")
    jprio_addr = fb.add("priority", "j")
    jprio = fb.load(jprio_addr)
    # The classic max-update branch.
    fb.branch("gt", jprio, "best_prio", "take", "scan_next")
    fb.label("take")
    fb.move("j", "best")
    fb.move(jprio, "best_prio")
    fb.jump("scan_next")
    fb.label("scan_next")
    fb.add("j", 1, "j")
    fb.jump("scan_head")

    fb.label("retire")
    best_done_addr = fb.add("done", "best")
    fb.store(best_done_addr, 1)
    weighted = fb.mul("best", "scheduled")
    fb.add("order", weighted, "order")
    fb.add("scheduled", 1, "scheduled")
    fb.jump("sched_head")

    fb.label("round_next")
    fb.add("round", 1, "round")
    fb.jump("round_head")

    fb.label("finish")
    fb.output("order")
    fb.ret("order")
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    rounds = max(1, (scale * 10_000) // (ITEMS * ITEMS * 4))
    return (rounds, 11223), ()
