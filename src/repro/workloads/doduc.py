"""`doduc` stand-in: a fixed-point numeric relaxation kernel.

The original is a Monte-Carlo hydrocode simulation (SPEC, Fortran) —
the paper's single floating-point benchmark.  Its branch profile is
dominated by deeply nested counted loops with long trip counts (highly
predictable loop-exit branches) and a rare convergence test.  We mimic
that with an integer Jacobi-style stencil over a small grid plus a
seldom-taken residual check.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg

GRID = 24


def build() -> Program:
    """Build the doduc stand-in program.

    ``main(iterations, seed)`` returns a grid checksum.
    """
    pb = ProgramBuilder()
    add_global_lcg(pb)

    fb = pb.function("main", ["iterations", "seed"])
    fb.call("gseed", ["seed"], void=True)
    grid = fb.alloc(GRID, "grid")

    # Initialise the grid with pseudo-random values.
    fb.move(0, "i")
    fb.label("init_head")
    fb.branch("lt", "i", GRID, "init_body", "iter_init")
    fb.label("init_body")
    value = fb.call("grand", [])
    scaled = fb.mod(value, 1000)
    addr = fb.add("grid", "i")
    fb.store(addr, scaled)
    fb.add("i", 1, "i")
    fb.jump("init_head")

    fb.label("iter_init")
    fb.move(0, "it")

    fb.label("iter_head")
    fb.branch("lt", "it", "iterations", "sweep_init", "checksum_init")

    # One relaxation sweep: grid[j] = (grid[j-1] + grid[j] + grid[j+1]) / 3.
    fb.label("sweep_init")
    fb.move(1, "j")
    fb.move(0, "residual")
    fb.label("sweep_head")
    fb.branch("lt", "j", GRID - 1, "sweep_body", "converged_check")
    fb.label("sweep_body")
    left_addr = fb.add("grid", "j")
    left = fb.load(left_addr, -1)
    mid = fb.load(left_addr, 0)
    right = fb.load(left_addr, 1)
    total = fb.add(left, mid)
    total = fb.add(total, right)
    new = fb.div(total, 3)
    diff = fb.sub(new, mid)
    magnitude = fb.unop("abs", diff)
    fb.add("residual", magnitude, "residual")
    fb.store(left_addr, new)
    fb.add("j", 1, "j")
    fb.jump("sweep_head")

    # Rarely-taken convergence branch: perturb the grid when the sweep
    # changed almost nothing, so the computation keeps going.
    fb.label("converged_check")
    fb.branch("lt", "residual", 3, "perturb", "iter_next")
    fb.label("perturb")
    noise = fb.call("grand", [])
    bounded = fb.mod(noise, 500)
    slot = fb.mod(bounded, GRID)
    slot_addr = fb.add("grid", slot)
    fb.store(slot_addr, bounded)
    fb.jump("iter_next")

    fb.label("iter_next")
    fb.add("it", 1, "it")
    fb.jump("iter_head")

    # Checksum of the grid.
    fb.label("checksum_init")
    fb.move(0, "k")
    fb.move(0, "sum")
    fb.label("checksum_head")
    fb.branch("lt", "k", GRID, "checksum_body", "finish")
    fb.label("checksum_body")
    cell_addr = fb.add("grid", "k")
    cell = fb.load(cell_addr)
    fb.add("sum", cell, "sum")
    fb.add("k", 1, "k")
    fb.jump("checksum_head")

    fb.label("finish")
    fb.output("sum")
    fb.ret("sum")
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    """(args, input) for a trace of roughly ``scale`` × 10k branches."""
    iterations = max(1, (scale * 10_000) // (GRID * 2))
    return (iterations, 987654321), ()
