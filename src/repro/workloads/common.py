"""Shared building blocks for the synthetic workloads.

Every workload embeds a small linear congruential generator so that its
branch behaviour is deterministic for a given seed argument without
needing long input streams.  ``add_lcg`` emits the generator function
into a program; callers thread the state register through their code.
"""

from __future__ import annotations

from ..ir import FunctionBuilder, ProgramBuilder

#: Classic glibc LCG constants.
LCG_MULTIPLIER = 1103515245
LCG_INCREMENT = 12345
LCG_MASK = 0x7FFFFFFF


def add_lcg(pb: ProgramBuilder) -> None:
    """Emit ``func lcg(state) -> next_state`` into the program."""
    fb = pb.function("lcg", ["state"])
    product = fb.mul("state", LCG_MULTIPLIER)
    summed = fb.add(product, LCG_INCREMENT)
    fb.binop("and", summed, LCG_MASK, "state")
    fb.ret("state")


def lcg_step(fb: FunctionBuilder, state_reg: str) -> str:
    """Advance the LCG state in *state_reg*; returns the register."""
    fb.call("lcg", [state_reg], dest=state_reg)
    return state_reg


def lcg_value(fb: FunctionBuilder, state_reg: str, modulus: int) -> str:
    """Extract a fresh pseudo-random value in ``[0, modulus)``.

    Advances the state first, then uses the higher-quality upper bits.
    """
    lcg_step(fb, state_reg)
    shifted = fb.shr(state_reg, 16)
    return fb.mod(shifted, modulus)


#: Memory cell where the global generator keeps its state.
GLOBAL_SEED_ADDR = 8


def add_global_lcg(pb: ProgramBuilder, addr: int = GLOBAL_SEED_ADDR) -> None:
    """Emit ``func grand() -> value``: a generator whose state lives in
    memory, so recursive workloads need not thread it through calls.

    Returns the upper 15 bits of the state (``0 .. 32767``); callers
    reduce it with ``mod``.  ``func gseed(seed)`` initialises the state.
    """
    fb = pb.function("gseed", ["seed"])
    fb.store(addr, "seed")
    fb.ret()

    fb = pb.function("grand", [])
    state = fb.load(addr)
    product = fb.mul(state, LCG_MULTIPLIER)
    summed = fb.add(product, LCG_INCREMENT)
    masked = fb.binop("and", summed, LCG_MASK)
    fb.store(addr, masked)
    value = fb.shr(masked, 16)
    fb.ret(value)


def reference_global_lcg(seed: int):
    """Host-side twin of the IR ``grand`` function."""
    state = seed & LCG_MASK

    def grand() -> int:
        nonlocal state
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & LCG_MASK
        return state >> 16

    return grand


def reference_lcg(seed: int):
    """Host-side generator matching the IR ``lcg`` function.

    Used by tests to predict workload behaviour independently.
    """
    state = seed & LCG_MASK

    def step() -> int:
        nonlocal state
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & LCG_MASK
        return state

    return step
