"""`prolog` stand-in: a backtracking resolution engine.

The miniVIP Prolog interpreter's branches decide "does this clause
unify?" and "did the subgoal succeed?".  Failure triggers backtracking
to the next clause — a loop whose exit pattern depends on the depth and
on data.  We model a depth-bounded solver trying three clauses per
goal, each unifying with moderate probability, recursing on success.
"""

from __future__ import annotations

from ..ir import Program, ProgramBuilder
from .common import add_global_lcg

CLAUSES = 3


def build() -> Program:
    """``main(queries, seed)`` returns the number of provable queries."""
    pb = ProgramBuilder()
    add_global_lcg(pb)

    # func solve(depth) -> 0/1
    fb = pb.function("solve", ["depth"])
    fb.branch("le", "depth", 0, "base", "try_init")
    fb.label("base")
    fb.ret(1)

    fb.label("try_init")
    fb.move(0, "clause")
    fb.label("try_head")
    fb.branch("lt", "clause", CLAUSES, "try_body", "fail")

    fb.label("try_body")
    pick = fb.call("grand", [])
    roll = fb.mod(pick, 8)
    # Unification succeeds 5/8 of the time.
    fb.branch("lt", roll, 5, "unified", "try_next")
    fb.label("unified")
    arg = fb.sub("depth", 1)
    sub = fb.call("solve", [arg])
    fb.branch("eq", sub, 1, "succeed", "try_next")
    fb.label("succeed")
    fb.ret(1)

    fb.label("try_next")
    fb.add("clause", 1, "clause")
    fb.jump("try_head")

    fb.label("fail")
    fb.ret(0)

    # main
    fb = pb.function("main", ["queries", "seed"])
    fb.call("gseed", ["seed"], void=True)
    fb.move(0, "proved")
    fb.move(0, "q")
    fb.label("head")
    fb.branch("lt", "q", "queries", "body", "finish")
    fb.label("body")
    result = fb.call("solve", [4])
    fb.branch("eq", result, 1, "count", "next")
    fb.label("count")
    fb.add("proved", 1, "proved")
    fb.jump("next")
    fb.label("next")
    fb.add("q", 1, "q")
    fb.jump("head")
    fb.label("finish")
    fb.output("proved")
    fb.ret("proved")
    return pb.build()


def default_args(scale: int = 1) -> tuple:
    queries = max(1, (scale * 10_000) // 40)
    return (queries, 27182), ()
