"""Synthetic workloads standing in for the paper's benchmark suite."""

from . import (
    abalone,
    c_compiler,
    compress,
    doduc,
    ghostview,
    predict,
    prolog,
    scheduler,
)
from .artifacts import (
    RunArtifacts,
    cache_stats,
    clear_disk_cache,
    clear_memory_cache,
    generate_artifacts,
    get_artifacts,
    reset_cache_stats,
)
from .benchmarks import (
    BENCHMARK_NAMES,
    WORKLOADS,
    Workload,
    get_profile,
    get_program,
    get_run_steps,
    get_trace,
    get_workload,
)
from .common import (
    add_global_lcg,
    add_lcg,
    reference_global_lcg,
    reference_lcg,
)
from .generators import random_program

__all__ = [
    "BENCHMARK_NAMES",
    "RunArtifacts",
    "WORKLOADS",
    "Workload",
    "add_global_lcg",
    "add_lcg",
    "cache_stats",
    "clear_disk_cache",
    "clear_memory_cache",
    "generate_artifacts",
    "get_artifacts",
    "get_profile",
    "get_program",
    "get_run_steps",
    "get_trace",
    "get_workload",
    "reset_cache_stats",
    "random_program",
    "reference_global_lcg",
    "reference_lcg",
]
