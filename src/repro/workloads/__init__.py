"""Synthetic workloads standing in for the paper's benchmark suite."""

from . import (
    abalone,
    c_compiler,
    compress,
    doduc,
    ghostview,
    predict,
    prolog,
    scheduler,
)
from .benchmarks import (
    BENCHMARK_NAMES,
    WORKLOADS,
    Workload,
    get_profile,
    get_program,
    get_run_steps,
    get_trace,
    get_workload,
)
from .common import (
    add_global_lcg,
    add_lcg,
    reference_global_lcg,
    reference_lcg,
)
from .generators import random_program

__all__ = [
    "BENCHMARK_NAMES",
    "WORKLOADS",
    "Workload",
    "add_global_lcg",
    "add_lcg",
    "get_profile",
    "get_program",
    "get_run_steps",
    "get_trace",
    "get_workload",
    "random_program",
    "reference_global_lcg",
    "reference_lcg",
]
