"""Run artifacts: one instrumented pass, an on-disk cache, parallel fan-out.

Every experiment consumes three products of a workload run — the branch
trace, the frame-local path-history tables, and the executed-instruction
count.  Historically each was collected by its own interpreter
execution; a full table regeneration therefore ran every benchmark
three times.  :func:`get_artifacts` collects all three in a **single**
instrumented pass and memoises the bundle both in memory and on disk,
so a warm invocation performs zero interpreter executions.

Disk cache layout (default ``.repro-cache/``, overridable via the
``REPRO_CACHE_DIR`` environment variable; set it to an empty string to
disable persistence):

* ``{name}-s{scale}-o{seed_offset}-h{bits}-v{VERSION}.trace`` — the
  branch trace in the ``KBT1`` codec of
  :mod:`repro.profiling.tracefile`;
* ``{name}-s{scale}-o{seed_offset}-h{bits}-v{VERSION}.aux`` — a
  ``KBA1`` envelope (zlib-compressed JSON) holding the step count and
  the path-history tables, stamped with the same format version.

Writes are atomic (write to a temporary file in the cache directory,
then ``os.replace``), and any corrupt, truncated, or version-mismatched
entry falls back to recomputation — the cache can always be deleted.

:func:`generate_artifacts` fans cache population for many
(benchmark, scale, seed_offset) specs out across a
``ProcessPoolExecutor``; workers fill the shared disk cache and the
parent then loads every entry as a hit, so parallel and serial runs
produce identical artifacts.
"""

from __future__ import annotations

import functools
import json
import os
import tempfile
import time
import warnings
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir import BranchSite
from ..obs import OBS, SpanRecord
from ..profiling import PatternTable, Trace
from ..profiling.tracefile import (
    TraceFormatError,
    trace_from_bytes,
    trace_to_bytes,
)

#: Bump when the artifact contents or envelope schema change; stale
#: entries are ignored (filename mismatch) or rejected (payload stamp).
FORMAT_VERSION = 1

AUX_MAGIC = b"KBA1"

DEFAULT_CACHE_DIR = ".repro-cache"

#: Path-history depth collected by default — matches the default
#: ``global_bits`` of :func:`repro.workloads.get_profile`.
DEFAULT_HISTORY_BITS = 8

#: Fuel limit of the reference run (the paper traces "up to a maximum
#: of 100 million branch instructions").
MAX_STEPS = 100_000_000


class ArtifactFormatError(Exception):
    """Raised internally when a cached artifact entry is malformed."""


@dataclass(frozen=True)
class RunArtifacts:
    """Everything one instrumented run of a workload produces."""

    name: str
    scale: int
    seed_offset: int
    history_bits: int
    trace: Trace
    path_tables: Dict[BranchSite, PatternTable]
    steps: int


@dataclass
class CacheStats:
    """Counters for the current process (see :func:`cache_stats`).

    Since the obs layer landed this is a *view* over the process
    observer's ``artifacts.*`` counters, kept for callers of the
    original API; new code should read
    :func:`repro.obs.default_observer` directly.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    interpreter_runs: int = 0
    interpreter_seconds: float = 0.0
    load_seconds: float = 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits,
            self.misses,
            self.stores,
            self.interpreter_runs,
            self.interpreter_seconds,
            self.load_seconds,
        )


#: obs counter names backing the :class:`CacheStats` view.
_COUNTER_PREFIX = "artifacts."


def cache_stats() -> CacheStats:
    """A snapshot of this process's artifact-cache counters.

    A thin wrapper over the ``artifacts.*`` counters of the process
    observer (worker-process counters merge under ``workers.`` and are
    intentionally excluded — this view is per-process, as it always
    was).
    """
    counters = OBS.counters(_COUNTER_PREFIX)
    return CacheStats(
        hits=int(counters.get("artifacts.cache.hits", 0)),
        misses=int(counters.get("artifacts.cache.misses", 0)),
        stores=int(counters.get("artifacts.cache.stores", 0)),
        interpreter_runs=int(counters.get("artifacts.interpreter.runs", 0)),
        interpreter_seconds=float(counters.get("artifacts.interpreter.seconds", 0.0)),
        load_seconds=float(counters.get("artifacts.cache.load_seconds", 0.0)),
    )


def reset_cache_stats() -> None:
    """Reset the ``artifacts.*`` counters (other subsystems untouched)."""
    OBS.reset(prefix=_COUNTER_PREFIX)


def cache_dir() -> Optional[str]:
    """The on-disk cache directory, or ``None`` when persistence is off."""
    directory = os.environ.get("REPRO_CACHE_DIR")
    if directory is None:
        return DEFAULT_CACHE_DIR
    return directory or None


def _entry_stem(name: str, scale: int, seed_offset: int, history_bits: int) -> str:
    return f"{name}-s{scale}-o{seed_offset}-h{history_bits}-v{FORMAT_VERSION}"


def _entry_paths(
    directory: str, name: str, scale: int, seed_offset: int, history_bits: int
) -> Tuple[str, str]:
    stem = os.path.join(directory, _entry_stem(name, scale, seed_offset, history_bits))
    return stem + ".trace", stem + ".aux"


# -- collection (the single instrumented pass) ------------------------------


def _collect(
    name: str, scale: int, seed_offset: int, history_bits: int
) -> RunArtifacts:
    """Run the workload once, collecting trace, path tables and steps."""
    from ..interp import Machine
    from .benchmarks import get_program, get_workload

    workload = get_workload(name)
    args, input_values = workload.seeded_args(scale, seed_offset)
    trace = Trace()
    tables: Dict[BranchSite, PatternTable] = {}

    def record(site: BranchSite, taken: bool) -> None:
        trace.record(site, taken)
        table = tables.get(site)
        if table is None:
            table = tables[site] = PatternTable(history_bits)
        table.add(machine.path_history, 1 if taken else 0)

    machine = Machine(
        get_program(name),
        input_values,
        MAX_STEPS,
        record,
        track_history_bits=history_bits,
    )
    started = time.perf_counter()
    with OBS.span(
        "workload.run", benchmark=name, scale=scale, seed_offset=seed_offset
    ) as span:
        result = machine.run(*args)
        span.set(steps=result.steps, events=len(trace))
    elapsed = time.perf_counter() - started
    OBS.add("artifacts.interpreter.runs")
    OBS.add("artifacts.interpreter.seconds", elapsed)
    OBS.observe("artifacts.run_seconds", elapsed)
    OBS.add("artifacts.trace_events", len(trace))
    return RunArtifacts(
        name, scale, seed_offset, history_bits, trace, tables, result.steps
    )


# -- envelope codec ----------------------------------------------------------


def _aux_to_bytes(artifacts: RunArtifacts) -> bytes:
    document = {
        "version": FORMAT_VERSION,
        "name": artifacts.name,
        "scale": artifacts.scale,
        "seed_offset": artifacts.seed_offset,
        "history_bits": artifacts.history_bits,
        "steps": artifacts.steps,
        "events": len(artifacts.trace),
        "path_tables": [
            {
                "function": site.function,
                "block": site.block,
                "counts": {str(k): v for k, v in table.counts.items()},
            }
            for site, table in artifacts.path_tables.items()
        ],
    }
    return AUX_MAGIC + zlib.compress(json.dumps(document).encode(), 6)


def _aux_from_bytes(data: bytes) -> dict:
    if data[:4] != AUX_MAGIC:
        raise ArtifactFormatError(f"bad aux magic {data[:4]!r}")
    try:
        document = json.loads(zlib.decompress(data[4:]).decode())
    except (zlib.error, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ArtifactFormatError(f"corrupt aux payload: {error}") from None
    if document.get("version") != FORMAT_VERSION:
        raise ArtifactFormatError(
            f"unsupported artifact version {document.get('version')}"
        )
    return document


def _load_entry(
    directory: str, name: str, scale: int, seed_offset: int, history_bits: int
) -> Optional[RunArtifacts]:
    """Load a cached entry; ``None`` on miss or any malformed content."""
    trace_path, aux_path = _entry_paths(directory, name, scale, seed_offset, history_bits)
    started = time.perf_counter()
    bytes_read = 0
    try:
        with open(trace_path, "rb") as stream:
            payload = stream.read()
        bytes_read += len(payload)
        trace = trace_from_bytes(payload)
        with open(aux_path, "rb") as stream:
            payload = stream.read()
        bytes_read += len(payload)
        document = _aux_from_bytes(payload)
        if (
            document.get("name") != name
            or document.get("scale") != scale
            or document.get("seed_offset") != seed_offset
            or document.get("history_bits") != history_bits
            or document.get("events") != len(trace)
        ):
            raise ArtifactFormatError("aux envelope does not match trace")
        tables: Dict[BranchSite, PatternTable] = {}
        for entry in document["path_tables"]:
            site = BranchSite(entry["function"], entry["block"])
            tables[site] = PatternTable(
                history_bits,
                {int(k): list(v) for k, v in entry["counts"].items()},
            )
        steps = document["steps"]
        if not isinstance(steps, int):
            raise ArtifactFormatError("steps is not an integer")
    except FileNotFoundError:
        return None
    except (
        ArtifactFormatError,
        TraceFormatError,
        OSError,
        KeyError,
        TypeError,
        ValueError,
    ):
        return None
    finally:
        OBS.add("artifacts.cache.load_seconds", time.perf_counter() - started)
    OBS.add("artifacts.cache.bytes_read", bytes_read)
    return RunArtifacts(name, scale, seed_offset, history_bits, trace, tables, steps)


def _atomic_write(directory: str, path: str, payload: bytes) -> None:
    handle, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(payload)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _store_entry(directory: str, artifacts: RunArtifacts) -> None:
    trace_path, aux_path = _entry_paths(
        directory,
        artifacts.name,
        artifacts.scale,
        artifacts.seed_offset,
        artifacts.history_bits,
    )
    try:
        os.makedirs(directory, exist_ok=True)
        trace_payload = trace_to_bytes(artifacts.trace)
        aux_payload = _aux_to_bytes(artifacts)
        _atomic_write(directory, trace_path, trace_payload)
        _atomic_write(directory, aux_path, aux_payload)
    except OSError:
        return  # persistence is best-effort; the computed value still flows
    OBS.add("artifacts.cache.stores")
    OBS.add("artifacts.cache.bytes_written", len(trace_payload) + len(aux_payload))


# -- the public API ----------------------------------------------------------


def get_artifacts(
    name: str,
    *args: int,
    scale: Optional[int] = None,
    seed_offset: Optional[int] = None,
    history_bits: Optional[int] = None,
) -> RunArtifacts:
    """The run artifacts of one (workload, scale, seed_offset) triple.

    ``scale``, ``seed_offset`` and ``history_bits`` are keyword-only;
    passing them positionally still works for one release but emits a
    :class:`DeprecationWarning`.

    Checks the disk cache first; on a miss (or a corrupt/stale entry)
    performs exactly one instrumented interpreter pass and persists the
    result.  The returned bundle is shared — treat it as read-only.
    """
    if args:
        if len(args) > 3:
            raise TypeError(
                f"get_artifacts() takes at most 4 positional arguments "
                f"({1 + len(args)} given)"
            )
        warnings.warn(
            "passing scale/seed_offset/history_bits to get_artifacts() "
            "positionally is deprecated; pass them as keywords",
            DeprecationWarning,
            stacklevel=2,
        )
        resolved = [scale, seed_offset, history_bits]
        for index, value in enumerate(args):
            if resolved[index] is not None:
                keyword = ("scale", "seed_offset", "history_bits")[index]
                raise TypeError(
                    f"get_artifacts() got multiple values for argument {keyword!r}"
                )
            resolved[index] = value
        scale, seed_offset, history_bits = resolved
    # Normalise before memoising so calls that spell the defaults out
    # and calls that omit them share one cache entry.
    return _get_artifacts_cached(
        name,
        1 if scale is None else scale,
        0 if seed_offset is None else seed_offset,
        DEFAULT_HISTORY_BITS if history_bits is None else history_bits,
    )


@functools.lru_cache(maxsize=64)
def _get_artifacts_cached(
    name: str, scale: int, seed_offset: int, history_bits: int
) -> RunArtifacts:
    directory = cache_dir()
    if directory is not None:
        cached = _load_entry(directory, name, scale, seed_offset, history_bits)
        if cached is not None:
            OBS.add("artifacts.cache.hits")
            return cached
    OBS.add("artifacts.cache.misses")
    artifacts = _collect(name, scale, seed_offset, history_bits)
    if directory is not None:
        _store_entry(directory, artifacts)
    return artifacts


def clear_memory_cache() -> None:
    """Drop the in-process artifact memo (and the profile memo derived
    from it); the disk cache is untouched."""
    _get_artifacts_cached.cache_clear()
    from .benchmarks import get_profile

    get_profile.cache_clear()


def cached_on_disk(
    name: str,
    scale: int = 1,
    seed_offset: int = 0,
    history_bits: int = DEFAULT_HISTORY_BITS,
) -> bool:
    """Whether a disk entry exists for the triple (it may still be stale)."""
    directory = cache_dir()
    if directory is None:
        return False
    trace_path, aux_path = _entry_paths(directory, name, scale, seed_offset, history_bits)
    return os.path.exists(trace_path) and os.path.exists(aux_path)


def disk_cache_entries() -> List[str]:
    """Artifact file names currently present in the disk cache.

    The directory may be modified — or removed outright — by a
    concurrent writer or :func:`clear_disk_cache` (e.g. another request
    thread of the service daemon) between the existence check and the
    scan; that race answers ``[]``, never raises.
    """
    directory = cache_dir()
    if directory is None:
        return []
    try:
        entries = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        entry for entry in entries if entry.endswith((".trace", ".aux"))
    )


def clear_disk_cache() -> int:
    """Delete every artifact file in the cache directory; returns count.

    Entries deleted by a concurrent clearer between the scan and the
    unlink are skipped (and not counted), never an error.
    """
    directory = cache_dir()
    if directory is None:
        return 0
    removed = 0
    for entry in disk_cache_entries():
        try:
            os.unlink(os.path.join(directory, entry))
            removed += 1
        except OSError:
            pass
    return removed


def disk_cache_bytes() -> int:
    """Total size of the artifact files in the disk cache.

    Entries that vanish between the scan and the stat contribute zero
    bytes — a concurrent writer/clearer must not turn accounting into
    an exception.
    """
    directory = cache_dir()
    if directory is None:
        return 0
    total = 0
    for entry in disk_cache_entries():
        try:
            total += os.path.getsize(os.path.join(directory, entry))
        except OSError:
            pass
    return total


# -- parallel fan-out --------------------------------------------------------

Spec = Tuple[str, int, int, int]


def _normalize_spec(spec: Sequence) -> Spec:
    name, scale, seed_offset = (list(spec) + [1, 0])[:3]
    return (str(name), int(scale), int(seed_offset), DEFAULT_HISTORY_BITS)


def _generate_one(spec: Spec) -> Tuple[Spec, float]:
    """Populate the cache for one spec in the current process."""
    name, scale, seed_offset, history_bits = spec
    started = time.perf_counter()
    get_artifacts(
        name, scale=scale, seed_offset=seed_offset, history_bits=history_bits
    )
    return spec, time.perf_counter() - started


def _generate_one_worker(
    spec: Spec,
) -> Tuple[Spec, float, Dict[str, float], List[SpanRecord]]:
    """Subprocess worker: generate one spec and report its telemetry.

    The worker records spans unconditionally (a handful per run) and
    ships its whole observer snapshot home, so the parent's trace can
    show where the parallel prewarm actually spent its time.
    """
    OBS.enable()
    spec, seconds = _generate_one(spec)
    return spec, seconds, OBS.snapshot()


def generate_artifacts(
    specs: Iterable[Sequence], jobs: Optional[int] = None
) -> List[Tuple[Spec, float]]:
    """Ensure artifacts exist for every ``(name, scale[, seed_offset])``.

    With ``jobs`` > 1 and a usable disk cache, the uncached specs are
    generated in worker processes that write the shared disk cache; the
    parent then re-loads each entry (a guaranteed hit), so downstream
    consumers see byte-identical artifacts to a serial run.  Falls back
    to in-process generation when persistence is disabled or only one
    spec is pending.  Returns ``(spec, seconds)`` per generated spec.
    """
    normalized: List[Spec] = []
    for spec in specs:
        entry = _normalize_spec(spec)
        if entry not in normalized:
            normalized.append(entry)
    if jobs is None:
        jobs = os.cpu_count() or 1
    pending = [spec for spec in normalized if not cached_on_disk(*spec)]
    timings: List[Tuple[Spec, float]] = []
    if cache_dir() is None or jobs <= 1 or len(pending) <= 1:
        for spec in pending:
            timings.append(_generate_one(spec))
        return timings
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        for spec, seconds, snapshot in pool.map(_generate_one_worker, pending):
            timings.append((spec, seconds))
            # The whole worker snapshot merges under ``workers.`` so the
            # parent's own per-process view (``cache_stats()``) stays
            # untouched: counters sum, gauges overwrite, histograms
            # merge bucket-wise, spans land verbatim when recording.
            OBS.merge_snapshot(snapshot, counter_prefix="workers.")
    # Pull the worker-produced entries into this process's memo so the
    # experiment code that follows never re-runs the interpreter.
    for name, scale, seed_offset, history_bits in normalized:
        get_artifacts(
            name, scale=scale, seed_offset=seed_offset, history_bits=history_bits
        )
    return timings
