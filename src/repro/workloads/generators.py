"""Random structured-program generation for property-based tests.

``random_program`` builds a terminating program from a seed: a random
nest of counted loops, data-dependent conditionals and straight-line
arithmetic over a small register pool.  Termination is guaranteed
because every loop is counted with a bounded trip count; branch
*directions* inside loop bodies still depend on computed data, so the
programs exercise the whole prediction/replication pipeline.

These generators feed the hypothesis tests: any random program must
survive parsing round-trips, CFG/loop analysis, and — crucially —
replication must preserve its observable behaviour.
"""

from __future__ import annotations

import random
from typing import List

from ..ir import FunctionBuilder, Program, ProgramBuilder


class _Generator:
    def __init__(
        self,
        rng: random.Random,
        max_depth: int,
        fb: FunctionBuilder,
        callees: List[str] = (),
    ) -> None:
        self.rng = rng
        self.max_depth = max_depth
        self.fb = fb
        self.counter = 0
        #: registers known to hold values (usable as operands)
        self.values: List[str] = []
        #: single-argument helper functions this code may call
        self.callees = list(callees)

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"{base}{self.counter}"

    def operand(self):
        if self.values and self.rng.random() < 0.7:
            return self.rng.choice(self.values)
        return self.rng.randint(-8, 8)

    def emit_straightline(self) -> None:
        fb = self.fb
        for _ in range(self.rng.randint(1, 3)):
            kind = self.rng.random()
            if kind < 0.5:
                op = self.rng.choice(["add", "sub", "mul", "xor", "min", "max"])
                dest = fb.binop(op, self.operand(), self.operand())
            elif kind < 0.65:
                dest = fb.const(self.rng.randint(-100, 100))
            elif kind < 0.8:
                dest = fb.binop("and", self.operand(), 0xFF)
            elif kind < 0.9 and self.callees:
                callee = self.rng.choice(self.callees)
                dest = fb.call(callee, [self.operand()])
            else:
                fb.output(self.operand())
                continue
            self.values.append(dest)

    def emit_block_structure(self, depth: int) -> None:
        """Emit a random sequence of statements at this nesting depth."""
        for _ in range(self.rng.randint(1, 3)):
            roll = self.rng.random()
            if depth < self.max_depth and roll < 0.35:
                self.emit_loop(depth)
            elif depth < self.max_depth and roll < 0.65:
                self.emit_if(depth)
            else:
                self.emit_straightline()

    def emit_if(self, depth: int) -> None:
        fb = self.fb
        self.counter += 1
        tag = self.counter
        op = self.rng.choice(["eq", "ne", "lt", "le", "gt", "ge"])
        then_label, else_label, join = (
            f"then{tag}",
            f"else{tag}",
            f"join{tag}",
        )
        fb.branch(op, self.operand(), self.operand(), then_label, else_label)
        # Registers defined inside an arm must not leak to code that can
        # execute without the arm: snapshot and restore the value pool.
        outer_values = list(self.values)
        fb.label(then_label)
        self.emit_straightline()
        if self.rng.random() < 0.5:
            self.emit_block_structure(depth + 1)
        fb.jump(join)
        self.values = list(outer_values)
        fb.label(else_label)
        self.emit_straightline()
        fb.jump(join)
        self.values = outer_values
        fb.label(join)

    def emit_loop(self, depth: int) -> None:
        fb = self.fb
        self.counter += 1
        tag = self.counter
        trips = self.rng.randint(1, 6)
        counter = f"i{tag}"
        fb.move(0, counter)
        head, body, exit_label = f"head{tag}", f"lbody{tag}", f"exit{tag}"
        fb.label(head)
        fb.branch("lt", counter, trips, body, exit_label)
        # Same scoping rule: body-local registers die at the back edge
        # (the loop may run zero times as far as later code knows).
        outer_values = list(self.values)
        fb.label(body)
        self.emit_straightline()
        if self.rng.random() < 0.6:
            self.emit_block_structure(depth + 1)
        fb.add(counter, 1, counter)
        fb.jump(head)
        self.values = outer_values
        fb.label(exit_label)


def random_program(
    seed: int, max_depth: int = 3, helpers: int = 0
) -> Program:
    """A deterministic random terminating program for property tests.

    With ``helpers > 0`` the program additionally contains that many
    single-argument helper functions (themselves random, call-free)
    which the main function may call — exercising the interpreter's
    call stack, frame-local path history and the inliner.
    """
    rng = random.Random(seed)
    pb = ProgramBuilder()
    helper_names: List[str] = []
    for index in range(helpers):
        name = f"helper{index}"
        helper_names.append(name)
        hb = pb.function(name, ["a"])
        hgen = _Generator(rng, max_depth=1, fb=hb)
        hgen.values.append("a")
        hgen.emit_block_structure(0)
        result = hgen.operand()
        if isinstance(result, str):
            hb.ret(result)
        else:
            hb.ret(hb.const(result))
    fb = pb.function("main", ["n"])
    gen = _Generator(rng, max_depth, fb, callees=helper_names)
    gen.values.append("n")
    gen.emit_block_structure(0)
    result = gen.operand()
    if isinstance(result, str):
        fb.output(result)
        fb.ret(result)
    else:
        reg = fb.const(result)
        fb.output(reg)
        fb.ret(reg)
    return pb.build()
