"""``python -m repro`` dispatches to the toolkit CLI."""

import sys

from .tools import main

sys.exit(main())
