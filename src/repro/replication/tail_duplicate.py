"""Tail duplication for correlated branches (Section 4.3 / 5).

"The code replication for correlated branches is similar to [MW92].
The difference is that our aim was to save information about the
branch direction."

Given a branch whose direction correlates with the decisions of the
branches leading to it, every control-flow path (up to a decision
depth) ending at the branch gets its own copy of the intervening join
blocks and of the branch block itself.  Each copy is then reached by
exactly one decision sequence, so it can carry the prediction of the
correlated machine state that sequence selects.

Paths sharing a prefix share copies (the duplicated region forms a
trie rooted at each path's oldest block), so the code growth is the
sum of the distinct path-prefix block sizes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cfg import predecessor_paths, remove_unreachable_blocks
from ..ir import BranchSite, Function, IRError, retarget
from ..statemachines import CorrelatedMachine, is_suffix


@dataclass
class TailDuplicationResult:
    """Bookkeeping from one correlated-branch duplication."""

    site: BranchSite
    #: decision pattern (value, length) -> copy label of the target block
    copies: Dict[Tuple[Tuple[int, int], Tuple[str, ...]], str]
    #: original block label -> surviving copy labels (all copied blocks)
    block_copies: Dict[str, List[str]]
    removed: List[str]
    size_before: int
    size_after: int

    def surviving_sites(self) -> List[BranchSite]:
        labels = set(self.copies.values())
        return [BranchSite(self.site.function, label) for label in sorted(labels)]


def _prediction_for(machine: CorrelatedMachine, pattern: Tuple[int, int]) -> bool:
    """Prediction for a path with known decision bits *pattern*: the
    longest machine path that is a suffix of the known bits, else the
    catch-all."""
    best: Optional[int] = None
    best_length = -1
    for index, candidate in enumerate(machine.paths):
        if candidate[1] > best_length and is_suffix(candidate, pattern):
            best = index
            best_length = candidate[1]
    if best is None:
        return machine.fallback
    return machine.predictions[best]


def estimate_duplication_cost(
    function: Function, target: str, depth: int
) -> int:
    """Instructions added by :func:`duplicate_correlated_branch` with
    the given decision *depth*, without performing the transform."""
    paths = predecessor_paths(function, target, depth)
    prefixes = set()
    for path in paths:
        # Copies are made for every block after the path's first block.
        for position in range(2, len(path.blocks) + 1):
            prefixes.add(path.blocks[:position])
    return sum(function.block(prefix[-1]).size() for prefix in prefixes)


def duplicate_correlated_branch(
    function: Function,
    target: str,
    machine: CorrelatedMachine,
    depth: Optional[int] = None,
) -> TailDuplicationResult:
    """Give every decision path of length ≤ *depth* ending at *target*
    its own copy of the path's blocks, and plant the machine's
    predictions in the copies of the target branch.

    *depth* defaults to the machine's longest path.
    """
    block = function.block(target)
    if block.branch is None:
        raise IRError(f"block {target!r} has no conditional branch")
    if depth is None:
        depth = max((length for _, length in machine.paths), default=0)
    site = BranchSite(function.name, target)
    size_before = function.size()
    if depth == 0:
        # Nothing to duplicate; just annotate the catch-all prediction.
        block.terminator = dataclasses.replace(
            block.branch, predict=machine.fallback
        )
        return TailDuplicationResult(
            site, {}, {}, [], size_before, function.size()
        )

    paths = predecessor_paths(function, target, depth)

    # One copy per distinct path prefix (beyond the first, uncopied
    # block).  Prefix key: the block route from the path start.
    copy_labels: Dict[Tuple[str, ...], str] = {}

    def copy_label_for(prefix: Tuple[str, ...]) -> str:
        label = copy_labels.get(prefix)
        if label is None:
            label = function.fresh_label(f"{prefix[-1]}~{len(copy_labels)}")
            copy_labels[prefix] = label
            function.blocks[label] = None  # type: ignore  # reserve
        return label

    # Materialise copies: iterate path prefixes; each copy's edge to
    # the next block on the path is retargeted to the next copy.
    target_copies: Dict[Tuple[Tuple[int, int], Tuple[str, ...]], str] = {}
    for path in paths:
        route = path.blocks
        if len(route) < 2:
            continue
        for position in range(1, len(route)):
            prefix = route[: position + 1]
            label = copy_label_for(prefix)
            original = function.block(route[position])
            copy = function.blocks.get(label)
            if copy is None:
                copy = original.copy(label)
                function.blocks[label] = copy
            if position + 1 < len(route):
                next_label = copy_label_for(route[: position + 2])
                succ = route[position + 1]

                def into_copy(old: str, _succ=succ, _new=next_label) -> str:
                    return _new if old == _succ else old

                copy.terminator = retarget(copy.terminator, into_copy)
        # The last copy is the target's; annotate its prediction.
        final_label = copy_labels[route]
        final_copy = function.blocks[final_label]
        final_copy.terminator = dataclasses.replace(
            final_copy.branch, predict=_prediction_for(machine, path.pattern)
        )
        target_copies[(path.pattern, route)] = final_label
        # Wire the (uncopied) first block of the route into the chain.
        head = function.block(route[0])
        second = copy_labels[route[:2]]

        def into_chain(old: str, _succ=route[1], _new=second) -> str:
            return _new if old == _succ else old

        head.terminator = retarget(head.terminator, into_chain)

    # The original target (and possibly some join blocks) may now be
    # unreachable.
    block.terminator = dataclasses.replace(block.branch, predict=machine.fallback)
    removed = remove_unreachable_blocks(function)
    surviving = {
        key: label for key, label in target_copies.items() if label in function.blocks
    }
    block_copies: Dict[str, List[str]] = {}
    for prefix, label in copy_labels.items():
        if label in function.blocks:
            block_copies.setdefault(prefix[-1], []).append(label)
    return TailDuplicationResult(
        site, surviving, block_copies, removed, size_before, function.size()
    )
