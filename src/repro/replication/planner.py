"""Per-branch strategy selection (Section 5).

For every executed branch the planner computes the best state machine
of each size for the branch's class — intra-loop, loop-exit or
correlated — together with the code-size cost of realising it by
replication.  From these plans it answers:

* Table 5's question — the best achievable misprediction rate with at
  most *n* states per branch, ignoring code size;
* the trade-off curve's question — which (branch, machine) upgrade buys
  the most correct predictions per added instruction (see
  :mod:`repro.replication.tradeoff`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cfg import BranchClass, BranchInfo, classify_branches
from ..ir import BranchSite, Program
from ..obs import OBS
from ..profiling import ProfileData
from ..statemachines import (
    CorrelatedMachine,
    ScoredMachine,
    best_intra_machine,
    best_loop_exit_machine,
    correlated_machine_options,
    minimize_machine,
)
from .tail_duplicate import estimate_duplication_cost


@dataclass
class PlanOption:
    """One candidate machine for a branch.

    ``family`` is ``"loop"`` (realised by loop replication — cost
    multiplies with other improved branches of the same loop) or
    ``"correlated"`` (realised by tail duplication — cost is additive).
    """

    n_states: int
    scored: ScoredMachine
    extra_size: int
    family: str = "loop"

    @property
    def correct(self) -> int:
        return self.scored.correct


@dataclass
class BranchPlan:
    """Everything the planner knows about one branch."""

    site: BranchSite
    info: BranchInfo
    executions: int
    profile_correct: int
    options: List[PlanOption] = field(default_factory=list)
    loop_key: Optional[Tuple[str, str]] = None
    loop_size: int = 0

    def best_option(self, max_states: int) -> Optional[PlanOption]:
        """The most accurate option with at most *max_states* states."""
        best: Optional[PlanOption] = None
        for option in self.options:
            if option.n_states > max_states:
                continue
            if best is None or option.correct > best.correct:
                best = option
        return best

    def best_correct(self, max_states: int) -> int:
        option = self.best_option(max_states)
        if option is None:
            return self.profile_correct
        return max(self.profile_correct, option.correct)

    @property
    def improvable(self) -> bool:
        """True when some machine beats plain profile prediction."""
        return any(option.correct > self.profile_correct for option in self.options)


class ReplicationPlanner:
    """Builds and queries per-branch replication plans."""

    def __init__(
        self,
        program: Program,
        profile: ProfileData,
        max_states: int = 10,
        max_correlated_candidates: int = 64,
    ) -> None:
        self.program = program
        self.profile = profile
        self.max_states = max_states
        self.infos = classify_branches(program)
        self.plans: Dict[BranchSite, BranchPlan] = {}
        self._options_considered = 0
        with OBS.span(
            "replication.plan", branches=len(profile.totals)
        ) as span:
            for site, counts in profile.totals.items():
                info = self.infos.get(site)
                if info is None:
                    continue  # branch exists in the trace but not the program
                plan = BranchPlan(
                    site=site,
                    info=info,
                    executions=counts[0] + counts[1],
                    profile_correct=max(counts),
                )
                self._fill_options(plan, max_correlated_candidates)
                self.plans[site] = plan
            options = sum(len(plan.options) for plan in self.plans.values())
            span.set(planned=len(self.plans), options=options)
        OBS.add("replication.plans")
        OBS.add("replication.options_considered", self._options_considered)
        OBS.add("replication.options_kept", options)

    # -- plan construction ---------------------------------------------------

    def _fill_options(self, plan: BranchPlan, max_candidates: int) -> None:
        """Collect strictly-improving options for *plan*.

        Following Section 5, correlated machines are computed for
        *every* branch; loop branches additionally get their intra-loop
        or loop-exit machines, and per size the more accurate family
        wins ("the best available strategy for each branch is chosen").
        """
        site = plan.site
        info = plan.info
        function = self.program.function(site.function)

        # Train correlated machines on the path-history table when one
        # is attached: raw global history also sees callee branches,
        # which tail duplication cannot track.
        correlation_table = self.profile.correlation_table(site)
        if correlation_table is not None:
            correlated = correlated_machine_options(
                correlation_table, self.max_states, max_candidates
            )
        else:  # pragma: no cover - every executed site has a global table
            correlated = []

        loop = info.loop
        if loop is not None:
            plan.loop_key = (site.function, loop.header)
            plan.loop_size = sum(
                function.block(label).size() for label in loop.body
            )
        local_table = self.profile.local[site]

        for n_states in range(2, self.max_states + 1):
            candidates: List[Tuple[ScoredMachine, int]] = []
            if correlated:
                corr = correlated[n_states - 1]
                if corr.machine.paths:
                    depth = max(p[1] for p in corr.machine.paths)
                    cost = estimate_duplication_cost(function, site.block, depth)
                    candidates.append((corr, cost))
            if info.kind is BranchClass.INTRA_LOOP:
                scored = best_intra_machine(local_table, n_states)
            elif info.kind is BranchClass.LOOP_EXIT:
                scored = best_loop_exit_machine(
                    local_table, n_states, exit_on_taken=info.taken_exits
                )
            else:
                scored = None
            if scored is not None and scored.machine.n_states > 1:
                # Minimisation never changes behaviour, only replication
                # cost — equal-prediction states would be copied for
                # nothing.
                minimized = minimize_machine(scored.machine)
                scored = ScoredMachine(minimized, scored.correct, scored.total)
                extra = (minimized.n_states - 1) * plan.loop_size
                candidates.append((scored, extra))
            self._options_considered += len(candidates)
            best: Optional[Tuple[ScoredMachine, int]] = None
            for candidate in candidates:
                if best is None or candidate[0].correct > best[0].correct:
                    best = candidate
            if best is None or best[0].correct <= plan.best_correct(n_states):
                continue
            family = (
                "correlated"
                if isinstance(best[0].machine, CorrelatedMachine)
                else "loop"
            )
            plan.options.append(PlanOption(n_states, best[0], best[1], family))

    # -- queries ----------------------------------------------------------------

    def total_executions(self) -> int:
        return sum(plan.executions for plan in self.plans.values())

    def profile_mispredictions(self) -> int:
        return sum(
            plan.executions - plan.profile_correct for plan in self.plans.values()
        )

    def best_misprediction_rate(self, max_states: int) -> float:
        """Table 5: best achievable rate with ≤ *max_states* states per
        branch, ignoring the effect on program size."""
        total = self.total_executions()
        if not total:
            return 0.0
        correct = sum(plan.best_correct(max_states) for plan in self.plans.values())
        return (total - correct) / total

    def improved_branch_count(self) -> int:
        """Branches where some machine beats profile prediction."""
        return sum(1 for plan in self.plans.values() if plan.improvable)

    def improvable_plans(self) -> List[BranchPlan]:
        return [plan for plan in self.plans.values() if plan.improvable]
