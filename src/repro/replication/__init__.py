"""Code replication: transforms, planning, and trade-off analysis."""

from .annotate import (
    AnnotatedMeasurement,
    annotate_profile_predictions,
    clear_predictions,
    measure_annotated,
)
from .apply import ReplicationReport, apply_replication
from .joint import (
    collect_joint_tables,
    loop_membership,
    plan_joint_machines,
    replicate_loop_joint,
)
from .loop_transform import LoopReplicationResult, replicate_loop_branch
from .planner import BranchPlan, PlanOption, ReplicationPlanner
from .tail_duplicate import (
    TailDuplicationResult,
    duplicate_correlated_branch,
    estimate_duplication_cost,
)
from .tradeoff import TradeoffPoint, tradeoff_curve

__all__ = [
    "AnnotatedMeasurement",
    "BranchPlan",
    "LoopReplicationResult",
    "PlanOption",
    "ReplicationPlanner",
    "ReplicationReport",
    "TailDuplicationResult",
    "TradeoffPoint",
    "annotate_profile_predictions",
    "apply_replication",
    "clear_predictions",
    "collect_joint_tables",
    "duplicate_correlated_branch",
    "estimate_duplication_cost",
    "loop_membership",
    "measure_annotated",
    "plan_joint_machines",
    "replicate_loop_branch",
    "replicate_loop_joint",
    "tradeoff_curve",
]
