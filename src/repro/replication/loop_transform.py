"""Loop replication (Section 5, Figure 1).

Given a loop, one branch inside it and a prediction state machine, the
transform makes one copy of the loop body per machine state and wires
the improved branch so that executing it moves control into the copy
for the machine's next state.  The machine state is thereby encoded in
the program counter, and each copy's instance of the branch carries the
state's fixed prediction.  Copies that end up unreachable — Figure 1's
blocks "2b" and "3a" — are discarded.

When an earlier replication has already duplicated the improved branch
(several copies of one static branch now live in the same loop), all
copies are passed together: they drive the *same* machine, because the
machine state tracks the history of the static branch regardless of
which copy executed.  This is what makes the sizes of machines for
several branches in one loop multiply, as the paper observes.

The transform is semantics-preserving: every copy is an exact clone and
only successor labels are rewritten.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..cfg import Loop, remove_unreachable_blocks
from ..ir import BranchSite, Function, IRError, retarget
from ..statemachines import PredictionMachine


@dataclass
class LoopReplicationResult:
    """Bookkeeping from one loop replication."""

    site: BranchSite
    n_states: int
    #: original label -> state index -> copy label (surviving copies only)
    copies: Dict[str, Dict[int, str]]
    removed: List[str]
    size_before: int
    size_after: int

    def surviving_sites(self, original: BranchSite) -> List[BranchSite]:
        """Where copies of *original* (a branch block in the loop) live
        after the transform."""
        mapping = self.copies.get(original.block)
        if mapping is None:
            return [original]
        return [BranchSite(original.function, label) for label in mapping.values()]


def replicate_loop_branch(
    function: Function,
    loop: Loop,
    branch_labels: Union[str, Sequence[str]],
    machine: PredictionMachine,
    prediction_for=None,
) -> LoopReplicationResult:
    """Replicate *loop* in *function* to realise *machine* for the
    branch(es) terminating the *branch_labels* blocks.

    Multiple labels mean several copies of the same static branch (from
    an earlier replication); they share the machine.  The improved
    branches' in-loop successors are routed to the copy of the
    machine's next state; every other in-loop edge stays within its
    copy; loop entries from outside go to the initial state's copy.

    ``prediction_for(state_index, label)`` overrides the planted
    prediction per copy — joint machines predict per branch, not per
    state, and pass their own resolver here.
    """
    if isinstance(branch_labels, str):
        branch_labels = [branch_labels]
    if prediction_for is None:
        def prediction_for(state_index: int, _label: str) -> bool:
            return machine.states[state_index].prediction
    if not branch_labels:
        raise IRError("need at least one branch block to improve")
    improved = set(branch_labels)
    for label in improved:
        if label not in loop.body:
            raise IRError(f"branch block {label!r} is not in the loop")
        if function.block(label).branch is None:
            raise IRError(f"block {label!r} has no conditional branch")
    size_before = function.size()
    site = BranchSite(function.name, branch_labels[0])

    # Loop.body is a set; iterate it in the function's block-layout
    # order so copy creation (and hence the replicated program's block
    # layout) is independent of hash randomisation.
    body_order = [label for label in function.blocks if label in loop.body]

    # Fresh labels for every (state, loop block) pair.
    labels: Dict[Tuple[int, str], str] = {}
    for state_index, state in enumerate(machine.states):
        for label in body_order:
            fresh = function.fresh_label(f"{label}@{state.name}.{state_index}")
            labels[(state_index, label)] = fresh
            # Reserve the label immediately so fresh_label stays unique.
            function.blocks[fresh] = None  # type: ignore[assignment]

    # Build the copies.
    for state_index, state in enumerate(machine.states):

        def in_state(target: str, _state: int = state_index) -> str:
            return labels.get((_state, target), target)

        for label in body_order:
            original = function.block(label)
            copy = original.copy(labels[(state_index, label)])
            if label in improved:
                branch = original.branch
                taken_target = branch.taken
                if taken_target in loop.body:
                    taken_target = labels[
                        (machine.next_state(state_index, True), branch.taken)
                    ]
                not_taken_target = branch.not_taken
                if not_taken_target in loop.body:
                    not_taken_target = labels[
                        (machine.next_state(state_index, False), branch.not_taken)
                    ]
                copy.terminator = dataclasses.replace(
                    branch,
                    taken=taken_target,
                    not_taken=not_taken_target,
                    predict=prediction_for(state_index, label),
                )
            else:
                copy.terminator = retarget(original.terminator, in_state)
            function.blocks[copy.label] = copy

    # Entry edges from outside the loop now enter the initial state.
    entry_label = labels[(machine.initial, loop.header)]

    def to_entry(target: str) -> str:
        return entry_label if target == loop.header else target

    original_labels = set(loop.body)
    copy_labels = set(labels.values())
    for block in list(function):
        if block.label in original_labels or block.label in copy_labels:
            continue
        block.terminator = retarget(block.terminator, to_entry)

    # The original loop body is now unreachable (unless the header is
    # the function entry, in which case we re-point the entry).
    if function.entry in original_labels:
        if function.entry != loop.header:
            raise IRError("function entry inside loop but not the header")
        function.entry = entry_label
    removed = remove_unreachable_blocks(function)

    surviving: Dict[str, Dict[int, str]] = {}
    for (state_index, label), copy_label in labels.items():
        if copy_label in function.blocks:
            surviving.setdefault(label, {})[state_index] = copy_label
    return LoopReplicationResult(
        site=site,
        n_states=machine.n_states,
        copies=surviving,
        removed=removed,
        size_before=size_before,
        size_after=function.size(),
    )
