"""Misprediction-rate versus code-size curves (Section 5, Figures 6-13).

"The states were added in such an order that the state that predicted
the largest number of branches and that increased the code size by the
smallest amount was chosen first."

Starting from plain profile prediction, the greedy walk repeatedly
applies the (branch, machine) upgrade with the best ratio of extra
correct predictions to extra instructions.  Code size follows the
paper's model: realising a *loop* machine multiplies its loop's size by
the machine's state count, so two improved branches in the same loop
multiply ("If branches are in the same loop, the number of states must
be multiplied"), while branches in different loops — and correlated
machines, whose tail-duplication cost is independent — merely add.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import BranchSite
from ..obs import OBS
from .planner import BranchPlan, ReplicationPlanner


@dataclass
class TradeoffPoint:
    """One point on the size/accuracy curve."""

    size: int
    size_factor: float
    mispredictions: int
    misprediction_rate: float
    #: the upgrade that produced this point (None for the start point)
    step: Optional[Tuple[BranchSite, int]] = None


class _CurveState:
    """Current per-branch choices plus the derived size model."""

    def __init__(self, planner: ReplicationPlanner) -> None:
        self.plans: List[BranchPlan] = list(planner.plans.values())
        self.base_size = planner.program.size()
        self.total = planner.total_executions()
        #: option index per site; -1 = plain profile
        self.choice: Dict[BranchSite, int] = {p.site: -1 for p in self.plans}
        self._by_site = {p.site: p for p in self.plans}

    def correct(self) -> int:
        total = 0
        for plan in self.plans:
            index = self.choice[plan.site]
            if index < 0:
                total += plan.profile_correct
            else:
                total += max(plan.profile_correct, plan.options[index].correct)
        return total

    def extra_size(self) -> int:
        """Total added instructions under the paper's size model."""
        loop_factors: Dict[Tuple[str, str], int] = {}
        loop_sizes: Dict[Tuple[str, str], int] = {}
        additive = 0
        for plan in self.plans:
            index = self.choice[plan.site]
            if index < 0:
                continue
            option = plan.options[index]
            if option.family == "loop" and plan.loop_key is not None:
                key = plan.loop_key
                loop_sizes[key] = plan.loop_size
                loop_factors[key] = loop_factors.get(key, 1) * option.n_states
            else:
                additive += option.extra_size
        loop_extra = sum(
            loop_sizes[key] * (factor - 1) for key, factor in loop_factors.items()
        )
        return loop_extra + additive

    def size(self) -> int:
        return self.base_size + self.extra_size()


def tradeoff_curve(
    planner: ReplicationPlanner,
    max_size_factor: Optional[float] = None,
) -> List[TradeoffPoint]:
    """The greedy misprediction-vs-size walk.

    Stops when no upgrade improves accuracy, or when applying one would
    push the program past ``max_size_factor`` times its original size.
    """
    state = _CurveState(planner)
    total = state.total
    correct = state.correct()
    size = state.size()

    def make_point(step=None) -> TradeoffPoint:
        return TradeoffPoint(
            size,
            size / state.base_size if state.base_size else 1.0,
            total - correct,
            (total - correct) / total if total else 0.0,
            step,
        )

    points = [make_point()]
    candidates_weighed = 0
    with OBS.span(
        "replication.tradeoff", branches=len(state.plans)
    ) as span:
        while True:
            best_ratio = 0.0
            best: Optional[Tuple[BranchPlan, int, int, int]] = None
            for plan in state.plans:
                index = state.choice[plan.site]
                base_correct = (
                    plan.profile_correct
                    if index < 0
                    else max(plan.profile_correct, plan.options[index].correct)
                )
                for next_index in range(index + 1, len(plan.options)):
                    option = plan.options[next_index]
                    gain = option.correct - base_correct
                    if gain <= 0:
                        continue
                    candidates_weighed += 1
                    state.choice[plan.site] = next_index
                    delta = state.size() - size
                    state.choice[plan.site] = index
                    ratio = gain / max(delta, 1)
                    if ratio > best_ratio:
                        best_ratio = ratio
                        best = (plan, next_index, gain, delta)
                    break  # options strictly improve; consider the next one only
            if best is None:
                break
            plan, next_index, gain, delta = best
            if (
                max_size_factor is not None
                and size + delta > state.base_size * max_size_factor
            ):
                break
            state.choice[plan.site] = next_index
            size += delta
            correct += gain
            points.append(
                make_point((plan.site, plan.options[next_index].n_states))
            )
        span.set(upgrades=len(points) - 1, candidates=candidates_weighed)
    OBS.add("tradeoff.curves")
    OBS.add("tradeoff.upgrades", len(points) - 1)
    OBS.add("tradeoff.candidates", candidates_weighed)
    OBS.set_gauge(
        "tradeoff.size_factor",
        size / state.base_size if state.base_size else 1.0,
    )
    return points
