"""Planting and measuring semi-static prediction annotations.

After replication every conditional branch carries a ``predict`` bit.
``annotate_profile_predictions`` plants the plain profile prediction on
unannotated branches; ``measure_annotated`` runs the program and counts
how often the planted bits are wrong — the end-to-end check that the
replicated program achieves the misprediction rate the state-machine
scoring promised.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Sequence

from ..interp import Machine
from ..ir import BranchSite, Program
from ..profiling import ProfileData


def annotate_profile_predictions(
    program: Program, profile: ProfileData, default: bool = True
) -> int:
    """Set ``predict`` to the profile majority on every *unannotated*
    branch; returns the number of branches annotated.

    Branches the training run never executed get *default*.
    """
    count = 0
    for function in program:
        for block in function:
            branch = block.branch
            if branch is None or branch.predict is not None:
                continue
            site = BranchSite(function.name, block.label)
            bias = profile.bias(site)
            block.terminator = dataclasses.replace(
                branch, predict=default if bias is None else bias
            )
            count += 1
    return count


def clear_predictions(program: Program) -> None:
    """Remove all ``predict`` annotations."""
    for function in program:
        for block in function:
            branch = block.branch
            if branch is not None and branch.predict is not None:
                block.terminator = dataclasses.replace(branch, predict=None)


@dataclass
class AnnotatedMeasurement:
    """Misprediction measurement of an annotated program run."""

    events: int
    mispredictions: int
    per_site: Dict[BranchSite, tuple]

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.events if self.events else 0.0


def measure_annotated(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    max_steps: int = 100_000_000,
    default: bool = True,
) -> AnnotatedMeasurement:
    """Run *program* and score its planted ``predict`` bits.

    Unannotated branches are scored with *default*.
    """
    predictions: Dict[BranchSite, bool] = {}
    for function in program:
        for block in function:
            branch = block.branch
            if branch is None:
                continue
            site = BranchSite(function.name, block.label)
            predictions[site] = branch.predict if branch.predict is not None else default

    counters: Dict[BranchSite, list] = {}
    state = {"events": 0, "wrong": 0}

    def on_branch(site: BranchSite, taken: bool) -> None:
        state["events"] += 1
        cell = counters.get(site)
        if cell is None:
            cell = counters[site] = [0, 0]
        cell[0] += 1
        if predictions[site] is not taken:
            state["wrong"] += 1
            cell[1] += 1

    machine = Machine(program, input_values, max_steps, on_branch)
    machine.run(*args)
    return AnnotatedMeasurement(
        state["events"],
        state["wrong"],
        {site: (cell[0], cell[1]) for site, cell in counters.items()},
    )
