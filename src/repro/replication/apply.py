"""Applying a replication plan to a program.

``apply_replication`` takes a list of (branch site, machine) selections
and produces a transformed copy of the program with every machine
realised by code replication.  Profile predictions are planted on all
branches first, so the copies inherit sensible annotations and the
transforms then overwrite the improved branches' copies with their
state predictions.

When several selections touch the same loop, later transforms are
cascaded onto every surviving copy the earlier ones produced — this is
exactly the paper's observation that "the code size is multiplied if
more than one branch in a loop should be improved".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cfg import CFG, LoopForest
from ..ir import BranchSite, Program, validate_program
from ..profiling import ProfileData
from ..statemachines import CorrelatedMachine, PredictionMachine
from .annotate import annotate_profile_predictions
from .loop_transform import LoopReplicationResult, replicate_loop_branch
from .tail_duplicate import TailDuplicationResult, duplicate_correlated_branch

Machine = Union[PredictionMachine, CorrelatedMachine]
Selection = Tuple[BranchSite, Machine]


@dataclass
class ReplicationReport:
    """Outcome of applying a plan."""

    program: Program
    size_before: int
    size_after: int
    loop_results: List[LoopReplicationResult] = field(default_factory=list)
    tail_results: List[TailDuplicationResult] = field(default_factory=list)

    @property
    def size_factor(self) -> float:
        return self.size_after / self.size_before if self.size_before else 1.0


def apply_replication(
    program: Program,
    selections: Sequence[Selection],
    profile: Optional[ProfileData] = None,
    validate: bool = True,
) -> ReplicationReport:
    """Return a transformed copy of *program* realising *selections*.

    The input program is not modified.  When *profile* is given, every
    branch is annotated with its profile prediction before the
    transforms run.
    """
    work = program.copy()
    size_before = work.size()
    if profile is not None:
        annotate_profile_predictions(work, profile)
    report = ReplicationReport(work, size_before, size_before)

    # Each pending selection tracks the current locations of its branch.
    tracked: List[List[BranchSite]] = [[site] for site, _ in selections]

    for index, (site, machine) in enumerate(selections):
        if isinstance(machine, CorrelatedMachine):
            for current in list(tracked[index]):
                result = _apply_correlated(work, current, machine)
                if result is None:
                    continue
                report.tail_results.append(result)
                _cascade_tail(tracked, index, current, result)
        else:
            # Copies of the same static branch living in one loop share
            # the machine, so they are transformed together.
            for function_name, loop, labels in _group_by_loop(work, tracked[index]):
                function = work.function(function_name)
                result = replicate_loop_branch(function, loop, labels, machine)
                report.loop_results.append(result)
                _cascade_loop(
                    tracked, index, BranchSite(function_name, labels[0]), result
                )
        if validate:
            validate_program(work)

    report.size_after = work.size()
    return report


def _group_by_loop(program: Program, sites: List[BranchSite]):
    """Group surviving branch copies by (function, innermost loop)."""
    by_function: Dict[str, List[str]] = {}
    for site in sites:
        function = program.function(site.function)
        if site.block in function.blocks:
            by_function.setdefault(site.function, []).append(site.block)
    for function_name, labels in by_function.items():
        function = program.function(function_name)
        forest = LoopForest(CFG.from_function(function))
        groups: Dict[str, Tuple[object, List[str]]] = {}
        for label in labels:
            loop = forest.loop_of(label)
            if loop is None:
                # Earlier replications can leave a copy in an
                # irreducible region natural-loop analysis cannot see;
                # that copy keeps its profile prediction.
                continue
            entry = groups.setdefault(loop.header, (loop, []))
            entry[1].append(label)
        # Replication can leave copies of one branch in nested loops;
        # transforming the outer loop would consume the inner copies,
        # so merge any group whose labels lie inside another group's
        # (larger) loop body.
        merged = True
        while merged:
            merged = False
            for outer_header in list(groups):
                if outer_header not in groups:
                    continue
                outer_loop, outer_labels = groups[outer_header]
                for inner_header in list(groups):
                    if inner_header == outer_header or inner_header not in groups:
                        continue
                    inner_loop, inner_labels = groups[inner_header]
                    if len(inner_loop.body) <= len(outer_loop.body) and all(
                        label in outer_loop.body for label in inner_labels
                    ):
                        outer_labels.extend(inner_labels)
                        del groups[inner_header]
                        merged = True
        for loop, group_labels in groups.values():
            yield function_name, loop, group_labels


def _apply_correlated(
    program: Program, site: BranchSite, machine: CorrelatedMachine
) -> Optional[TailDuplicationResult]:
    function = program.function(site.function)
    if site.block not in function.blocks:
        return None
    return duplicate_correlated_branch(function, site.block, machine)


def _cascade_loop(
    tracked: List[List[BranchSite]],
    applied_index: int,
    transformed: BranchSite,
    result: LoopReplicationResult,
) -> None:
    for later in range(applied_index + 1, len(tracked)):
        updated: List[BranchSite] = []
        for site in tracked[later]:
            mapping = (
                result.copies.get(site.block)
                if site.function == transformed.function
                else None
            )
            if mapping:
                updated.extend(
                    BranchSite(site.function, label) for label in mapping.values()
                )
            else:
                updated.append(site)
        tracked[later] = updated


def _cascade_tail(
    tracked: List[List[BranchSite]],
    applied_index: int,
    transformed: BranchSite,
    result: TailDuplicationResult,
) -> None:
    for later in range(applied_index + 1, len(tracked)):
        updated: List[BranchSite] = []
        for site in tracked[later]:
            labels = (
                result.block_copies.get(site.block)
                if site.function == transformed.function
                else None
            )
            updated.append(site)
            if labels:
                updated.extend(BranchSite(site.function, label) for label in labels)
        tracked[later] = updated
