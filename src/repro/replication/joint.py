"""Joint replication: one machine, all branches of a loop (Section 6).

Ties together the joint-machine search
(:func:`repro.statemachines.joint.best_joint_machine`) with profiling
and the loop transform:

* :func:`loop_membership` — which loop (innermost) owns each branch;
* :func:`collect_joint_tables` — per-loop, per-member pattern tables
  keyed by the loop's interleaved member-outcome history;
* :func:`replicate_loop_joint` — realise a joint machine by loop
  replication, planting per-branch predictions in every state copy.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from ..cfg import CFG, LoopForest
from ..ir import BranchSite, Function, Program
from ..profiling import PatternTable, Trace
from ..statemachines.joint import JointLoopMachine, ScoredJointMachine, best_joint_machine
from .loop_transform import LoopReplicationResult, replicate_loop_branch

LoopKey = Tuple[str, str]  # (function name, loop header)


def loop_membership(program: Program) -> Dict[BranchSite, LoopKey]:
    """Innermost-loop key of every conditional branch inside a loop."""
    membership: Dict[BranchSite, LoopKey] = {}
    for function in program:
        forest = LoopForest(CFG.from_function(function))
        for block in function:
            if block.branch is None:
                continue
            loop = forest.loop_of(block.label)
            if loop is not None:
                membership[BranchSite(function.name, block.label)] = (
                    function.name,
                    loop.header,
                )
    return membership


def collect_joint_tables(
    trace: Trace,
    membership: Mapping[BranchSite, LoopKey],
    bits: int = 9,
) -> Dict[LoopKey, Dict[BranchSite, PatternTable]]:
    """Pattern tables keyed by each loop's interleaved member history.

    Per loop, a history register shifts in the outcome of *every*
    member branch in trace order; each member execution is charged to
    the history value it observed.
    """
    histories: Dict[LoopKey, int] = {}
    tables: Dict[LoopKey, Dict[BranchSite, PatternTable]] = {}
    mask = (1 << bits) - 1
    sites = trace.sites
    site_keys = [membership.get(site) for site in sites]
    for sid, taken in trace.events():
        if sid >= len(site_keys):
            site_keys.extend(
                membership.get(site) for site in sites[len(site_keys):]
            )
        key = site_keys[sid]
        if key is None:
            continue
        history = histories.get(key, 0)
        loop_tables = tables.get(key)
        if loop_tables is None:
            loop_tables = tables[key] = {}
        site = sites[sid]
        table = loop_tables.get(site)
        if table is None:
            table = loop_tables[site] = PatternTable(bits)
        table.add(history, taken)
        histories[key] = ((history << 1) | taken) & mask
    return tables


def plan_joint_machines(
    program: Program,
    trace: Trace,
    max_states: int = 8,
    bits: int = 9,
    min_members: int = 2,
) -> Dict[LoopKey, ScoredJointMachine]:
    """Best joint machine per loop with at least *min_members* branches."""
    membership = loop_membership(program)
    tables = collect_joint_tables(trace, membership, bits)
    plans: Dict[LoopKey, ScoredJointMachine] = {}
    for key, loop_tables in tables.items():
        if len(loop_tables) < min_members:
            continue
        plans[key] = best_joint_machine(loop_tables, max_states)
    return plans


def replicate_loop_joint(
    function: Function,
    loop_header: str,
    machine: JointLoopMachine,
) -> LoopReplicationResult:
    """Realise *machine* for all its member branches at once."""
    forest = LoopForest(CFG.from_function(function))
    loop = forest.loop_with_header(loop_header)
    if loop is None:
        raise ValueError(f"no loop with header {loop_header!r}")
    labels = [site.block for site in machine.sites]
    label_of = {site.block: site for site in machine.sites}

    def prediction_for(state_index: int, label: str) -> bool:
        return machine.states[state_index].prediction_for(label_of[label])

    return replicate_loop_branch(
        function, loop, labels, machine, prediction_for
    )
