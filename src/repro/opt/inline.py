"""Function inlining.

Inlining matters to this reproduction for a specific reason: calls
*break* the correspondence between global branch history and CFG paths
(see DESIGN.md §5 — "path history vs global history"), so a correlated
branch separated from its correlating branch by a call cannot be
improved by tail duplication.  Inlining the callee restores a single
CFG in which the correlation is a plain path again, at the usual
code-size price — the same trade the paper's replication makes.

The transform:

* splits the calling block at the call;
* copies the callee's blocks with renamed registers and fresh labels;
* binds arguments with ``move`` instructions;
* rewrites every callee ``ret`` into (optional) result move + jump to
  the continuation block.

Only calls to *non-recursive* callees are inlined (a callee that can
transitively reach itself would never terminate the expansion).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from ..ir import (
    BasicBlock,
    Call,
    Function,
    Instr,
    IRError,
    Jump,
    Move,
    Program,
    Return,
    retarget,
)


def _callees_of(function: Function) -> Set[str]:
    names: Set[str] = set()
    for block in function:
        for instr in block.instrs:
            if isinstance(instr, Call):
                names.add(instr.func)
    return names


def recursive_functions(program: Program) -> Set[str]:
    """Functions that can (transitively) call themselves."""
    graph = {f.name: _callees_of(f) for f in program}

    def reaches(start: str, target: str) -> bool:
        seen: Set[str] = set()
        stack = list(graph.get(start, ()))
        while stack:
            name = stack.pop()
            if name == target:
                return True
            if name in seen:
                continue
            seen.add(name)
            stack.extend(graph.get(name, ()))
        return False

    return {name for name in graph if reaches(name, name)}


def _rename_instr(instr: Instr, rename: Dict[str, str]) -> Instr:
    """Rewrite register operands of a copied callee instruction."""
    changes = {}
    for field_name in ("dest", "src", "lhs", "rhs", "addr", "value", "size"):
        if hasattr(instr, field_name):
            operand = getattr(instr, field_name)
            if isinstance(operand, str) and operand in rename:
                changes[field_name] = rename[operand]
    if isinstance(instr, Call):
        changes["args"] = tuple(
            rename.get(a, a) if isinstance(a, str) else a for a in instr.args
        )
        if instr.dest is not None:
            changes["dest"] = rename[instr.dest]
    if isinstance(instr, Return) and isinstance(instr.value, str):
        changes["value"] = rename[instr.value]
    return dataclasses.replace(instr, **changes) if changes else instr


def _collect_registers(function: Function) -> Set[str]:
    registers: Set[str] = set(function.params)
    for block in function:
        instrs: List[Instr] = list(block.instrs)
        if block.terminator is not None:
            instrs.append(block.terminator)
        for instr in instrs:
            registers.update(instr.uses())
            registers.update(instr.defs())
    return registers


def inline_call(
    program: Program,
    caller_name: str,
    block_label: str,
    call_index: int,
) -> None:
    """Inline the call at ``caller.blocks[block_label].instrs[call_index]``."""
    caller = program.function(caller_name)
    block = caller.block(block_label)
    instr = block.instrs[call_index]
    if not isinstance(instr, Call):
        raise IRError(f"{caller_name}:{block_label}[{call_index}] is not a call")
    callee = program.function(instr.func)
    if instr.func in recursive_functions(program):
        raise IRError(f"cannot inline recursive function {instr.func!r}")

    # Fresh register names for everything the callee touches: pick a
    # prefix that collides with nothing already in the caller (repeated
    # inlining of the same callee needs distinct generations).
    caller_registers = _collect_registers(caller)
    generation = 0
    while True:
        prefix = f"{instr.func}${generation}$"
        rename = {reg: f"{prefix}{reg}" for reg in _collect_registers(callee)}
        if not (set(rename.values()) & caller_registers):
            break
        generation += 1
    # Fresh labels for the callee blocks + the continuation.
    label_map = {
        label: caller.fresh_label(f"{label}${instr.func}")
        for label in callee.blocks
    }
    continuation = caller.fresh_label(f"{block_label}$cont")
    # Reserve all labels before creating blocks.
    for fresh in list(label_map.values()) + [continuation]:
        caller.blocks[fresh] = None  # type: ignore[assignment]

    # Split the calling block.
    tail = BasicBlock(
        continuation, block.instrs[call_index + 1 :], block.terminator
    )
    caller.blocks[continuation] = tail
    block.instrs = block.instrs[:call_index]
    # Bind arguments.
    for param, arg in zip(callee.params, instr.args):
        block.instrs.append(Move(rename[param], arg))
    block.terminator = Jump(label_map[callee.entry])

    # Copy callee blocks.
    for label, source in callee.blocks.items():
        copy = BasicBlock(label_map[label])
        copy.instrs = [_rename_instr(i, rename) for i in source.instrs]
        terminator = source.terminator
        if isinstance(terminator, Return):
            if instr.dest is not None:
                if terminator.value is None:
                    raise IRError(
                        f"inlining {instr.func!r}: void return feeds a value"
                    )
                value = terminator.value
                if isinstance(value, str):
                    value = rename[value]
                copy.instrs.append(Move(instr.dest, value))
            copy.terminator = Jump(continuation)
        else:
            renamed = _rename_instr(terminator, rename)
            copy.terminator = retarget(renamed, lambda l: label_map.get(l, l))
        caller.blocks[copy.label] = copy


def inline_all_calls(
    program: Program,
    callees: Optional[Set[str]] = None,
    max_program_size: Optional[int] = None,
    max_passes: int = 10,
) -> int:
    """Inline every call to a non-recursive callee; returns calls inlined.

    ``callees`` restricts which functions get inlined; growth stops at
    ``max_program_size`` instructions.  Nested calls are handled by
    repeated passes (bounded by *max_passes*).
    """
    recursive = recursive_functions(program)
    inlined = 0
    for _ in range(max_passes):
        progress = False
        for function in program:
            for block in list(function):
                for index, instr in enumerate(block.instrs):
                    if not isinstance(instr, Call):
                        continue
                    if instr.func in recursive:
                        continue
                    if callees is not None and instr.func not in callees:
                        continue
                    if (
                        max_program_size is not None
                        and program.size()
                        + program.function(instr.func).size()
                        > max_program_size
                    ):
                        continue
                    inline_call(program, function.name, block.label, index)
                    inlined += 1
                    progress = True
                    break  # block structure changed; rescan
                else:
                    continue
                break
        if not progress:
            break
    return inlined
