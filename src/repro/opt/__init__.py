"""Classic optimisation passes supporting the prediction pipeline."""

from .inline import inline_all_calls, inline_call, recursive_functions

__all__ = ["inline_all_calls", "inline_call", "recursive_functions"]
