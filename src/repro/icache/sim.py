"""A direct-mapped instruction cache simulator.

The paper's cost function weighs the misprediction gain of replication
against its "negative impact on instruction cache miss rate".  This
module provides that substrate: program text is laid out at one word
per instruction in block-layout order, and an instrumented run feeds
the fetch stream (every entered block touches its address range)
through a direct-mapped cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..interp import Machine
from ..ir import Program
from ..obs import OBS


@dataclass(frozen=True)
class CacheConfig:
    """Shape of a direct-mapped instruction cache."""

    lines: int = 64
    line_words: int = 8

    def __post_init__(self) -> None:
        if self.lines < 1 or self.line_words < 1:
            raise ValueError("cache dimensions must be positive")
        if self.lines & (self.lines - 1) or self.line_words & (self.line_words - 1):
            raise ValueError("cache dimensions must be powers of two")

    @property
    def capacity_words(self) -> int:
        return self.lines * self.line_words


def assign_addresses(program: Program) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """Lay the program out at one word per instruction.

    Functions are placed in registry order, blocks in their (layout)
    order.  Returns ``(function, label) -> (start, end)`` half-open
    word ranges.
    """
    addresses: Dict[Tuple[str, str], Tuple[int, int]] = {}
    cursor = 0
    for function in program:
        for block in function:
            size = block.size()
            addresses[(function.name, block.label)] = (cursor, cursor + size)
            cursor += size
    return addresses


class InstructionCache:
    """Direct-mapped cache fed with word-address ranges."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._tags = [-1] * config.lines
        self.accesses = 0
        self.misses = 0

    def touch_range(self, start: int, end: int) -> None:
        """Fetch every line overlapping [start, end)."""
        line_words = self.config.line_words
        lines = self.config.lines
        first = start // line_words
        last = (end - 1) // line_words if end > start else first - 1
        tags = self._tags
        for line_address in range(first, last + 1):
            index = line_address % lines
            self.accesses += 1
            if tags[index] != line_address:
                tags[index] = line_address
                self.misses += 1

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self._tags = [-1] * self.config.lines
        self.accesses = 0
        self.misses = 0


@dataclass
class CacheResult:
    """Outcome of simulating one run's fetch stream."""

    config: CacheConfig
    accesses: int
    misses: int
    program_words: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def simulate_icache(
    program: Program,
    config: CacheConfig,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    max_steps: int = 100_000_000,
) -> CacheResult:
    """Run *program* and simulate its instruction fetch stream."""
    addresses = assign_addresses(program)
    cache = InstructionCache(config)
    touch = cache.touch_range

    def on_block(function_name: str, label: str) -> None:
        start, end = addresses[(function_name, label)]
        touch(start, end)

    # The per-touch path stays uninstrumented; totals are reported once
    # after the run from the cache's own counters.
    with OBS.span(
        "icache.simulate", lines=config.lines, line_words=config.line_words
    ) as span:
        machine = Machine(program, input_values, max_steps, on_block=on_block)
        machine.run(*args)
        span.set(accesses=cache.accesses, misses=cache.misses)
    OBS.add("icache.simulations")
    OBS.add("icache.accesses", cache.accesses)
    OBS.add("icache.misses", cache.misses)
    program_words = program.size()
    return CacheResult(config, cache.accesses, cache.misses, program_words)
