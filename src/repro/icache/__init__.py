"""Instruction-cache model and the replication cost function."""

from .cost import CostModel, CostReport, evaluate_cost
from .sim import (
    CacheConfig,
    CacheResult,
    InstructionCache,
    assign_addresses,
    simulate_icache,
)

__all__ = [
    "CacheConfig",
    "CacheResult",
    "CostModel",
    "CostReport",
    "InstructionCache",
    "assign_addresses",
    "evaluate_cost",
    "simulate_icache",
]
