"""The replication cost function (Section 5's closing argument).

"A cost function will calculate whether the increase in code size
(negative impact on instruction cache miss rate) is worth the gain in
execution time."

The estimated cycle count of a run combines three measurable terms:

    cycles = instructions
           + misprediction_penalty x mispredicted branches
           + miss_penalty x instruction cache misses

``evaluate_cost`` measures all three on a concrete (possibly
replicated) program, so replication plans can be compared end to end:
more states -> fewer mispredictions but more cache misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..interp import Machine
from ..ir import Program
from ..replication import measure_annotated
from .sim import CacheConfig, CacheResult, simulate_icache


@dataclass(frozen=True)
class CostModel:
    """Penalty weights, in cycles."""

    misprediction_penalty: int = 4
    miss_penalty: int = 20

    def cycles(self, instructions: int, mispredictions: int, misses: int) -> int:
        return (
            instructions
            + self.misprediction_penalty * mispredictions
            + self.miss_penalty * misses
        )


@dataclass
class CostReport:
    """Everything the cost function measured for one program."""

    instructions: int
    branch_events: int
    mispredictions: int
    cache: CacheResult
    model: CostModel

    @property
    def cycles(self) -> int:
        return self.model.cycles(
            self.instructions, self.mispredictions, self.cache.misses
        )

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.branch_events if self.branch_events else 0.0
        )

    @property
    def cycles_per_instruction(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def evaluate_cost(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    cache_config: CacheConfig = CacheConfig(),
    model: CostModel = CostModel(),
    max_steps: int = 100_000_000,
) -> CostReport:
    """Measure instructions, mispredictions and i-cache misses of one
    annotated program run and combine them into estimated cycles."""
    measurement = measure_annotated(program, args, input_values, max_steps)
    machine = Machine(program, input_values, max_steps)
    run = machine.run(*args)
    cache = simulate_icache(program, cache_config, args, input_values, max_steps)
    return CostReport(
        instructions=run.steps,
        branch_events=measurement.events,
        mispredictions=measurement.mispredictions,
        cache=cache,
        model=model,
    )
