"""repro — Improving Semi-static Branch Prediction by Code Replication.

A full reproduction of Andreas Krall's PLDI 1994 paper: a small
assembly-level IR and interpreter, branch tracing and pattern-table
profiling, the complete strategy zoo (static, dynamic, two-level
adaptive, semi-static), the branch prediction state machines of
Section 4, the code replication transforms of Section 5, eight
synthetic stand-ins for the paper's benchmark suite, and an experiment
harness regenerating every table and figure.

Typical use::

    from repro import (
        parse_program, trace_program, ProfileData,
        ReplicationPlanner, apply_replication, measure_annotated,
    )

    program = parse_program(source_text)
    trace, _ = trace_program(program, args=[1000])
    profile = ProfileData.from_trace(trace)
    planner = ReplicationPlanner(program, profile, max_states=4)
    plan = max(planner.improvable_plans(), key=lambda p: p.executions)
    option = plan.best_option(4)
    report = apply_replication(program, [(plan.site, option.scored.machine)], profile)
    print(measure_annotated(report.program, args=[1000]).misprediction_rate)
"""

from .cfg import (
    BranchClass,
    BranchInfo,
    CFG,
    DominatorTree,
    Loop,
    LoopForest,
    classify_branches,
)
from .interp import FuelExhausted, Machine, RunResult, TrapError, run_program
from .ir import (
    BasicBlock,
    Branch,
    BranchSite,
    Function,
    FunctionBuilder,
    IRError,
    Program,
    ProgramBuilder,
    ValidationError,
    format_program,
    parse_function,
    parse_program,
    validate_program,
)
from .predictors import (
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    Predictor,
    ProfilePredictor,
    SaturatingCounter,
    TwoLevelPredictor,
    ball_larus,
    evaluate,
    two_level_4k,
)
from .profiling import (
    PatternTable,
    ProfileData,
    Trace,
    load_trace,
    save_trace,
    trace_program,
)
from .replication import (
    ReplicationPlanner,
    ReplicationReport,
    annotate_profile_predictions,
    apply_replication,
    duplicate_correlated_branch,
    measure_annotated,
    replicate_loop_branch,
    tradeoff_curve,
)
from .statemachines import (
    CorrelatedMachine,
    PredictionMachine,
    ScoredMachine,
    best_correlated_machine,
    best_intra_machine,
    best_loop_exit_machine,
)

__version__ = "1.0.0"

__all__ = [
    "BasicBlock",
    "Branch",
    "BranchClass",
    "BranchInfo",
    "BranchSite",
    "CFG",
    "CorrelatedMachine",
    "CorrelationPredictor",
    "DominatorTree",
    "FuelExhausted",
    "Function",
    "FunctionBuilder",
    "IRError",
    "LastDirection",
    "Loop",
    "LoopCorrelationPredictor",
    "LoopForest",
    "LoopPredictor",
    "Machine",
    "PatternTable",
    "PredictionMachine",
    "Predictor",
    "ProfileData",
    "ProfilePredictor",
    "Program",
    "ProgramBuilder",
    "ReplicationPlanner",
    "ReplicationReport",
    "RunResult",
    "SaturatingCounter",
    "ScoredMachine",
    "Trace",
    "TrapError",
    "TwoLevelPredictor",
    "ValidationError",
    "annotate_profile_predictions",
    "apply_replication",
    "ball_larus",
    "best_correlated_machine",
    "best_intra_machine",
    "best_loop_exit_machine",
    "classify_branches",
    "duplicate_correlated_branch",
    "evaluate",
    "format_program",
    "load_trace",
    "measure_annotated",
    "parse_function",
    "parse_program",
    "replicate_loop_branch",
    "run_program",
    "save_trace",
    "trace_program",
    "tradeoff_curve",
    "two_level_4k",
    "validate_program",
    "__version__",
]
