"""Learned branch predictors: trained models behind the standard
predictor contract.

Where every other strategy in this repo reads its state from a profile,
this subsystem *produces* state: :func:`fit` trains a perceptron or
logistic-regression model over history bits on a trace prefix, and the
frozen result deploys as a :class:`LearnedPredictor` that evaluates,
batches, serialises and serves exactly like the pattern-table zoo.
"""

from .models import (
    LearnedConfig,
    LearnedModel,
    LearnedPredictor,
    ModelWeights,
    default_learned_configs,
    parse_learned_name,
)
from .serialize import (
    FORMAT_VERSION,
    ModelFormatError,
    model_from_json,
    model_to_json,
)
from .train import DEFAULT_SPLIT, fit, holdout_trace, training_cut

__all__ = [
    "DEFAULT_SPLIT",
    "FORMAT_VERSION",
    "LearnedConfig",
    "LearnedModel",
    "LearnedPredictor",
    "ModelFormatError",
    "ModelWeights",
    "default_learned_configs",
    "fit",
    "holdout_trace",
    "model_from_json",
    "model_to_json",
    "parse_learned_name",
    "training_cut",
]
