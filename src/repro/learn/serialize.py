"""Versioned JSON wire format for trained models.

Mirrors ``statemachines.serialize``: documents carry a
``FORMAT_VERSION`` stamp, :func:`model_from_json` rejects missing or
unknown versions and malformed payloads with :class:`ModelFormatError`,
and a round trip reproduces the model exactly (weights travel as JSON
numbers, whose ``repr`` round-trips Python floats bit for bit).
"""

from __future__ import annotations

import json
import math
from typing import List

from ..ir import BranchSite
from .models import LearnedConfig, LearnedModel, ModelWeights

FORMAT_VERSION = 1


class ModelFormatError(Exception):
    """A learned-model document that cannot be decoded."""


def model_to_json(model: LearnedModel) -> str:
    """Serialise a trained model; sites are emitted sorted so the
    output is independent of training (dict-insertion) order."""
    config = model.config
    document = {
        "version": FORMAT_VERSION,
        "kind": config.kind,
        "scope": config.scope,
        "history_bits": config.history_bits,
        "train": {
            "epochs": config.epochs,
            "theta": config.theta,
            "learning_rate": config.learning_rate,
            "weight_limit": config.weight_limit,
        },
        "shared": {"bias": model.shared.bias, "weights": list(model.shared.weights)},
        "sites": [
            {
                "function": site.function,
                "block": site.block,
                "bias": entry.bias,
                "weights": list(entry.weights),
            }
            for site, entry in sorted(model.sites.items())
        ],
    }
    return json.dumps(document, indent=2)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ModelFormatError(f"malformed model document: {message}")


def _number(value, what: str) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{what} must be a number",
    )
    _require(math.isfinite(value), f"{what} must be finite")
    return value


def _weights(entry: dict, what: str, width: int) -> ModelWeights:
    bias = _number(entry.get("bias"), f"{what} bias")
    weights = entry.get("weights")
    _require(isinstance(weights, list), f"{what} weights must be a list")
    _require(
        len(weights) == width,
        f"{what} weights must have {width} entries, got {len(weights)}",
    )
    values: List[float] = [
        _number(weight, f"{what} weight") for weight in weights
    ]
    return ModelWeights(bias=bias, weights=values)


def model_from_json(text: str) -> LearnedModel:
    """Decode a model document, validating the version stamp and every
    field; raises :class:`ModelFormatError` on anything malformed."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelFormatError(f"bad JSON: {error}") from None
    if not isinstance(document, dict):
        raise ModelFormatError("document must be a JSON object")
    version = document.get("version")
    if isinstance(version, bool) or version != FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported model format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        train = document.get("train")
        _require(isinstance(train, dict), "train must be an object")
        try:
            config = LearnedConfig(
                kind=document["kind"],
                scope=document["scope"],
                history_bits=document["history_bits"],
                epochs=train["epochs"],
                theta=train["theta"],
                learning_rate=train["learning_rate"],
                weight_limit=train["weight_limit"],
            )
        except ValueError as error:
            raise ModelFormatError(f"malformed model document: {error}") from None
        shared_doc = document.get("shared")
        _require(isinstance(shared_doc, dict), "shared must be an object")
        shared = _weights(shared_doc, "shared", config.history_bits)
        site_docs = document.get("sites")
        _require(isinstance(site_docs, list), "sites must be a list")
        sites = {}
        for entry in site_docs:
            _require(isinstance(entry, dict), "site entry must be an object")
            function = entry.get("function")
            block = entry.get("block")
            _require(
                isinstance(function, str) and isinstance(block, str),
                "site entry needs string function and block",
            )
            site = BranchSite(function, block)
            _require(site not in sites, f"duplicate site {site}")
            sites[site] = _weights(entry, f"site {site}", config.feature_bits)
        return LearnedModel(config=config, shared=shared, sites=sites)
    except ModelFormatError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ModelFormatError(f"malformed model document: {error}") from None
