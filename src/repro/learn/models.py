"""Learned branch predictors: perceptron and logistic regression.

The paper's semi-static strategies freeze per-pattern *majority votes*
from a profiling run.  The learned family replaces the vote tables with
trained linear models over the same history features — a per-site bias
plus one weight per history bit (Jiménez & Lin's perceptron predictor,
here trained offline and deployed frozen like every semi-static
strategy), or the logistic-regression counterpart trained by SGD.

Three scopes mirror the two-level zoo's naming:

* ``global``  — features are the k most recent outcomes of the whole
  stream (one shared shift register);
* ``peraddr`` — features are the site's own k most recent outcomes;
* ``hybrid``  — both registers concatenated (k global + k local bits).

Every model also carries one *shared*, site-independent sub-model over
the global history, trained on every event.  Sites never seen during
training fall back to it — the mechanism that lets a model trained on
workload A say something useful about workload B's entirely foreign
sites (the ``transfer`` experiment).

Deployment is frozen: a :class:`LearnedPredictor` never updates its
weights at evaluation time, so its guess is a pure function of
``(site, history registers)`` and the whole family batch-evaluates
through the same LUT kernels as the pattern-table strategies.  All
margin arithmetic — training updates and LUT construction alike — runs
in pure Python in a fixed order, which is what makes the numpy kernels,
the pure-Python fallback and the sequential reference byte-identical.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import BranchSite
from ..predictors.base import Predictor
from ..predictors.kernels import bincount_bool

_KINDS = ("perceptron", "logistic")
_SCOPES = ("global", "peraddr", "hybrid")

#: Widest feature vector a config may request: LUT rows are
#: ``2**feature_bits`` entries, so this bounds both memory and the
#: frozen-row build cost.
MAX_FEATURE_BITS = 12

#: Canonical learned predictor names: ``learned-<kind>-<scope>-<k>bit``.
_NAME_RE = re.compile(
    r"^learned-(perceptron|logistic)-(global|peraddr|hybrid)-(\d{1,3})bit$"
)


@dataclass(frozen=True)
class LearnedConfig:
    """Frozen description of one learned predictor variant.

    ``history_bits`` is the per-register width; the ``hybrid`` scope
    concatenates both registers, so its feature vector is twice as wide.
    Training hyper-parameters ride along so a serialised model records
    how it was produced.
    """

    kind: str = "perceptron"
    scope: str = "global"
    history_bits: int = 8
    #: passes over the training prefix
    epochs: int = 1
    #: perceptron margin threshold; ``None`` = the standard
    #: ``floor(1.93 * bits + 14)`` (Jiménez & Lin), per model width
    theta: Optional[int] = None
    #: logistic SGD step size
    learning_rate: float = 0.25
    #: perceptron weights saturate at ±this
    weight_limit: int = 127

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.scope not in _SCOPES:
            raise ValueError(f"scope must be one of {_SCOPES}, got {self.scope!r}")
        if not isinstance(self.history_bits, int) or isinstance(self.history_bits, bool):
            raise ValueError("history_bits must be an integer")
        if self.history_bits < 1:
            raise ValueError("history_bits must be >= 1")
        if self.feature_bits > MAX_FEATURE_BITS:
            raise ValueError(
                f"{self.scope} scope with {self.history_bits} history bits "
                f"needs {self.feature_bits} feature bits; the limit is "
                f"{MAX_FEATURE_BITS}"
            )
        if not isinstance(self.epochs, int) or isinstance(self.epochs, bool):
            raise ValueError("epochs must be an integer")
        if not 1 <= self.epochs <= 8:
            raise ValueError("epochs must be in [1, 8]")
        if self.theta is not None and (
            not isinstance(self.theta, int)
            or isinstance(self.theta, bool)
            or self.theta < 0
        ):
            raise ValueError("theta must be None or a non-negative integer")
        if (
            not isinstance(self.learning_rate, float)
            or not math.isfinite(self.learning_rate)
            or self.learning_rate <= 0
        ):
            raise ValueError("learning_rate must be a positive finite float")
        if (
            not isinstance(self.weight_limit, int)
            or isinstance(self.weight_limit, bool)
            or self.weight_limit < 1
        ):
            raise ValueError("weight_limit must be a positive integer")

    @property
    def feature_bits(self) -> int:
        """Width of a per-site feature vector (pattern index bits)."""
        return self.history_bits * 2 if self.scope == "hybrid" else self.history_bits

    @property
    def name(self) -> str:
        return f"learned-{self.kind}-{self.scope}-{self.history_bits}bit"

    def resolved_theta(self, n_bits: int) -> int:
        """The perceptron update threshold for an *n_bits*-wide model."""
        return self.theta if self.theta is not None else int(1.93 * n_bits + 14)


def parse_learned_name(name: str) -> Optional[LearnedConfig]:
    """``learned-<kind>-<scope>-<k>bit`` → config; ``None`` if the name
    is not in the learned namespace.  A name that *is* in the namespace
    but invalid (history width over the limit) raises ``ValueError`` so
    callers can distinguish "not learned" from "learned but bad"."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    kind, scope, bits = match.groups()
    return LearnedConfig(kind=kind, scope=scope, history_bits=int(bits))


@dataclass
class ModelWeights:
    """One linear sub-model: a bias plus one weight per feature bit.

    ``weights[j]`` multiplies the ±1 encoding of pattern bit ``j``
    (LSB = most recent outcome).  Integers for the perceptron, floats
    for logistic regression; :func:`margin` runs the same fixed-order
    arithmetic either way.
    """

    bias: float = 0
    weights: List[float] = field(default_factory=list)


def margin(model: ModelWeights, pattern: int) -> float:
    """``bias + Σ w[j]·x[j]`` with ``x[j] = +1`` if pattern bit j is set
    else ``-1`` — the one dot-product implementation every path (train,
    predict, LUT build) shares, so decisions agree bit for bit."""
    total = model.bias
    for weight in model.weights:
        if pattern & 1:
            total += weight
        else:
            total -= weight
        pattern >>= 1
    return total


def guess_row(model: ModelWeights) -> List[int]:
    """The frozen pattern → guess lookup row (``2**len(weights)``
    entries, 1 = predict taken)."""
    return [
        1 if margin(model, pattern) >= 0 else 0
        for pattern in range(1 << len(model.weights))
    ]


@dataclass
class LearnedModel:
    """Trained parameters: per-site models plus the shared fallback.

    ``sites`` maps every site seen in training (first-seen order) to its
    ``feature_bits``-wide model; ``shared`` is the site-independent
    global-history model (``history_bits`` wide) every unseen site uses.
    """

    config: LearnedConfig
    shared: ModelWeights
    sites: Dict[BranchSite, ModelWeights]


class LearnedPredictor(Predictor):
    """A frozen trained model behind the standard predictor contract.

    Evaluation-time state is only the history registers (exactly like
    the pattern-table strategies); the weights never move, so
    ``evaluate``/``evaluate_many``, the QA journeys and the service all
    treat it like any other semi-static predictor.
    """

    def __init__(self, model: LearnedModel, name: Optional[str] = None) -> None:
        super().__init__(name or model.config.name)
        self.model = model
        config = model.config
        self.scope = config.scope
        self.bits = config.history_bits
        self._mask = (1 << config.history_bits) - 1
        self._ghist = 0
        self._lhist: Dict[BranchSite, int] = {}

    def reset(self) -> None:
        self._ghist = 0
        self._lhist = {}

    def _pattern(self, site: BranchSite) -> int:
        if self.scope == "global":
            return self._ghist
        local = self._lhist.get(site, 0)
        if self.scope == "peraddr":
            return local
        return (local << self.bits) | self._ghist

    def predict(self, site: BranchSite) -> bool:
        entry = self.model.sites.get(site)
        if entry is None:
            return margin(self.model.shared, self._ghist) >= 0
        return margin(entry, self._pattern(site)) >= 0

    def update(self, site: BranchSite, taken: bool) -> None:
        bit = 1 if taken else 0
        self._ghist = ((self._ghist << 1) | bit) & self._mask
        if self.scope != "global":
            local = self._lhist.get(site, 0)
            self._lhist[site] = ((local << 1) | bit) & self._mask

    # -- frozen lookup rows ----------------------------------------------------

    def _frozen_rows(
        self, sites: Sequence[BranchSite]
    ) -> Tuple[List[Optional[List[int]]], List[int]]:
        """``(per-site rows, shared row)`` for this site table, built
        once per (predictor, site list) — shared by the stepper, the
        fallback kernel and the numpy LUT bake."""
        key = tuple(sites)
        cache = self.__dict__.setdefault("_row_cache", {})
        entry = cache.get(key)
        if entry is None:
            site_rows = [
                guess_row(self.model.sites[site])
                if site in self.model.sites
                else None
                for site in sites
            ]
            entry = (site_rows, guess_row(self.model.shared))
            cache[key] = entry
        return entry

    def make_stepper(self, sites):
        rows, shared_row = self._frozen_rows(sites)
        scope = self.scope
        bits = self.bits
        mask = self._mask
        ghist = self._ghist
        lhists = [0] * len(sites)

        def step(sid: int, direction: int) -> bool:
            nonlocal ghist
            row = rows[sid]
            if row is None:
                guess = shared_row[ghist]
            elif scope == "global":
                guess = row[ghist]
            elif scope == "peraddr":
                guess = row[lhists[sid]]
            else:
                guess = row[(lhists[sid] << bits) | ghist]
            ghist = ((ghist << 1) | direction) & mask
            if scope != "global":
                lhists[sid] = ((lhists[sid] << 1) | direction) & mask
            return guess != direction

        return step

    # -- columnar batch kernel -------------------------------------------------

    def step_batch(self, columns) -> List[int]:
        counts = [0] * columns.n_sites
        if columns.n_events == 0:
            return counts
        np = columns.np
        if np is None:
            return self._step_batch_sequential(columns)
        rows, shared_row = self._frozen_rows(columns.sites)
        bits = self.bits
        if self.scope == "global":
            # Seen and unseen sites index by the same global register,
            # so the shared row bakes straight into the flat LUT and the
            # whole scope is one gather (same cached columns as the
            # correlation kernel).
            lut = self._cached_luts(np, columns)[0]

            def build_index():
                from ..predictors.kernels import history_pack

                histories = columns.cached(
                    ("ghist", bits),
                    lambda: history_pack(np, columns.directions, bits),
                )
                return (columns.site_ids.astype(np.int32) << bits) | histories

            guesses = lut[columns.cached(("ghist-idx", bits), build_index)]
            return bincount_bool(
                np, columns.site_ids, guesses != columns.directions, columns.n_sites
            )
        # peraddr/hybrid: score in site-grouped order (one local register
        # per site is a boundary-masked window there), with unseen sites
        # routed to the shared global-history row.
        from ..predictors.kernels import history_pack

        sorted_ids, grouped_dirs, _ = columns.grouped()
        lhist = columns.cached(
            ("lhist", bits),
            lambda: history_pack(np, grouped_dirs, bits, columns.grouped_starts()),
        )
        perm = columns.cached(
            ("site-perm",), lambda: np.argsort(columns.site_ids, kind="stable")
        )
        ghist_grouped = columns.cached(
            ("ghist-grouped", bits),
            lambda: columns.cached(
                ("ghist", bits),
                lambda: history_pack(np, columns.directions, bits),
            )[perm],
        )
        site_lut, shared_lut, seen = self._cached_luts(np, columns)
        if self.scope == "peraddr":
            index = columns.cached(
                ("lhist-idx", bits),
                lambda: (sorted_ids.astype(np.int32) << bits) | lhist,
            )
        else:
            index = columns.cached(
                ("hybrid-idx", bits),
                lambda: (sorted_ids.astype(np.int32) << (2 * bits))
                | (lhist << bits)
                | ghist_grouped,
            )
        guesses = np.where(seen[sorted_ids], site_lut[index], shared_lut[ghist_grouped])
        return bincount_bool(np, sorted_ids, guesses != grouped_dirs, columns.n_sites)

    def _cached_luts(self, np, columns):
        """``(flat site LUT, shared LUT, per-sid seen mask)`` as numpy
        arrays, built from the pure-Python frozen rows (so the decisions
        are the fallback's, merely gathered vectorially)."""
        key = ("lut", tuple(columns.sites))
        cache = self.__dict__.setdefault("_row_cache", {})
        entry = cache.get(key)
        if entry is None:
            rows, shared_row = self._frozen_rows(columns.sites)
            width = 1 << self.model.config.feature_bits
            flat = np.zeros(len(rows) * width, dtype=np.uint8)
            seen = np.zeros(len(rows), dtype=bool)
            for sid, row in enumerate(rows):
                if row is None:
                    if self.scope == "global":
                        flat[sid * width : (sid + 1) * width] = shared_row
                    continue
                seen[sid] = True
                flat[sid * width : (sid + 1) * width] = row
            entry = (flat, np.array(shared_row, dtype=np.uint8), seen)
            cache[key] = entry
        return entry

    def _step_batch_sequential(self, columns) -> List[int]:
        """Pure-Python kernel: the stepper loop over the columns —
        byte-identical to the numpy gathers by construction."""
        counts = [0] * columns.n_sites
        rows, shared_row = self._frozen_rows(columns.sites)
        scope = self.scope
        bits = self.bits
        mask = self._mask
        ghist = 0
        lhists = [0] * columns.n_sites
        for sid, direction in zip(columns.site_ids, columns.directions):
            row = rows[sid]
            if row is None:
                guess = shared_row[ghist]
            elif scope == "global":
                guess = row[ghist]
            elif scope == "peraddr":
                guess = row[lhists[sid]]
            else:
                guess = row[(lhists[sid] << bits) | ghist]
            if guess != direction:
                counts[sid] += 1
            ghist = ((ghist << 1) | direction) & mask
            if scope != "global":
                lhists[sid] = ((lhists[sid] << 1) | direction) & mask
        return counts


def default_learned_configs() -> Tuple[LearnedConfig, ...]:
    """The learned zoo rows: both kinds, every scope represented."""
    return (
        LearnedConfig(kind="perceptron", scope="global", history_bits=8),
        LearnedConfig(kind="perceptron", scope="peraddr", history_bits=8),
        LearnedConfig(kind="perceptron", scope="hybrid", history_bits=4),
        LearnedConfig(kind="logistic", scope="global", history_bits=8),
    )
