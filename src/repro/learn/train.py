"""Deterministic offline training over :class:`TraceColumns`.

The protocol mirrors the paper's profile-then-deploy split: the first
``split`` fraction of a trace (in event order) is the "profiling run"
the model learns from; the remaining suffix is the deployment the
frozen model is judged on.  History registers start at zero for both
phases — the holdout is evaluated as its own fresh trace, so a
learned predictor and a pattern-table predictor see identical inputs.

Determinism: training is a fixed-order sequential pass over the event
columns using pure-Python integer/float arithmetic, keyed throughout by
dense site ids (never ``hash()``), so the resulting weights are
byte-identical across ``PYTHONHASHSEED`` values and across the numpy /
``REPRO_NO_NUMPY=1`` column representations.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Tuple

from ..profiling.trace import Trace
from .models import LearnedConfig, LearnedModel, ModelWeights, margin

#: Default train/eval split: first half trains, second half judges.
DEFAULT_SPLIT = 0.5


def training_cut(n_events: int, split: float) -> int:
    """How many leading events the training prefix spans.

    ``split`` must be in ``(0, 1]``; ``1.0`` trains on the whole trace
    (what the transfer experiment does — its holdout is a *different*
    workload).
    """
    if isinstance(split, bool) or not isinstance(split, (int, float)):
        raise ValueError("split must be a number in (0, 1]")
    split = float(split)
    if not math.isfinite(split) or not 0.0 < split <= 1.0:
        raise ValueError(f"split must be in (0, 1], got {split!r}")
    return int(n_events * split)


def holdout_trace(trace: Trace, split: float = DEFAULT_SPLIT) -> Trace:
    """The evaluation suffix as a fresh trace (histories restart at the
    boundary, matching the documented protocol)."""
    cut = training_cut(len(trace), split)
    suffix = Trace()
    for sid, direction in itertools.islice(trace.events(), cut, None):
        suffix.record(trace.sites[sid], bool(direction))
    return suffix


def _event_lists(columns, cut: int) -> Tuple[List[int], List[int]]:
    """The training prefix as plain Python ints regardless of whether
    the columns are numpy arrays or stdlib fallbacks — the training
    arithmetic must not see numpy scalars."""
    site_ids = columns.site_ids[:cut]
    directions = columns.directions[:cut]
    if columns.np is not None:
        return site_ids.tolist(), directions.tolist()
    return list(site_ids), list(directions)


def _update_perceptron(
    model: ModelWeights, pattern: int, y: int, theta: int, limit: int
) -> None:
    total = margin(model, pattern)
    taken = total >= 0
    if taken == (y > 0) and (total if total >= 0 else -total) > theta:
        return
    bias = model.bias + y
    model.bias = max(-limit, min(limit, bias))
    weights = model.weights
    for j in range(len(weights)):
        step = y if (pattern >> j) & 1 else -y
        weights[j] = max(-limit, min(limit, weights[j] + step))


def _update_logistic(
    model: ModelWeights, pattern: int, target: int, rate: float
) -> None:
    total = margin(model, pattern)
    clamped = max(-60.0, min(60.0, total))
    probability = 1.0 / (1.0 + math.exp(-clamped))
    gradient = rate * (float(target) - probability)
    model.bias += gradient
    weights = model.weights
    for j in range(len(weights)):
        weights[j] += gradient if (pattern >> j) & 1 else -gradient


def fit(columns, config: LearnedConfig, split: float = DEFAULT_SPLIT) -> LearnedModel:
    """Train a :class:`LearnedModel` on the leading ``split`` fraction
    of the columns.

    One sequential pass per epoch, registers reset at each epoch start.
    Every event trains the shared global-history model; the event's own
    site trains its per-site model over the scope's pattern.  Returns
    per-site weights for every site seen in the prefix (first-seen
    order) — unseen sites will route to the shared model at prediction
    time.
    """
    cut = training_cut(columns.n_events, split)
    site_ids, directions = _event_lists(columns, cut)
    bits = config.history_bits
    feature_bits = config.feature_bits
    mask = (1 << bits) - 1
    scope = config.scope
    perceptron = config.kind == "perceptron"
    zero = 0 if perceptron else 0.0
    theta_shared = config.resolved_theta(bits)
    theta_site = config.resolved_theta(feature_bits)
    rate = config.learning_rate
    limit = config.weight_limit

    shared = ModelWeights(bias=zero, weights=[zero] * bits)
    n_sites = columns.n_sites
    site_models: List[ModelWeights] = [None] * n_sites  # type: ignore[list-item]
    seen_order: List[int] = []

    for _ in range(config.epochs):
        ghist = 0
        lhists = [0] * n_sites
        for sid, direction in zip(site_ids, directions):
            y = 1 if direction else -1
            entry = site_models[sid]
            if entry is None:
                entry = ModelWeights(bias=zero, weights=[zero] * feature_bits)
                site_models[sid] = entry
                seen_order.append(sid)
            if scope == "global":
                pattern = ghist
            elif scope == "peraddr":
                pattern = lhists[sid]
            else:
                pattern = (lhists[sid] << bits) | ghist
            if perceptron:
                _update_perceptron(shared, ghist, y, theta_shared, limit)
                _update_perceptron(entry, pattern, y, theta_site, limit)
            else:
                _update_logistic(shared, ghist, direction, rate)
                _update_logistic(entry, pattern, direction, rate)
            ghist = ((ghist << 1) | direction) & mask
            lhists[sid] = ((lhists[sid] << 1) | direction) & mask

    # seen_order can accumulate duplicates only across epochs resets —
    # it cannot: entries persist across epochs, so each sid appears once.
    sites = {columns.sites[sid]: site_models[sid] for sid in seen_order}
    return LearnedModel(config=config, shared=shared, sites=sites)
