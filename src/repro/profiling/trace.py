"""Branch traces.

A trace is the paper's instrumentation output: the ordered sequence of
(branch number, direction) events of one program run, together with the
table mapping branch numbers back to static branch sites.  Events are
stored column-wise (an ``array`` of site indices plus a ``bytearray``
of direction bits), which keeps a multi-million-event trace compact in
memory and fast to scan.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Tuple

from ..ir import BranchSite


class Trace:
    """An ordered sequence of branch events."""

    def __init__(self) -> None:
        self.sites: List[BranchSite] = []
        self._site_index: Dict[BranchSite, int] = {}
        self.site_ids = array("i")
        self.directions = bytearray()

    # -- recording -------------------------------------------------------------

    def site_id(self, site: BranchSite) -> int:
        """Intern *site*, returning its stable small-integer id."""
        index = self._site_index.get(site)
        if index is None:
            index = len(self.sites)
            self._site_index[site] = index
            self.sites.append(site)
        return index

    def record(self, site: BranchSite, taken: bool) -> None:
        """Append one event (the tracing callback)."""
        self.site_ids.append(self.site_id(site))
        self.directions.append(1 if taken else 0)

    def record_id(self, site_id: int, taken: bool) -> None:
        """Append one event for an already-interned site id."""
        self.site_ids.append(site_id)
        self.directions.append(1 if taken else 0)

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.site_ids)

    def events(self) -> Iterator[Tuple[int, int]]:
        """Iterate (site_id, direction) pairs; direction is 0 or 1."""
        return zip(self.site_ids, self.directions)

    def __iter__(self) -> Iterator[Tuple[BranchSite, bool]]:
        sites = self.sites
        for sid, direction in zip(self.site_ids, self.directions):
            yield sites[sid], bool(direction)

    def executed_sites(self) -> List[BranchSite]:
        """Sites that appear at least once, in first-appearance order."""
        seen = [False] * len(self.sites)
        order: List[BranchSite] = []
        for sid in self.site_ids:
            if not seen[sid]:
                seen[sid] = True
                order.append(self.sites[sid])
        return order

    def taken_counts(self) -> Dict[BranchSite, Tuple[int, int]]:
        """Per-site (not_taken, taken) totals."""
        counts = [[0, 0] for _ in self.sites]
        for sid, direction in zip(self.site_ids, self.directions):
            counts[sid][direction] += 1
        return {
            self.sites[i]: (c[0], c[1])
            for i, c in enumerate(counts)
            if c[0] or c[1]
        }

    def truncated(self, max_events: int) -> "Trace":
        """A copy limited to the first *max_events* events."""
        clone = Trace()
        clone.sites = list(self.sites)
        clone._site_index = dict(self._site_index)
        clone.site_ids = self.site_ids[:max_events]
        clone.directions = self.directions[:max_events]
        return clone

    @classmethod
    def from_events(cls, events: Iterable[Tuple[BranchSite, bool]]) -> "Trace":
        """Build a trace from an iterable of (site, taken) pairs."""
        trace = cls()
        for site, taken in events:
            trace.record(site, taken)
        return trace
