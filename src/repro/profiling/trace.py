"""Branch traces.

A trace is the paper's instrumentation output: the ordered sequence of
(branch number, direction) events of one program run, together with the
table mapping branch numbers back to static branch sites.  Events are
stored column-wise — an ``array`` of site indices plus a
:class:`PackedDirections` holding the direction bits **bit-packed**, the
same LSB-first layout the ``KBT1`` trace file uses on disk — which
keeps a multi-million-event trace compact in memory (one bit per
outcome, exactly the on-disk cost before compression) and lets
:meth:`Trace.columns` hand the evaluation engine a zero-copy columnar
view of both streams.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..ir import BranchSite
from .columns import TraceColumns, unpack_bits


class PackedDirections:
    """A mutable sequence of 0/1 direction bits, stored bit-packed.

    The storage layout is the trace file's: LSB-first within each byte,
    so bit *i* lives at ``data[i >> 3] & (1 << (i & 7))``.  The class
    supports the small sequence surface the trace layer needs —
    ``append``/``extend``, ``len``, indexing, slicing, iteration and
    equality — plus :meth:`packed` (the raw bytes, trailing bits
    zeroed) and :meth:`unpacked` (a cached one-byte-per-bit expansion
    for the legacy per-event iteration paths).
    """

    __slots__ = ("_data", "_length", "_cache")

    def __init__(self, bits: Iterable[int] = ()) -> None:
        self._data = bytearray()
        self._length = 0
        self._cache: Optional[bytearray] = None
        self.extend(bits)

    @classmethod
    def from_packed(cls, data: bytes, count: int) -> "PackedDirections":
        """Wrap *count* bits of LSB-first packed *data*.

        Only ``ceil(count / 8)`` bytes are kept and the unused high bits
        of the final byte are zeroed, so two logically equal sequences
        are also byte-equal regardless of any trailing garbage in the
        source buffer.
        """
        if len(data) * 8 < count:
            raise ValueError(
                f"{count} bits need {(count + 7) // 8} bytes, got {len(data)}"
            )
        packed = cls()
        packed._data = bytearray(data[: (count + 7) // 8])
        packed._length = count
        if count & 7 and packed._data:
            packed._data[-1] &= (1 << (count & 7)) - 1
        return packed

    def packed(self) -> bytes:
        """The raw LSB-first packed bytes (``ceil(len / 8)`` of them)."""
        return bytes(self._data)

    def unpacked(self) -> bytearray:
        """One byte per bit (0 or 1), cached until the next mutation."""
        if self._cache is None:
            self._cache = unpack_bits(self._data, self._length)
        return self._cache

    def append(self, bit: int) -> None:
        index = self._length
        if index >> 3 == len(self._data):
            self._data.append(0)
        if bit:
            self._data[index >> 3] |= 1 << (index & 7)
        self._length = index + 1
        self._cache = None

    def extend(self, bits: Iterable[int]) -> None:
        for bit in bits:
            self.append(bit)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        return iter(self.unpacked())

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step == 1 and start == 0:
                # The common prefix slice stays packed: byte copy + mask.
                return PackedDirections.from_packed(
                    self._data[: (stop + 7) // 8], stop
                )
            return PackedDirections(self.unpacked()[index])
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("direction index out of range")
        return (self._data[index >> 3] >> (index & 7)) & 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedDirections):
            return self._length == other._length and self._data == other._data
        if isinstance(other, (bytes, bytearray, list, tuple)):
            return len(other) == self._length and bytes(self.unpacked()) == bytes(
                bytearray(other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"PackedDirections({list(self.unpacked())!r})"


class Trace:
    """An ordered sequence of branch events."""

    def __init__(self) -> None:
        self.sites: List[BranchSite] = []
        self._site_index: Dict[BranchSite, int] = {}
        self.site_ids = array("i")
        self.directions = PackedDirections()
        self._columns: Optional[TraceColumns] = None

    # -- recording -------------------------------------------------------------

    def site_id(self, site: BranchSite) -> int:
        """Intern *site*, returning its stable small-integer id."""
        index = self._site_index.get(site)
        if index is None:
            index = len(self.sites)
            self._site_index[site] = index
            self.sites.append(site)
        return index

    def record(self, site: BranchSite, taken: bool) -> None:
        """Append one event (the tracing callback)."""
        self.site_ids.append(self.site_id(site))
        self.directions.append(1 if taken else 0)

    def record_id(self, site_id: int, taken: bool) -> None:
        """Append one event for an already-interned site id."""
        self.site_ids.append(site_id)
        self.directions.append(1 if taken else 0)

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.site_ids)

    def events(self) -> Iterator[Tuple[int, int]]:
        """Iterate (site_id, direction) pairs; direction is 0 or 1."""
        return zip(self.site_ids, self.directions.unpacked())

    def __iter__(self) -> Iterator[Tuple[BranchSite, bool]]:
        sites = self.sites
        for sid, direction in self.events():
            yield sites[sid], bool(direction)

    def columns(self) -> TraceColumns:
        """The cached columnar view of this trace's current events.

        Rebuilt lazily whenever events were recorded since the last
        call; the view itself is immutable (see
        :class:`~repro.profiling.columns.TraceColumns`).
        """
        if self._columns is None or self._columns.n_events != len(self):
            self._columns = TraceColumns(
                self.sites, self.site_ids, self.directions.packed()
            )
        return self._columns

    def executed_sites(self) -> List[BranchSite]:
        """Sites that appear at least once, in first-appearance order."""
        seen = [False] * len(self.sites)
        order: List[BranchSite] = []
        for sid in self.site_ids:
            if not seen[sid]:
                seen[sid] = True
                order.append(self.sites[sid])
        return order

    def taken_counts(self) -> Dict[BranchSite, Tuple[int, int]]:
        """Per-site (not_taken, taken) totals."""
        counts = [[0, 0] for _ in self.sites]
        for sid, direction in self.events():
            counts[sid][direction] += 1
        return {
            self.sites[i]: (c[0], c[1])
            for i, c in enumerate(counts)
            if c[0] or c[1]
        }

    def truncated(self, max_events: int) -> "Trace":
        """A copy limited to the first *max_events* events."""
        clone = Trace()
        clone.sites = list(self.sites)
        clone._site_index = dict(self._site_index)
        clone.site_ids = self.site_ids[:max_events]
        clone.directions = self.directions[: len(clone.site_ids)]
        return clone

    @classmethod
    def from_events(cls, events: Iterable[Tuple[BranchSite, bool]]) -> "Trace":
        """Build a trace from an iterable of (site, taken) pairs."""
        trace = cls()
        for site, taken in events:
            trace.record(site, taken)
        return trace
