"""Compressed on-disk trace format.

The paper notes that "in compressed form a trace of 5 million branches
occupies about a MB"; this module provides a comparable format:

* header: magic ``KBT1``, site count, event count;
* site table: ``function:block`` strings, newline separated, UTF-8;
* site-id stream: per-event varints, zlib-compressed;
* direction stream: one bit per event, packed LSB-first, zlib-compressed.

The format is self-contained — a trace file plus the (separately saved)
CFG description is everything the analysis tools need, mirroring the
paper's tracer which "saves the description of branches, a control flow
graph and loop information in a file".
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import BinaryIO, Union

from ..ir import BranchSite
from .trace import Trace

MAGIC = b"KBT1"


class TraceFormatError(Exception):
    """Raised when a trace file is malformed."""


def _write_varints(values) -> bytes:
    out = bytearray()
    for value in values:
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _read_varints(data: bytes, count: int):
    values = []
    value = 0
    shift = 0
    for byte in data:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(value)
            value = 0
            shift = 0
            if len(values) == count:
                break
    if len(values) != count:
        raise TraceFormatError(f"expected {count} events, decoded {len(values)}")
    return values


def _pack_bits(bits: bytearray) -> bytes:
    out = bytearray((len(bits) + 7) // 8)
    for index, bit in enumerate(bits):
        if bit:
            out[index >> 3] |= 1 << (index & 7)
    return bytes(out)


def _unpack_bits(data: bytes, count: int) -> bytearray:
    out = bytearray(count)
    for index in range(count):
        if data[index >> 3] & (1 << (index & 7)):
            out[index] = 1
    return out


def save_trace(trace: Trace, destination: Union[str, BinaryIO]) -> None:
    """Write *trace* to a path or binary stream."""
    if isinstance(destination, str):
        with open(destination, "wb") as stream:
            save_trace(trace, stream)
        return
    stream = destination
    site_blob = "\n".join(f"{s.function}:{s.block}" for s in trace.sites).encode()
    id_blob = zlib.compress(_write_varints(trace.site_ids), 6)
    dir_blob = zlib.compress(_pack_bits(trace.directions), 6)
    stream.write(MAGIC)
    stream.write(
        struct.pack(
            "<QQIII",
            len(trace.sites),
            len(trace),
            len(site_blob),
            len(id_blob),
            len(dir_blob),
        )
    )
    stream.write(site_blob)
    stream.write(id_blob)
    stream.write(dir_blob)


def load_trace(source: Union[str, BinaryIO]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    if isinstance(source, str):
        with open(source, "rb") as stream:
            return load_trace(stream)
    stream = source
    magic = stream.read(4)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    header_size = struct.calcsize("<QQIII")
    header = stream.read(header_size)
    if len(header) != header_size:
        raise TraceFormatError("truncated trace header")
    site_count, event_count, site_len, id_len, dir_len = struct.unpack(
        "<QQIII", header
    )
    site_blob = stream.read(site_len)
    id_blob = stream.read(id_len)
    dir_blob = stream.read(dir_len)
    if len(site_blob) != site_len or len(id_blob) != id_len or len(dir_blob) != dir_len:
        raise TraceFormatError("truncated trace file")

    trace = Trace()
    if site_blob:
        try:
            lines = site_blob.decode().split("\n")
        except UnicodeDecodeError as error:
            raise TraceFormatError(f"corrupt site table: {error}") from None
        for line in lines:
            function, _, block = line.partition(":")
            trace.site_id(BranchSite(function, block))
    if len(trace.sites) != site_count:
        raise TraceFormatError("site table length mismatch")
    try:
        ids = _read_varints(zlib.decompress(id_blob), event_count)
    except zlib.error as error:
        raise TraceFormatError(f"corrupt site-id stream: {error}") from None
    for sid in ids:
        if sid >= site_count:
            raise TraceFormatError(f"event references unknown site {sid}")
    trace.site_ids.extend(ids)
    try:
        directions = _unpack_bits(zlib.decompress(dir_blob), event_count)
    except zlib.error as error:
        raise TraceFormatError(f"corrupt direction stream: {error}") from None
    except IndexError:
        raise TraceFormatError(
            f"direction stream shorter than {event_count} events"
        ) from None
    trace.directions.extend(directions)
    return trace


def trace_to_bytes(trace: Trace) -> bytes:
    """Serialise *trace* into a bytes object."""
    buffer = io.BytesIO()
    save_trace(trace, buffer)
    return buffer.getvalue()


def trace_from_bytes(data: bytes) -> Trace:
    """Deserialise a trace from bytes."""
    return load_trace(io.BytesIO(data))
