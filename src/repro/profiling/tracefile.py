"""Compressed on-disk trace format.

The paper notes that "in compressed form a trace of 5 million branches
occupies about a MB"; this module provides a comparable format:

* header: magic ``KBT1``, site count, event count;
* site table: ``function:block`` strings, newline separated, UTF-8;
* site-id stream: per-event varints, zlib-compressed;
* direction stream: one bit per event, packed LSB-first, zlib-compressed.

The format is self-contained — a trace file plus the (separately saved)
CFG description is everything the analysis tools need, mirroring the
paper's tracer which "saves the description of branches, a control flow
graph and loop information in a file".

Loading is zero-copy where the format allows: path loads are
``mmap``-ed and sliced through ``memoryview`` (no read copy of the
compressed payload), the decompressed direction stream is adopted
**bit-packed** as the trace's in-memory representation (the engine's
columnar kernels expand it with ``numpy.frombuffer``/``unpackbits`` on
demand), and single-byte site-id streams — any trace with at most 128
sites — skip the varint loop entirely.
"""

from __future__ import annotations

import io
import mmap
import struct
import zlib
from array import array
from typing import BinaryIO, Union

from ..ir import BranchSite
from .columns import get_numpy
from .trace import PackedDirections, Trace

MAGIC = b"KBT1"

_HEADER = "<QQIII"
_HEADER_SIZE = struct.calcsize(_HEADER)


class TraceFormatError(Exception):
    """Raised when a trace file is malformed."""


def _write_varints(values) -> bytes:
    out = bytearray()
    for value in values:
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _decode_site_ids(data: bytes, count: int, site_count: int) -> array:
    """The site-id column from its varint stream, validated.

    Fast path: when every site id fits in seven bits the stream is one
    byte per event, so it can be adopted wholesale (vectorized widening
    under numpy) without the per-byte decode loop.
    """
    ids = array("i")
    if count == 0:
        return ids
    if site_count <= 0x80 and len(data) == count and max(data) < site_count:
        np = get_numpy()
        if np is not None:
            ids.frombytes(np.frombuffer(data, dtype=np.uint8).astype(np.intc).tobytes())
        else:
            ids.extend(data)
        return ids
    value = 0
    shift = 0
    for byte in data:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            if value >= site_count:
                raise TraceFormatError(f"event references unknown site {value}")
            ids.append(value)
            value = 0
            shift = 0
            if len(ids) == count:
                break
    if len(ids) != count:
        raise TraceFormatError(f"expected {count} events, decoded {len(ids)}")
    return ids


def save_trace(trace: Trace, destination: Union[str, BinaryIO]) -> None:
    """Write *trace* to a path or binary stream."""
    if isinstance(destination, str):
        with open(destination, "wb") as stream:
            save_trace(trace, stream)
        return
    stream = destination
    site_blob = "\n".join(f"{s.function}:{s.block}" for s in trace.sites).encode()
    id_blob = zlib.compress(_write_varints(trace.site_ids), 6)
    dir_blob = zlib.compress(trace.directions.packed(), 6)
    stream.write(MAGIC)
    stream.write(
        struct.pack(
            _HEADER,
            len(trace.sites),
            len(trace),
            len(site_blob),
            len(id_blob),
            len(dir_blob),
        )
    )
    stream.write(site_blob)
    stream.write(id_blob)
    stream.write(dir_blob)


def _build_trace(site_blob, id_blob, dir_blob, site_count: int, event_count: int) -> Trace:
    """Assemble a trace from the three (still compressed) payloads."""
    trace = Trace()
    if len(site_blob):
        try:
            lines = bytes(site_blob).decode().split("\n")
        except UnicodeDecodeError as error:
            raise TraceFormatError(f"corrupt site table: {error}") from None
        for line in lines:
            function, _, block = line.partition(":")
            trace.site_id(BranchSite(function, block))
    if len(trace.sites) != site_count:
        raise TraceFormatError("site table length mismatch")
    try:
        trace.site_ids = _decode_site_ids(
            zlib.decompress(id_blob), event_count, site_count
        )
    except zlib.error as error:
        raise TraceFormatError(f"corrupt site-id stream: {error}") from None
    try:
        packed = zlib.decompress(dir_blob)
    except zlib.error as error:
        raise TraceFormatError(f"corrupt direction stream: {error}") from None
    try:
        trace.directions = PackedDirections.from_packed(packed, event_count)
    except ValueError:
        raise TraceFormatError(
            f"direction stream shorter than {event_count} events"
        ) from None
    return trace


def _parse_view(view) -> Trace:
    """Parse one whole in-memory buffer (bytes, mmap view, ...)."""
    total = len(view)
    if total < 4 or bytes(view[:4]) != MAGIC:
        raise TraceFormatError(f"bad magic {bytes(view[:4])!r}")
    if total < 4 + _HEADER_SIZE:
        raise TraceFormatError("truncated trace header")
    site_count, event_count, site_len, id_len, dir_len = struct.unpack(
        _HEADER, view[4 : 4 + _HEADER_SIZE]
    )
    offset = 4 + _HEADER_SIZE
    if total < offset + site_len + id_len + dir_len:
        raise TraceFormatError("truncated trace file")
    site_blob = view[offset : offset + site_len]
    offset += site_len
    id_blob = view[offset : offset + id_len]
    offset += id_len
    dir_blob = view[offset : offset + dir_len]
    return _build_trace(site_blob, id_blob, dir_blob, site_count, event_count)


def load_trace(source: Union[str, BinaryIO]) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Paths are memory-mapped and parsed through ``memoryview`` slices so
    the compressed payload is never copied before decompression; an
    unmappable file (empty, or a pseudo-file) falls back to a plain
    read.
    """
    if isinstance(source, str):
        with open(source, "rb") as stream:
            try:
                mapped = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                return _parse_view(memoryview(stream.read()))
            try:
                with memoryview(mapped) as view:
                    return _parse_view(view)
            finally:
                mapped.close()
    stream = source
    magic = stream.read(4)
    if magic != MAGIC:
        raise TraceFormatError(f"bad magic {magic!r}")
    header = stream.read(_HEADER_SIZE)
    if len(header) != _HEADER_SIZE:
        raise TraceFormatError("truncated trace header")
    site_count, event_count, site_len, id_len, dir_len = struct.unpack(
        _HEADER, header
    )
    site_blob = stream.read(site_len)
    id_blob = stream.read(id_len)
    dir_blob = stream.read(dir_len)
    if len(site_blob) != site_len or len(id_blob) != id_len or len(dir_blob) != dir_len:
        raise TraceFormatError("truncated trace file")
    return _build_trace(site_blob, id_blob, dir_blob, site_count, event_count)


def trace_to_bytes(trace: Trace) -> bytes:
    """Serialise *trace* into a bytes object."""
    buffer = io.BytesIO()
    save_trace(trace, buffer)
    return buffer.getvalue()


def trace_from_bytes(data: bytes) -> Trace:
    """Deserialise a trace from bytes."""
    return load_trace(io.BytesIO(data))
