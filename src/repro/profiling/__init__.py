"""Profiling: trace collection, trace files, pattern tables."""

from .collect import collect_path_tables, trace_program
from .online import OnlineProfiler, profile_program
from .patterns import PatternTable, ProfileData
from .profilefile import (
    ProfileFormatError,
    load_profile,
    profile_from_bytes,
    profile_to_bytes,
    save_profile,
)
from .trace import Trace
from .tracefile import (
    TraceFormatError,
    load_trace,
    save_trace,
    trace_from_bytes,
    trace_to_bytes,
)

__all__ = [
    "OnlineProfiler",
    "PatternTable",
    "ProfileFormatError",
    "collect_path_tables",
    "load_profile",
    "profile_from_bytes",
    "profile_program",
    "profile_to_bytes",
    "save_profile",
    "ProfileData",
    "Trace",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "trace_from_bytes",
    "trace_to_bytes",
    "trace_program",
]
