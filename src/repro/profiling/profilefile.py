"""Profile serialisation.

A profile (the pattern tables) is what the compiler actually consumes;
the trace is only its raw material.  This module stores profiles as
compressed JSON so a training run's output can be archived, diffed, and
fed to ``repro optimize`` on another machine — the tool-chain shape the
paper's "production version" implies.

Format: zlib-compressed UTF-8 JSON with a version marker.  Pattern keys
are serialised as decimal strings (JSON objects key on strings).
"""

from __future__ import annotations

import json
import zlib
from typing import BinaryIO, Dict, Union

from ..ir import BranchSite
from .patterns import PatternTable, ProfileData

MAGIC = b"KBP1"
VERSION = 1


class ProfileFormatError(Exception):
    """Raised when a profile file is malformed."""


def _table_to_json(table: PatternTable) -> Dict:
    return {
        "bits": table.bits,
        "counts": {str(k): v for k, v in table.counts.items()},
    }


def _table_from_json(blob: Dict) -> PatternTable:
    try:
        return PatternTable(
            blob["bits"],
            {int(k): list(v) for k, v in blob["counts"].items()},
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProfileFormatError(f"bad pattern table: {error}") from None


def profile_to_bytes(profile: ProfileData) -> bytes:
    """Serialise *profile* (including path tables when attached)."""
    document = {
        "version": VERSION,
        "local_bits": profile.local_bits,
        "global_bits": profile.global_bits,
        "events": profile.events,
        "sites": [
            {
                "function": site.function,
                "block": site.block,
                "totals": list(profile.totals[site]),
                "local": _table_to_json(profile.local[site]),
                "global": _table_to_json(profile.global_tables[site]),
                **(
                    {"path": _table_to_json(profile.path_tables[site])}
                    if profile.path_tables is not None
                    and site in profile.path_tables
                    else {}
                ),
            }
            for site in profile.totals
        ],
    }
    return MAGIC + zlib.compress(json.dumps(document).encode(), 6)


def profile_from_bytes(data: bytes) -> ProfileData:
    """Deserialise a profile written by :func:`profile_to_bytes`."""
    if data[:4] != MAGIC:
        raise ProfileFormatError(f"bad magic {data[:4]!r}")
    try:
        document = json.loads(zlib.decompress(data[4:]).decode())
    except (zlib.error, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProfileFormatError(f"corrupt profile payload: {error}") from None
    if document.get("version") != VERSION:
        raise ProfileFormatError(f"unsupported version {document.get('version')}")
    profile = ProfileData(document["local_bits"], document["global_bits"])
    profile.events = document["events"]
    path_tables: Dict[BranchSite, PatternTable] = {}
    for entry in document["sites"]:
        site = BranchSite(entry["function"], entry["block"])
        profile.totals[site] = tuple(entry["totals"])  # type: ignore[assignment]
        profile.local[site] = _table_from_json(entry["local"])
        profile.global_tables[site] = _table_from_json(entry["global"])
        if "path" in entry:
            path_tables[site] = _table_from_json(entry["path"])
    if path_tables:
        profile.attach_path_tables(path_tables)
    return profile


def save_profile(profile: ProfileData, destination: Union[str, BinaryIO]) -> None:
    if isinstance(destination, str):
        with open(destination, "wb") as stream:
            stream.write(profile_to_bytes(profile))
        return
    destination.write(profile_to_bytes(profile))


def load_profile(source: Union[str, BinaryIO]) -> ProfileData:
    if isinstance(source, str):
        with open(source, "rb") as stream:
            return profile_from_bytes(stream.read())
    return profile_from_bytes(source.read())
