"""Trace collection: run an instrumented program and record its branches.

This is the reproduction of the paper's tracing tool.  Where the paper
inserts trace code into the assembly source, we attach a callback to
the interpreter — the resulting event stream (branch number +
direction) is identical in content.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..interp import Machine, RunResult
from ..ir import BranchSite, Program
from .patterns import PatternTable
from .trace import Trace


def trace_program(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    max_steps: int = 100_000_000,
    max_branches: Optional[int] = None,
) -> Tuple[Trace, RunResult]:
    """Execute *program* and collect its branch trace.

    ``max_branches`` mirrors the paper's "we traced the whole program
    up to a maximum of 100 million branch instructions": tracing stops
    recording (but execution continues) after that many events.
    """
    trace = Trace()
    if max_branches is None:
        machine = Machine(program, input_values, max_steps, trace.record)
    else:
        limit = max_branches

        def record(site, taken, _trace=trace):
            if len(_trace) < limit:
                _trace.record(site, taken)

        machine = Machine(program, input_values, max_steps, record)
    result = machine.run(*args)
    return trace, result


def collect_path_tables(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    bits: int = 8,
    max_steps: int = 100_000_000,
) -> Dict[BranchSite, PatternTable]:
    """Per-branch pattern tables keyed by *frame-local path history*.

    The frame-local history (the outcomes of the last *bits*
    conditional branches executed in the same function activation) is
    exactly what CFG-path replication can encode into the program
    counter; raw global history additionally sees callee branches,
    which no intraprocedural transform can track.  The correlated-
    branch planner therefore trains on these tables.
    """
    tables: Dict[BranchSite, PatternTable] = {}

    def record(site: BranchSite, taken: bool) -> None:
        table = tables.get(site)
        if table is None:
            table = tables[site] = PatternTable(bits)
        table.add(machine.path_history, 1 if taken else 0)

    machine = Machine(
        program, input_values, max_steps, record, track_history_bits=bits
    )
    machine.run(*args)
    return tables
