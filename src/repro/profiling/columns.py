"""Columnar trace view: the evaluation engine's batch-kernel substrate.

A :class:`TraceColumns` is a read-only, per-trace-snapshot view of one
:class:`~repro.profiling.trace.Trace` exposing the event stream as
columns instead of per-event tuples:

* **site-id column** — the interned site-id stream, run-length
  partitioned (``run_sites``/``run_starts``/``run_lengths``): the trace
  is a sequence of maximal runs of equal site id, so a per-site kernel
  processes contiguous slices of the direction column instead of
  filtering event by event;
* **direction column** — the 0/1 outcomes, unpacked on demand from the
  trace's bit-packed storage (``numpy.unpackbits`` when numpy is
  importable, a pure-Python table expansion otherwise);
* **site grouping (CSR)** — a stable permutation of events grouped by
  site id plus per-site offsets, giving every kernel each site's full
  direction sequence, in trace order, as one contiguous slice;
* **shared bookkeeping** — per-site execution/taken counts and the
  first-occurrence site order, computed once per view and shared by
  every predictor result and the closed-form fast path.

numpy is strictly optional: :func:`get_numpy` returns ``None`` when it
is not importable or when ``REPRO_NO_NUMPY`` is set (the CI fallback
leg), and every accessor then serves plain ``array``/``bytes`` objects.
Kernels must produce identical results either way; only the speed
differs.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

_numpy_module = None
_numpy_checked = False


def get_numpy():
    """The ``numpy`` module, or ``None`` when unavailable or disabled.

    Set ``REPRO_NO_NUMPY`` (to any non-empty value) to force the
    pure-Python fallback path — the environment guard the CI fallback
    leg and the parity tests use.  The import result is cached; the
    environment variable is consulted live.
    """
    global _numpy_module, _numpy_checked
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy

            _numpy_module = numpy
        except ImportError:
            _numpy_module = None
    return _numpy_module


#: 256-entry table: packed byte -> its eight LSB-first bits, used by the
#: pure-Python unpack path (one dict-free lookup per 8 events).
_BYTE_BITS = [bytes((byte >> bit) & 1 for bit in range(8)) for byte in range(256)]


def unpack_bits(packed: bytes, count: int) -> bytearray:
    """Expand *count* LSB-first packed bits into one byte per bit."""
    if count == 0:
        return bytearray()
    out = bytearray().join(_BYTE_BITS[byte] for byte in packed[: (count + 7) // 8])
    del out[count:]
    return out


class TraceColumns:
    """Columnar snapshot of one trace (see the module docstring).

    Instances are built by :meth:`Trace.columns` and cached per event
    count; they must be treated as immutable.  ``np`` is the numpy
    module when the vectorized path is active, ``None`` on the
    pure-Python fallback — kernels branch on it once per call.
    """

    def __init__(self, sites, site_ids: array, packed_directions: bytes) -> None:
        self.np = get_numpy()
        self.sites = sites
        self.n_sites = len(sites)
        self.n_events = len(site_ids)
        np = self.np
        if np is not None:
            # Zero-copy views: the array's buffer and the packed blob
            # are wrapped, not copied; only the bit expansion allocates.
            self.site_ids = np.frombuffer(site_ids, dtype=np.intc) if len(
                site_ids
            ) else np.zeros(0, dtype=np.intc)
            self.directions = np.unpackbits(
                np.frombuffer(packed_directions, dtype=np.uint8),
                count=self.n_events,
                bitorder="little",
            )
        else:
            self.site_ids = site_ids
            self.directions = bytes(unpack_bits(packed_directions, self.n_events))
        self._runs: Optional[Tuple[list, list, list]] = None
        self._indices = None
        self._grouped = None
        self._grouped_starts = None
        self._kernel_cache: Dict[tuple, object] = {}
        self._site_slices: Optional[List[List[Tuple[int, int]]]] = None
        self._site_dirs: Dict[int, Sequence[int]] = {}
        self._executions: Optional[Dict[int, int]] = None
        self._taken: Optional[List[int]] = None

    def cached(self, key: tuple, build):
        """Memoize a derived column under *key* for this snapshot.

        Kernels share outcome-derived columns (history packs, run
        boundaries, scoped groupings) across predictor instances: the
        values depend only on the trace contents and the key's
        parameters, never on predictor state, so one snapshot computes
        each at most once.
        """
        try:
            return self._kernel_cache[key]
        except KeyError:
            value = build()
            self._kernel_cache[key] = value
            return value

    def event_indices(self):
        """Cached ``arange(n_events)`` (numpy path only) — shared by the
        kernels so hot calls skip the allocation."""
        if self._indices is None:
            self._indices = self.np.arange(self.n_events, dtype=self.np.int64)
        return self._indices

    # -- run partition ---------------------------------------------------------

    def runs(self) -> Tuple[Sequence[int], Sequence[int], Sequence[int]]:
        """``(run_sites, run_starts, run_lengths)`` — the maximal runs of
        equal site id, in trace order."""
        if self._runs is None:
            np = self.np
            n = self.n_events
            if n == 0:
                empty: list = []
                self._runs = (empty, [], [])
            elif np is not None:
                ids = self.site_ids
                change = np.empty(n, dtype=bool)
                change[0] = True
                np.not_equal(ids[1:], ids[:-1], out=change[1:])
                starts = np.flatnonzero(change)
                lengths = np.diff(starts, append=n)
                self._runs = (ids[starts], starts, lengths)
            else:
                run_sites: List[int] = []
                run_starts: List[int] = []
                run_lengths: List[int] = []
                previous = -1
                for index, sid in enumerate(self.site_ids):
                    if sid != previous:
                        run_sites.append(sid)
                        run_starts.append(index)
                        run_lengths.append(1)
                        previous = sid
                    else:
                        run_lengths[-1] += 1
                self._runs = (run_sites, run_starts, run_lengths)
        return self._runs

    def site_run_slices(self) -> List[List[Tuple[int, int]]]:
        """Per site id, its ``(start, stop)`` run slices in trace order."""
        if self._site_slices is None:
            slices: List[List[Tuple[int, int]]] = [[] for _ in range(self.n_sites)]
            run_sites, run_starts, run_lengths = self.runs()
            for sid, start, length in zip(run_sites, run_starts, run_lengths):
                slices[sid].append((int(start), int(start) + int(length)))
            self._site_slices = slices
        return self._site_slices

    # -- site grouping (CSR) ---------------------------------------------------

    def grouped(self):
        """``(sorted_ids, grouped_dirs, new_site)`` — events stably
        sorted by site id (numpy path only).

        ``new_site[i]`` is True where ``sorted_ids[i]`` starts a new
        site's segment; each segment is that site's direction sequence
        in original trace order.
        """
        if self._grouped is None:
            np = self.np
            if np is None:
                raise RuntimeError("grouped() is numpy-path only")
            perm = np.argsort(self.site_ids, kind="stable")
            sorted_ids = self.site_ids[perm]
            grouped_dirs = self.directions[perm]
            new_site = np.empty(self.n_events, dtype=bool)
            if self.n_events:
                new_site[0] = True
                np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=new_site[1:])
            self._grouped = (sorted_ids, grouped_dirs, new_site)
        return self._grouped

    def grouped_starts(self):
        """Per grouped event, the index where its site's segment starts
        (cached companion of :meth:`grouped` for history kernels)."""
        if self._grouped_starts is None:
            np = self.np
            _, _, new_site = self.grouped()
            starts = np.zeros(self.n_events, dtype=np.int64)
            if self.n_events:
                indices = self.event_indices()
                starts[new_site] = indices[new_site]
                np.maximum.accumulate(starts, out=starts)
            self._grouped_starts = starts
        return self._grouped_starts

    def site_directions(self, sid: int) -> Sequence[int]:
        """Site *sid*'s direction sequence, in trace order.

        numpy path: a contiguous slice of the grouped direction column;
        fallback: the site's run slices of the direction bytes, joined.
        """
        cached = self._site_dirs.get(sid)
        if cached is None:
            if self.np is not None:
                sorted_ids, grouped_dirs, _ = self.grouped()
                start, stop = self.np.searchsorted(sorted_ids, [sid, sid + 1])
                cached = grouped_dirs[start:stop]
            else:
                dirs = self.directions
                cached = b"".join(
                    dirs[start:stop] for start, stop in self.site_run_slices()[sid]
                )
            self._site_dirs[sid] = cached
        return cached

    # -- shared bookkeeping ----------------------------------------------------

    def site_executions(self) -> Dict[int, int]:
        """``sid -> execution count`` for executed sites, in
        first-occurrence order (the per-site result ordering the
        sequential reference produces)."""
        if self._executions is None:
            executions: Dict[int, int] = {}
            run_sites, _, run_lengths = self.runs()
            for sid, length in zip(run_sites, run_lengths):
                sid = int(sid)
                executions[sid] = executions.get(sid, 0) + int(length)
            self._executions = executions
        return self._executions

    def site_taken(self) -> List[int]:
        """Per site id, how many of its events were taken."""
        if self._taken is None:
            np = self.np
            if np is not None:
                self._taken = [
                    int(value)
                    for value in np.bincount(
                        self.site_ids, weights=self.directions, minlength=self.n_sites
                    )
                ]
            else:
                taken = [0] * self.n_sites
                dirs = self.directions
                run_sites, run_starts, run_lengths = self.runs()
                for sid, start, length in zip(run_sites, run_starts, run_lengths):
                    taken[sid] += dirs.count(1, start, start + length)
                self._taken = taken
        return self._taken
