"""Pattern tables: per-branch history statistics (Section 3).

For every branch we record, per *history pattern*, how often the branch
was then taken and not taken.  Two history kinds exist:

* **local** (the paper's *loop branch strategy*): the pattern is the
  last *k* outcomes of the same branch;
* **global** (the *correlated branch strategy*): the pattern is the
  last *k* outcomes of all branches.

Patterns are integers; **bit 0 (LSB) is the most recent outcome**, so
the length-*m* suffix of a history is simply its low *m* bits — the
operation the state-machine search performs constantly.

Unlike a hardware predictor "we are not restricted by the size of the
history tables", so tables are unbounded dicts and there is one pattern
table per branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..ir import BranchSite
from .trace import Trace


@dataclass
class PatternTable:
    """Taken/not-taken counts per history pattern, at one history depth.

    ``counts[pattern] == [not_taken, taken]``.
    """

    bits: int
    counts: Dict[int, List[int]] = field(default_factory=dict)

    def add(self, pattern: int, taken: int) -> None:
        entry = self.counts.get(pattern)
        if entry is None:
            entry = [0, 0]
            self.counts[pattern] = entry
        entry[taken] += 1

    def total(self) -> Tuple[int, int]:
        """Aggregate (not_taken, taken) over all patterns."""
        not_taken = taken = 0
        for entry in self.counts.values():
            not_taken += entry[0]
            taken += entry[1]
        return not_taken, taken

    def executions(self) -> int:
        not_taken, taken = self.total()
        return not_taken + taken

    def correct_if_per_pattern(self) -> int:
        """Correct predictions if each pattern predicts its majority
        direction — the upper bound the state machines approximate."""
        return sum(max(entry) for entry in self.counts.values())

    def correct_if_single(self) -> int:
        """Correct predictions under a single per-branch direction
        (the plain *profile* strategy)."""
        return max(self.total())

    def marginalize(self, bits: int) -> "PatternTable":
        """Collapse to a shorter history depth by summing over patterns
        with equal low *bits* bits ("this information is used to compute
        the number of taken and not taken branches for all shorter
        patterns")."""
        if bits > self.bits:
            raise ValueError(f"cannot widen table from {self.bits} to {bits} bits")
        if bits == self.bits:
            return PatternTable(bits, {p: list(c) for p, c in self.counts.items()})
        mask = (1 << bits) - 1
        out: Dict[int, List[int]] = {}
        for pattern, entry in self.counts.items():
            short = pattern & mask
            acc = out.get(short)
            if acc is None:
                out[short] = [entry[0], entry[1]]
            else:
                acc[0] += entry[0]
                acc[1] += entry[1]
        return PatternTable(bits, out)

    def fill(self) -> Tuple[int, int]:
        """(used entries, capacity 2**bits)."""
        return len(self.counts), 1 << self.bits


class ProfileData:
    """All pattern tables extracted from one training trace.

    Attributes
    ----------
    local:
        Per-site local-history table at depth ``local_bits``.
    global_tables:
        Per-site global-history table at depth ``global_bits``.
    totals:
        Per-site (not_taken, taken) — the classic profile counts.
    events:
        Number of trace events consumed.
    """

    def __init__(self, local_bits: int = 9, global_bits: int = 8) -> None:
        if not (1 <= local_bits <= 24) or not (1 <= global_bits <= 24):
            raise ValueError("history depths must be in 1..24")
        self.local_bits = local_bits
        self.global_bits = global_bits
        self.local: Dict[BranchSite, PatternTable] = {}
        self.global_tables: Dict[BranchSite, PatternTable] = {}
        self.totals: Dict[BranchSite, Tuple[int, int]] = {}
        self.events = 0
        #: per-branch tables keyed by frame-local path history (see
        #: :func:`repro.profiling.collect.collect_path_tables`); these
        #: cannot be derived from the flat trace, so they are attached
        #: from a separate instrumented run when available.
        self.path_tables: Optional[Dict[BranchSite, PatternTable]] = None

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        local_bits: int = 9,
        global_bits: int = 8,
    ) -> "ProfileData":
        """Single pass over *trace* building every table.

        Histories start as all-zero (the convention hardware shift
        registers use), so early events are charged to the zero
        patterns rather than discarded.
        """
        data = cls(local_bits, global_bits)
        site_count = len(trace.sites)
        local_hist = [0] * site_count
        local_counts: List[Dict[int, List[int]]] = [dict() for _ in range(site_count)]
        global_counts: List[Dict[int, List[int]]] = [dict() for _ in range(site_count)]
        totals = [[0, 0] for _ in range(site_count)]
        local_mask = (1 << local_bits) - 1
        global_mask = (1 << global_bits) - 1
        ghist = 0
        for sid, taken in trace.events():
            lhist = local_hist[sid]
            entry = local_counts[sid].get(lhist)
            if entry is None:
                local_counts[sid][lhist] = entry = [0, 0]
            entry[taken] += 1
            entry = global_counts[sid].get(ghist)
            if entry is None:
                global_counts[sid][ghist] = entry = [0, 0]
            entry[taken] += 1
            totals[sid][taken] += 1
            local_hist[sid] = ((lhist << 1) | taken) & local_mask
            ghist = ((ghist << 1) | taken) & global_mask
            data.events += 1
        for index, site in enumerate(trace.sites):
            if totals[index][0] or totals[index][1]:
                data.local[site] = PatternTable(local_bits, local_counts[index])
                data.global_tables[site] = PatternTable(
                    global_bits, global_counts[index]
                )
                data.totals[site] = (totals[index][0], totals[index][1])
        return data

    def attach_path_tables(
        self, tables: Dict[BranchSite, PatternTable]
    ) -> None:
        """Attach frame-local path-history tables from an extra run."""
        self.path_tables = tables

    def correlation_table(self, site: BranchSite) -> Optional[PatternTable]:
        """The table the correlated-branch planner should train on:
        path-history when attached, else raw global history."""
        if self.path_tables is not None and site in self.path_tables:
            return self.path_tables[site]
        return self.global_tables.get(site)

    # -- queries ---------------------------------------------------------------

    def executed_sites(self) -> List[BranchSite]:
        return list(self.totals)

    def executions(self, site: BranchSite) -> int:
        not_taken, taken = self.totals.get(site, (0, 0))
        return not_taken + taken

    def bias(self, site: BranchSite) -> Optional[bool]:
        """Majority direction of *site* (None if never executed).

        Ties predict taken, matching the evaluation engine.
        """
        counts = self.totals.get(site)
        if counts is None:
            return None
        return counts[1] >= counts[0]

    def fill_rate(self, bits: int, sites: Optional[Iterable[BranchSite]] = None) -> float:
        """Table 2's metric: fraction of the 2**bits local pattern-table
        entries of the chosen branches that are actually used.

        *sites* may include branches that never executed (e.g. a caller
        passing ``program.branch_sites()``); those have no table and
        count as zero used entries.
        """
        chosen = list(sites) if sites is not None else list(self.local)
        if not chosen:
            return 0.0
        used = 0
        for site in chosen:
            table = self.local.get(site)
            if table is not None:
                used += len(table.marginalize(bits).counts)
        return used / (len(chosen) * (1 << bits))
