"""Streaming (online) profiling.

"A production version of the profiling tool will include the first part
of the analysis tool which transforms the trace data into the pattern
table.  This enables profiling with an unlimited number of branches."
(Section 3.)

:class:`OnlineProfiler` is that production version: it folds branch
events straight into the pattern tables as the program runs, so memory
is bounded by the number of *distinct* (branch, pattern) pairs — the
Table 2 fill rates show how small that is — instead of growing with
trace length.  The result is bit-for-bit identical to
``ProfileData.from_trace`` over the same events (property-tested).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..interp import Machine, RunResult
from ..ir import BranchSite, Program
from .patterns import PatternTable, ProfileData


class OnlineProfiler:
    """Builds :class:`ProfileData` one event at a time."""

    def __init__(self, local_bits: int = 9, global_bits: int = 8) -> None:
        self.data = ProfileData(local_bits, global_bits)
        self._local_hist: Dict[BranchSite, int] = {}
        self._local_mask = (1 << local_bits) - 1
        self._global_mask = (1 << global_bits) - 1
        self._ghist = 0
        self._totals: Dict[BranchSite, List[int]] = {}

    def record(self, site: BranchSite, taken: bool) -> None:
        """Fold one branch event into the tables."""
        bit = 1 if taken else 0
        data = self.data
        local = data.local.get(site)
        if local is None:
            local = data.local[site] = PatternTable(data.local_bits)
            data.global_tables[site] = PatternTable(data.global_bits)
            self._totals[site] = [0, 0]
            self._local_hist[site] = 0
        history = self._local_hist[site]
        local.add(history, bit)
        data.global_tables[site].add(self._ghist, bit)
        self._totals[site][bit] += 1
        self._local_hist[site] = ((history << 1) | bit) & self._local_mask
        self._ghist = ((self._ghist << 1) | bit) & self._global_mask
        data.events += 1

    def finish(self) -> ProfileData:
        """Finalise and return the profile."""
        self.data.totals = {
            site: (counts[0], counts[1]) for site, counts in self._totals.items()
        }
        return self.data


def profile_program(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    local_bits: int = 9,
    global_bits: int = 8,
    max_steps: int = 100_000_000,
) -> Tuple[ProfileData, RunResult]:
    """One-pass profiling: run the program, return the profile.

    Unlike ``trace_program`` + ``ProfileData.from_trace`` this never
    materialises the trace, so arbitrarily long runs profile in
    constant memory.
    """
    profiler = OnlineProfiler(local_bits, global_bits)
    machine = Machine(program, input_values, max_steps, profiler.record)
    result = machine.run(*args)
    return profiler.finish(), result
