"""``python -m repro.service`` runs the daemon (same as ``repro serve``)."""

import sys

from ..tools import main

sys.exit(main(["serve", *sys.argv[1:]]))
