"""Load generator: ``python -m repro.service.loadgen``.

Spawns N client threads, each with its own keep-alive connection,
firing a weighted mix of endpoint calls for a fixed duration::

    python -m repro.service.loadgen --clients 8 --duration 5 \
        --mix artifacts=6,healthz=2,stats=1,benchmarks=1

The report covers client-side truth — req/s, p50/p95/p99 latency,
status and per-endpoint counts, transport errors — plus the server's
own view: coalesce/cache counters read from ``/stats`` before and
after the run, and server-side latency quantiles computed from the
``/metrics`` histogram delta over the same window (client-observed
latency includes the network and client scheduling; the server's
histogram is what the daemon itself experienced — comparing the two
localises where time went).  ``--spawn`` boots a throwaway in-process
server on an ephemeral port first, which makes the module a
self-contained smoke test; ``--spawn --workers N`` boots the
supervised pre-fork fleet as a subprocess instead and the report gains
a per-worker breakdown (the server-side totals and quantiles are
already fleet-exact — the fleet merges them before answering).

Every request carries an ``X-Request-Id`` (generated per request by
:class:`~repro.service.client.ServiceClient`), so any slow outlier in
the report can be chased through the server's ``--log-json`` access
log and ``--trace-out`` trace.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import quantile_from_counts
from ..obs.promtext import (
    delta_bucket_counts,
    histogram_bucket_counts,
    parse_exposition,
)
from .client import ServiceClient, ServiceError

#: /metrics family the server-side latency quantiles are read from.
LATENCY_FAMILY = "repro_service_latency_seconds"

DEFAULT_MIX = "artifacts=6,healthz=2,stats=1,benchmarks=1"

#: endpoint name -> request builder ``(client, benchmark, scale, seed) -> (status, body)``
ENDPOINTS: Dict[str, Callable[[ServiceClient, str, int, int], Tuple[int, dict]]] = {
    "healthz": lambda c, n, s, o: c.request_raw("GET", "/healthz"),
    "benchmarks": lambda c, n, s, o: c.request_raw("GET", "/benchmarks"),
    "stats": lambda c, n, s, o: c.request_raw("GET", "/stats"),
    "artifacts": lambda c, n, s, o: c.request_raw(
        "POST", "/artifacts", {"name": n, "scale": s, "seed_offset": o}
    ),
    "predict": lambda c, n, s, o: c.request_raw(
        "POST",
        "/predict",
        {"name": n, "scale": s, "seed_offset": o, "predictor": "profile"},
    ),
    "machine": lambda c, n, s, o: c.request_raw(
        "POST", "/machine", {"name": n, "scale": s, "seed_offset": o}
    ),
    "plan": lambda c, n, s, o: c.request_raw(
        "POST", "/plan", {"name": n, "scale": s, "seed_offset": o}
    ),
}


def parse_mix(spec: str) -> List[Tuple[str, int]]:
    """``"artifacts=6,healthz=2"`` → ``[("artifacts", 6), ("healthz", 2)]``."""
    mix: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition("=")
        name = name.strip()
        if name not in ENDPOINTS:
            raise ValueError(
                f"unknown endpoint {name!r} in mix; "
                f"known: {', '.join(sorted(ENDPOINTS))}"
            )
        try:
            weight = int(weight_text) if weight_text else 1
        except ValueError:
            raise ValueError(f"bad weight in mix entry {part!r}") from None
        if weight < 0:
            raise ValueError(f"negative weight in mix entry {part!r}")
        if weight:
            mix.append((name, weight))
    if not mix:
        raise ValueError(f"mix {spec!r} selects no endpoints")
    return mix


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return sorted_values[rank]


#: Slowest requests reported with their trace ids (and, when the
#: fleet's flight recorders retained them, their stitched span trees).
TOP_SLOWEST = 5


@dataclass
class _WorkerResult:
    latencies: List[float] = field(default_factory=list)
    statuses: Dict[int, int] = field(default_factory=dict)
    endpoints: Dict[str, int] = field(default_factory=dict)
    transport_errors: int = 0
    #: (latency seconds, endpoint, trace id) for this worker's slowest
    #: requests — bounded, re-trimmed as it grows
    slowest: List[Tuple[float, str, str]] = field(default_factory=list)

    def note_slow(self, latency: float, endpoint: str, trace_id: Optional[str]) -> None:
        if not trace_id:
            return
        self.slowest.append((latency, endpoint, trace_id))
        if len(self.slowest) > 4 * TOP_SLOWEST:
            self.slowest.sort(reverse=True)
            del self.slowest[TOP_SLOWEST:]


def _worker(
    host: str,
    port: int,
    duration: float,
    mix: List[Tuple[str, int]],
    benchmark: str,
    scale: int,
    seed_offset: int,
    seed_jitter: int,
    rng: random.Random,
    barrier: threading.Barrier,
    result: _WorkerResult,
) -> None:
    names = [name for name, _ in mix]
    weights = [weight for _, weight in mix]
    with ServiceClient(host, port, timeout=30.0) as client:
        try:
            barrier.wait(timeout=10.0)
        except threading.BrokenBarrierError:
            return
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            endpoint = rng.choices(names, weights)[0]
            offset = seed_offset + (rng.randint(0, seed_jitter) if seed_jitter else 0)
            started = time.perf_counter()
            try:
                status, _ = ENDPOINTS[endpoint](client, benchmark, scale, offset)
            except OSError:
                result.transport_errors += 1
                client.close()
                continue
            latency = time.perf_counter() - started
            result.latencies.append(latency)
            result.statuses[status] = result.statuses.get(status, 0) + 1
            result.endpoints[endpoint] = result.endpoints.get(endpoint, 0) + 1
            result.note_slow(latency, endpoint, client.last_trace_id)


def _server_counters(host: str, port: int) -> Dict[str, float]:
    try:
        with ServiceClient(host, port, timeout=5.0) as client:
            return dict(client.stats().get("counters", {}))
    except (ServiceError, OSError):
        return {}


def _fleet_view(host: str, port: int) -> Optional[dict]:
    """One ``GET /fleet`` roster scrape, or None if unavailable."""
    try:
        with ServiceClient(host, port, timeout=5.0) as client:
            return client.request("GET", "/fleet")
    except (ServiceError, OSError):
        return None


def _server_latency_buckets(host: str, port: int) -> Dict[float, float]:
    """Non-cumulative latency bucket counts from one ``/metrics`` scrape."""
    try:
        with ServiceClient(host, port, timeout=5.0) as client:
            parsed = parse_exposition(client.metrics())
    except (ServiceError, OSError, ValueError):
        return {}
    return histogram_bucket_counts(parsed, LATENCY_FAMILY)


def server_quantiles_ms(
    before: Dict[float, float], after: Dict[float, float]
) -> Dict[str, float]:
    """Server-side latency quantiles (ms) over the scrape interval.

    The delta of two non-cumulative bucket-count scrapes is itself a
    histogram of exactly the requests that completed in between; its
    quantiles carry the same ~5% relative-error bound as the server's
    own (see :mod:`repro.obs.hist`).
    """
    delta = delta_bucket_counts(before, after)
    samples = sum(count for _, count in delta)
    return {
        "samples": int(samples),
        "p50_ms": round(quantile_from_counts(delta, 0.50) * 1e3, 3),
        "p95_ms": round(quantile_from_counts(delta, 0.95) * 1e3, 3),
        "p99_ms": round(quantile_from_counts(delta, 0.99) * 1e3, 3),
    }


def _slowest_traces(
    host: str, port: int, results: List[_WorkerResult]
) -> List[dict]:
    """The run's :data:`TOP_SLOWEST` slowest traced requests, each
    resolved against ``GET /trace/{id}`` for its stitched span tree.

    A trace the flight recorders dropped (tail-sampling) or already
    evicted reports ``retained: false`` — the id is still printed, it
    just has no tree to show.
    """
    candidates = sorted(
        (entry for result in results for entry in result.slowest), reverse=True
    )[:TOP_SLOWEST]
    if not candidates:
        return []
    entries = []
    with ServiceClient(host, port, timeout=10.0) as client:
        for latency, endpoint, trace_id in candidates:
            entry = {
                "latency_ms": round(latency * 1e3, 3),
                "endpoint": endpoint,
                "trace_id": trace_id,
                "retained": False,
            }
            try:
                doc = client.request("GET", f"/trace/{trace_id}")
            except (ServiceError, OSError):
                doc = None
            if doc is not None:
                entry["retained"] = True
                entry["workers"] = doc.get("workers", [])
                entry["tree"] = doc.get("tree", [])
            entries.append(entry)
    return entries


def run_load(
    host: str,
    port: int,
    clients: int = 4,
    duration: float = 5.0,
    mix: str = DEFAULT_MIX,
    benchmark: str = "compress",
    scale: int = 1,
    seed_offset: int = 0,
    seed: int = 0,
    seed_jitter: int = 0,
) -> dict:
    """Drive the service and return the aggregated report dict.

    *seed_jitter* > 0 spreads each request's ``seed_offset`` uniformly
    over ``[seed_offset, seed_offset + seed_jitter]`` — mostly-cold keys
    that force real computation, for workloads meant to measure compute
    latency rather than cache hits.
    """
    parsed_mix = parse_mix(mix)
    before = _server_counters(host, port)
    buckets_before = _server_latency_buckets(host, port)
    # Workers block on a barrier (shared with this thread) until every
    # client thread is up, then each runs for *duration* — so the
    # measured window contains no thread-spawn skew.
    barrier = threading.Barrier(clients + 1)
    results = [_WorkerResult() for _ in range(clients)]
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                host,
                port,
                duration,
                parsed_mix,
                benchmark,
                scale,
                seed_offset,
                seed_jitter,
                random.Random(seed * 1000 + index),
                barrier,
                results[index],
            ),
            name=f"loadgen-{index}",
            daemon=True,
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=10.0)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=duration + 30)
    elapsed = time.perf_counter() - started
    after = _server_counters(host, port)
    buckets_after = _server_latency_buckets(host, port)
    fleet_doc = _fleet_view(host, port)

    latencies = sorted(
        latency for result in results for latency in result.latencies
    )
    statuses: Dict[int, int] = {}
    endpoints: Dict[str, int] = {}
    transport_errors = 0
    for result in results:
        transport_errors += result.transport_errors
        for status, count in result.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
        for endpoint, count in result.endpoints.items():
            endpoints[endpoint] = endpoints.get(endpoint, 0) + count
    requests = len(latencies)
    five_xx = sum(count for status, count in statuses.items() if status >= 500)

    def delta(counter: str) -> float:
        return after.get(counter, 0) - before.get(counter, 0)

    coalesce_hits = delta("service.coalesce.hits")
    server_requests = delta("service.requests")
    report = {
        "host": host,
        "port": port,
        "clients": clients,
        "duration_seconds": round(elapsed, 3),
        "mix": mix,
        "benchmark": benchmark,
        "scale": scale,
        "seed_offset": seed_offset,
        "requests": requests,
        "req_per_s": round(requests / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "p95_ms": round(percentile(latencies, 0.95) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "max_ms": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
        "statuses": {str(status): count for status, count in sorted(statuses.items())},
        "endpoints": dict(sorted(endpoints.items())),
        "five_xx": five_xx,
        "transport_errors": transport_errors,
        "server": {
            "requests": server_requests,
            "coalesce_hits": coalesce_hits,
            "coalesce_hit_rate": round(coalesce_hits / server_requests, 6)
            if server_requests
            else 0.0,
            "overload_rejections": delta("service.rejected.overload"),
            "latency": server_quantiles_ms(buckets_before, buckets_after),
        },
    }
    report["slowest"] = _slowest_traces(host, port, results)
    if fleet_doc is not None and fleet_doc.get("workers", 1) > 1:
        # Against a fleet, /stats and /metrics already answer with the
        # exact cross-worker merge, so every "server" figure above is
        # fleet-wide; this block adds the per-worker breakdown.
        report["fleet"] = {
            "workers": fleet_doc.get("workers"),
            "alive": fleet_doc.get("alive"),
            "unreachable": fleet_doc.get("unreachable", []),
            "proxied": delta("service.shard.proxied"),
            "fallback_local": delta("service.shard.fallback_local"),
            "per_worker": fleet_doc.get("fleet", []),
        }
    return report


def format_report(report: dict) -> str:
    lines = [
        f"loadgen: {report['requests']} requests in "
        f"{report['duration_seconds']}s from {report['clients']} client(s) "
        f"→ {report['req_per_s']} req/s",
        f"latency: p50 {report['p50_ms']}ms, p95 {report['p95_ms']}ms, "
        f"p99 {report['p99_ms']}ms, max {report['max_ms']}ms",
        "statuses: "
        + (
            ", ".join(f"{s}×{c}" for s, c in report["statuses"].items())
            or "(none)"
        )
        + f"; transport errors: {report['transport_errors']}",
        "endpoints: "
        + (
            ", ".join(f"{e}×{c}" for e, c in report["endpoints"].items())
            or "(none)"
        ),
        f"server: {report['server']['requests']:.0f} requests, "
        f"{report['server']['coalesce_hits']:.0f} coalesce hit(s) "
        f"(rate {report['server']['coalesce_hit_rate']}), "
        f"{report['server']['overload_rejections']:.0f} overload rejection(s)",
    ]
    server_latency = report["server"].get("latency", {})
    if server_latency.get("samples"):
        lines.append(
            f"server latency (/metrics delta, {server_latency['samples']} "
            f"sample(s)): p50 {server_latency['p50_ms']}ms, "
            f"p95 {server_latency['p95_ms']}ms, p99 {server_latency['p99_ms']}ms"
        )
    fleet = report.get("fleet")
    if fleet:
        per_worker = ", ".join(
            f"shard {entry.get('shard')} (pid {entry.get('pid')}): "
            f"{entry.get('requests', 0)} req"
            for entry in fleet.get("per_worker", [])
        )
        lines.append(
            f"fleet: {fleet['alive']}/{fleet['workers']} worker(s) alive, "
            f"{fleet['proxied']:.0f} proxied, "
            f"{fleet['fallback_local']:.0f} local fallback(s); {per_worker}"
        )
    slowest = report.get("slowest", [])
    if slowest:
        lines.append(f"slowest {len(slowest)} traced request(s):")
        for entry in slowest:
            suffix = (
                f" workers={entry.get('workers')}"
                if entry["retained"]
                else " (not retained by the flight recorder)"
            )
            lines.append(
                f"  {entry['latency_ms']}ms {entry['endpoint']} "
                f"trace={entry['trace_id']}{suffix}"
            )
            for tree_line in entry.get("tree", []):
                lines.append(f"    {tree_line}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Generate load against a running prediction service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--clients", type=int, default=4, help="worker threads")
    parser.add_argument(
        "--duration", type=float, default=5.0, help="seconds of sustained load"
    )
    parser.add_argument(
        "--mix",
        default=DEFAULT_MIX,
        help="comma-separated endpoint=weight pairs "
        f"(endpoints: {', '.join(sorted(ENDPOINTS))})",
    )
    parser.add_argument("--benchmark", default="compress")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed-offset", type=int, default=0)
    parser.add_argument(
        "--seed-jitter",
        type=int,
        default=0,
        help="spread per-request seed_offset over [seed-offset, "
        "seed-offset + N] (cold keys: measures compute, not cache)",
    )
    parser.add_argument(
        "--warmup-keys",
        type=int,
        default=0,
        help="pre-warm N predict keys (one predict_many batch over "
        "[seed-offset, seed-offset + N)) before the measured window",
    )
    parser.add_argument("--seed", type=int, default=0, help="mix-selection RNG seed")
    parser.add_argument("--json", metavar="FILE", help="also write the report as JSON")
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="boot a throwaway server on an ephemeral port first "
        "(in-process, or a subprocess fleet with --workers > 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="with --spawn: worker processes for the throwaway server "
        "(> 1 spawns the supervised fleet and reports per-worker load)",
    )
    options = parser.parse_args(argv)
    if options.clients < 1:
        parser.error("--clients must be >= 1")
    if options.duration <= 0:
        parser.error("--duration must be > 0")
    try:
        parse_mix(options.mix)
    except ValueError as error:
        parser.error(str(error))

    server = None
    fleet_handle = None
    host, port = options.host, options.port
    if options.spawn and options.workers > 1:
        # A fleet is processes, not threads — always a subprocess (the
        # supervisor must fork from a single-threaded parent, and this
        # process is about to run N client threads).
        from .supervisor import spawn_fleet

        fleet_handle = spawn_fleet(workers=options.workers, threads=4)
        host, port = fleet_handle.host, fleet_handle.port
        print(
            f"spawned fleet of {options.workers} worker(s) on port {port} "
            f"(pids {fleet_handle.pids})",
            file=sys.stderr,
        )
    elif options.spawn:
        from .server import ServiceConfig, start_background

        server, _ = start_background(ServiceConfig(host="127.0.0.1", port=0))
        host, port = "127.0.0.1", server.port
        print(f"spawned in-process server on port {port}", file=sys.stderr)
    try:
        if options.warmup_keys > 0:
            # One keep-alive batch outside the measured window, so the
            # run measures warm-cache latency instead of first-compute.
            keys = [
                {
                    "name": options.benchmark,
                    "predictor": "profile",
                    "scale": options.scale,
                    "seed_offset": options.seed_offset + index,
                }
                for index in range(options.warmup_keys)
            ]
            with ServiceClient(host, port, timeout=120.0) as warm_client:
                warmed = warm_client.predict_many(keys)
            print(f"warmed {len(warmed)} predict key(s)", file=sys.stderr)
        report = run_load(
            host,
            port,
            clients=options.clients,
            duration=options.duration,
            mix=options.mix,
            benchmark=options.benchmark,
            scale=options.scale,
            seed_offset=options.seed_offset,
            seed=options.seed,
            seed_jitter=options.seed_jitter,
        )
    finally:
        if server is not None:
            from .server import shutdown_gracefully

            shutdown_gracefully(server)
        if fleet_handle is not None:
            fleet_handle.stop()
    print(format_report(report))
    if options.json:
        with open(options.json, "w") as stream:
            json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"report written to {options.json}", file=sys.stderr)
    return 0 if report["requests"] and not report["five_xx"] else 1


if __name__ == "__main__":
    sys.exit(main())
