"""The fleet control plane: one unix control socket per worker.

Every fleet worker runs a tiny :class:`ControlServer` next to its HTTP
listener — a ``ThreadingUnixStreamServer`` speaking one JSON object per
line, one request per connection.  The sockets live in the
supervisor-owned ``control_dir`` (``worker-<shard>.sock``), so any
worker (and the supervisor) can reach any specific peer even though
the shared HTTP listening socket load-balances connections across the
whole fleet.

Operations:

``ping``
    Liveness + per-worker vitals: pid, shard, uptime, in-flight
    requests, total requests served, latency p95.  ``GET /fleet`` and
    the load generator's per-worker report are built from these.
``snapshot``
    The worker's full observer snapshot (counters, gauges, histograms —
    :func:`~repro.obs.export.snapshot_to_dict` wire form) plus its live
    rates.  The fleet-merged ``/stats`` and ``/metrics`` fold these
    with :meth:`~repro.obs.core.Observer.merge_snapshot`: counters sum,
    gauges are last-write-wins, histogram buckets merge **exactly**, so
    fleet-wide p95/p99 are exact, not approximated.
``invoke``
    Run one JSON endpoint handler on this worker (cross-shard request
    proxying).  The call funnels through the worker's own handler —
    compute caches, single-flight and 429 backpressure all apply as if
    the request had arrived over HTTP.
``drain``
    Flip the drain flag (supervisor-propagated graceful shutdown).
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from typing import Dict, List, Tuple

from ..obs import OBS, ObsSnapshot, merge_snapshots, snapshot_from_dict, snapshot_to_dict
from .state import ApiError, ServiceState

#: A control request or response must fit one line of this many bytes
#: (plan payloads with full trade-off curves are ~100KB; 8MB is sky-high).
MAX_LINE_BYTES = 8 << 20

#: Default per-call socket timeout; control peers are local processes.
CONTROL_TIMEOUT = 10.0


def socket_path(control_dir: str, shard: int) -> str:
    """Where shard *shard*'s control socket lives under *control_dir*."""
    return os.path.join(control_dir, f"worker-{shard}.sock")


class ControlError(OSError):
    """A control peer was unreachable or answered garbage."""


# -- server ------------------------------------------------------------------


def _op_ping(state: ServiceState, request: dict) -> dict:
    hist = OBS.histogram("service.latency_seconds")
    return {
        "ok": True,
        "pid": os.getpid(),
        "shard": state.config.shard_index,
        "as_of": OBS.epoch(),
        "uptime_seconds": round(state.uptime(), 3),
        "inflight": state.inflight_requests,
        "draining": state.draining,
        "requests": OBS.counter("service.requests"),
        "latency_p95_ms": round(hist.quantile(0.95) * 1e3, 3) if hist else 0.0,
    }


def _op_snapshot(state: ServiceState, request: dict) -> dict:
    # ``as_of`` is read *before* the snapshot: if the two epochs a caller
    # brackets a scrape with are equal, the snapshot in between is not torn.
    as_of = OBS.epoch()
    return {
        "ok": True,
        "pid": os.getpid(),
        "shard": state.config.shard_index,
        "as_of": as_of,
        "snapshot": snapshot_to_dict(OBS.snapshot()),
        "rates": OBS.rates(),
    }


def _op_invoke(state: ServiceState, request: dict) -> dict:
    # Imported here: handlers imports this module for fleet aggregation.
    from .handlers import ROUTES, enter_control_invoke, exit_control_invoke

    method = request.get("method")
    path = request.get("path")
    handler = ROUTES.get((method, path))
    if handler is None:
        return {
            "ok": False,
            "error": {
                "status": 404,
                "code": "unknown_route",
                "message": f"no such endpoint: {method} {path}",
            },
        }
    body = request.get("body")
    try:
        OBS.add("service.shard.invoked")
        enter_control_invoke()
        try:
            payload = handler(state, body)
        finally:
            exit_control_invoke()
    except ApiError as error:
        return {"ok": False, "error": error.body()["error"]}
    return {"ok": True, "payload": payload}


def _op_drain(state: ServiceState, request: dict) -> dict:
    state.begin_drain()
    return {"ok": True, "draining": True}


_OPS = {
    "ping": _op_ping,
    "snapshot": _op_snapshot,
    "invoke": _op_invoke,
    "drain": _op_drain,
}


class _ControlHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        line = self.rfile.readline(MAX_LINE_BYTES)
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("control request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            self._reply({"ok": False, "error": {
                "status": 400, "code": "bad_control_request",
                "message": f"unparseable control request: {error}",
            }})
            return
        op = _OPS.get(request.get("op"))
        if op is None:
            self._reply({"ok": False, "error": {
                "status": 400, "code": "unknown_op",
                "message": f"unknown control op {request.get('op')!r}",
                "details": {"available": sorted(_OPS)},
            }})
            return
        try:
            response = op(self.server.state, request)  # type: ignore[attr-defined]
        except Exception as error:  # noqa: BLE001 — must answer something
            OBS.add("service.control.errors")
            response = {"ok": False, "error": {
                "status": 500, "code": "internal",
                "message": f"{type(error).__name__}: {error}",
            }}
        self._reply(response)

    def _reply(self, response: dict) -> None:
        try:
            self.wfile.write(json.dumps(response, default=str).encode() + b"\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # caller vanished; nothing to tell it


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    state: ServiceState


class ControlServer:
    """This worker's control listener; start once, close on shutdown."""

    def __init__(self, state: ServiceState, path: str) -> None:
        self.path = path
        try:
            os.unlink(path)  # a crashed predecessor's stale socket
        except FileNotFoundError:
            pass
        self._server = _UnixServer(path, _ControlHandler)
        self._server.state = state
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-control",
            daemon=True,
        )

    def start(self) -> "ControlServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


# -- client ------------------------------------------------------------------


def control_request(
    path: str, payload: dict, timeout: float = CONTROL_TIMEOUT
) -> dict:
    """One request/response round-trip against a peer's control socket."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(path)
            sock.sendall(json.dumps(payload, default=str).encode() + b"\n")
            with sock.makefile("rb") as stream:
                line = stream.readline(MAX_LINE_BYTES)
    except OSError as error:
        raise ControlError(f"control peer {path}: {error}") from error
    if not line:
        raise ControlError(f"control peer {path}: empty response")
    try:
        response = json.loads(line)
    except ValueError as error:
        raise ControlError(f"control peer {path}: bad response: {error}") from error
    if not isinstance(response, dict):
        raise ControlError(f"control peer {path}: non-object response")
    return response


# -- fleet aggregation -------------------------------------------------------


def fleet_statuses(state: ServiceState, timeout: float = 2.0) -> Tuple[List[dict], List[int]]:
    """``(entries, unreachable shards)`` — one ``ping`` per worker.

    This worker answers for itself in-process; peers over their control
    sockets.  A dead/restarting peer lands in *unreachable* instead of
    failing the whole listing — ``GET /fleet`` must stay useful mid-chaos.
    """
    entries = [_op_ping(state, {})]
    unreachable: List[int] = []
    control_dir = state.config.control_dir
    if not state.is_fleet_worker or control_dir is None:
        return entries, unreachable
    for shard in state.peer_shards():
        try:
            reply = control_request(
                socket_path(control_dir, shard), {"op": "ping"}, timeout
            )
        except ControlError:
            OBS.add("service.fleet.peer_unreachable")
            unreachable.append(shard)
            continue
        entries.append(reply)
    entries.sort(key=lambda entry: entry.get("shard") or 0)
    return entries, unreachable


def fleet_snapshot(
    state: ServiceState, timeout: float = 5.0
) -> Tuple[ObsSnapshot, Dict[str, float], List[int]]:
    """``(merged snapshot, summed rates, unreachable shards)`` fleet-wide.

    Counters sum, gauges are last-write-wins, histogram buckets merge
    exactly (see :func:`repro.obs.core.merge_snapshots`); rates sum
    name-wise — fleet req/s is the sum of per-worker req/s.  Outside
    fleet mode this degrades to the local snapshot.
    """
    snapshots = [OBS.snapshot()]
    rates: Dict[str, float] = dict(OBS.rates())
    unreachable: List[int] = []
    control_dir = state.config.control_dir
    if state.is_fleet_worker and control_dir is not None:
        for shard in state.peer_shards():
            try:
                reply = control_request(
                    socket_path(control_dir, shard), {"op": "snapshot"}, timeout
                )
                snapshots.append(snapshot_from_dict(reply["snapshot"]))
            except (ControlError, KeyError, TypeError, ValueError):
                OBS.add("service.fleet.peer_unreachable")
                unreachable.append(shard)
                continue
            for name, value in dict(reply.get("rates", {})).items():
                rates[name] = rates.get(name, 0.0) + float(value)
    return merge_snapshots(snapshots), rates, unreachable
