"""The fleet control plane: one unix control socket per worker.

Every fleet worker runs a tiny :class:`ControlServer` next to its HTTP
listener — a ``ThreadingUnixStreamServer`` speaking one JSON object per
line, one request per connection.  The sockets live in the
supervisor-owned ``control_dir`` (``worker-<shard>.sock``), so any
worker (and the supervisor) can reach any specific peer even though
the shared HTTP listening socket load-balances connections across the
whole fleet.

Operations:

``ping``
    Liveness + per-worker vitals: pid, shard, uptime, in-flight
    requests, total requests served, latency p95.  ``GET /fleet`` and
    the load generator's per-worker report are built from these.
``snapshot``
    The worker's full observer snapshot (counters, gauges, histograms —
    :func:`~repro.obs.export.snapshot_to_dict` wire form) plus its live
    rates.  The fleet-merged ``/stats`` and ``/metrics`` fold these
    with :meth:`~repro.obs.core.Observer.merge_snapshot`: counters sum,
    gauges are last-write-wins, histogram buckets merge **exactly**, so
    fleet-wide p95/p99 are exact, not approximated.
``invoke``
    Run one JSON endpoint handler on this worker (cross-shard request
    proxying).  The call funnels through the worker's own handler —
    compute caches, single-flight and 429 backpressure all apply as if
    the request had arrived over HTTP.  When the request carries a
    ``traceparent``, the handler runs under the caller's distributed
    trace: the owner's spans parent under the proxy's request span, ride
    back in the reply, and the owner keeps its own flight-recorder entry
    and (in ``--log-json`` mode) writes an ``"owner": true`` access-log
    line — a proxied request is visible on *both* sides of the hop.
``trace`` / ``traces``
    Read this worker's flight recorder: one ring entry by trace id /
    newest-first summaries.  ``GET /trace/{id}`` and
    ``GET /debug/traces`` stitch the fleet view from these.
``drain``
    Flip the drain flag (supervisor-propagated graceful shutdown).
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from typing import Dict, List, Tuple

from ..obs import (
    OBS,
    ObsSnapshot,
    merge_snapshots,
    parse_traceparent,
    snapshot_from_dict,
    snapshot_to_dict,
)
from .state import ApiError, ServiceState

#: A control request or response must fit one line of this many bytes
#: (plan payloads with full trade-off curves are ~100KB; 8MB is sky-high).
MAX_LINE_BYTES = 8 << 20

#: Default per-call socket timeout; control peers are local processes.
CONTROL_TIMEOUT = 10.0


def socket_path(control_dir: str, shard: int) -> str:
    """Where shard *shard*'s control socket lives under *control_dir*."""
    return os.path.join(control_dir, f"worker-{shard}.sock")


class ControlError(OSError):
    """A control peer was unreachable or answered garbage."""


# -- server ------------------------------------------------------------------


def _op_ping(state: ServiceState, request: dict) -> dict:
    hist = OBS.histogram("service.latency_seconds")
    return {
        "ok": True,
        "pid": os.getpid(),
        "shard": state.config.shard_index,
        "as_of": OBS.epoch(),
        "uptime_seconds": round(state.uptime(), 3),
        "inflight": state.inflight_requests,
        "draining": state.draining,
        "requests": OBS.counter("service.requests"),
        "latency_p95_ms": round(hist.quantile(0.95) * 1e3, 3) if hist else 0.0,
    }


def _op_snapshot(state: ServiceState, request: dict) -> dict:
    # ``as_of`` is read *before* the snapshot: if the two epochs a caller
    # brackets a scrape with are equal, the snapshot in between is not torn.
    as_of = OBS.epoch()
    return {
        "ok": True,
        "pid": os.getpid(),
        "shard": state.config.shard_index,
        "as_of": as_of,
        "snapshot": snapshot_to_dict(OBS.snapshot()),
        "rates": OBS.rates(),
    }


def _op_invoke(state: ServiceState, request: dict) -> dict:
    # Imported here: handlers imports this module for fleet aggregation.
    from .handlers import ROUTES, enter_control_invoke, exit_control_invoke, route_name
    from .logs import write_access_log

    method = request.get("method")
    path = request.get("path")
    handler = ROUTES.get((method, path))
    if handler is None:
        return {
            "ok": False,
            "error": {
                "status": 404,
                "code": "unknown_route",
                "message": f"no such endpoint: {method} {path}",
            },
        }
    body = request.get("body")
    route = route_name(str(path))
    trace = None
    if state.flight.enabled:
        context = parse_traceparent(str(request.get("traceparent") or ""))
        if context is not None:
            # Join the proxying worker's trace: spans opened here parent
            # under its request span (the remote parent id).
            trace = OBS.start_trace(context[0], remote_parent_id=context[1])
            trace.notes["owner"] = True
            if request.get("invoked_by") is not None:
                trace.notes["invoked_by"] = request.get("invoked_by")
            if request.get("request_id"):
                trace.notes["request_id"] = str(request["request_id"])
    started = time.perf_counter()
    status = 200
    try:
        OBS.add("service.shard.invoked")
        enter_control_invoke()
        try:
            with OBS.span(
                "service.invoke", route=route, shard=state.config.shard_index
            ):
                payload = handler(state, body)
        finally:
            exit_control_invoke()
        response = {"ok": True, "payload": payload}
    except ApiError as error:
        status = error.status
        response = {"ok": False, "error": error.body()["error"]}
    except BaseException:
        status = 500
        raise
    finally:
        if trace is not None:
            elapsed = time.perf_counter() - started
            OBS.end_trace()
            state.flight.record(
                trace,
                status,
                route,
                elapsed,
                request_id=trace.notes.get("request_id"),
                shard=state.config.shard_index,
            )
            if state.config.log_json:
                write_access_log(
                    str(trace.notes.get("request_id") or "-"),
                    str(method),
                    str(path),
                    route,
                    status,
                    elapsed,
                    trace_id=trace.trace_id,
                    shard=state.config.shard_index,
                    owner=True,
                    invoked_by=trace.notes.get("invoked_by"),
                )
    if trace is not None:
        # Hand the owner-side spans back so the proxy's flight-recorder
        # entry holds the complete tree even if this ring evicts first.
        response["spans"] = trace.span_dicts()
    return response


def _op_trace(state: ServiceState, request: dict) -> dict:
    """One flight-recorder entry by trace id (``None`` when not retained)."""
    return {"ok": True, "entry": state.flight.get(str(request.get("trace_id") or ""))}


def _op_traces(state: ServiceState, request: dict) -> dict:
    """Newest-first summaries of this worker's flight-recorder ring."""
    return {
        "ok": True,
        "retained": len(state.flight),
        "traces": state.flight.summaries(),
    }


def _op_drain(state: ServiceState, request: dict) -> dict:
    state.begin_drain()
    return {"ok": True, "draining": True}


_OPS = {
    "ping": _op_ping,
    "snapshot": _op_snapshot,
    "invoke": _op_invoke,
    "trace": _op_trace,
    "traces": _op_traces,
    "drain": _op_drain,
}


class _ControlHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        line = self.rfile.readline(MAX_LINE_BYTES)
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("control request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            self._reply({"ok": False, "error": {
                "status": 400, "code": "bad_control_request",
                "message": f"unparseable control request: {error}",
            }})
            return
        op = _OPS.get(request.get("op"))
        if op is None:
            self._reply({"ok": False, "error": {
                "status": 400, "code": "unknown_op",
                "message": f"unknown control op {request.get('op')!r}",
                "details": {"available": sorted(_OPS)},
            }})
            return
        try:
            response = op(self.server.state, request)  # type: ignore[attr-defined]
        except Exception as error:  # noqa: BLE001 — must answer something
            OBS.add("service.control.errors")
            response = {"ok": False, "error": {
                "status": 500, "code": "internal",
                "message": f"{type(error).__name__}: {error}",
            }}
        self._reply(response)

    def _reply(self, response: dict) -> None:
        try:
            self.wfile.write(json.dumps(response, default=str).encode() + b"\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # caller vanished; nothing to tell it


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    state: ServiceState


class ControlServer:
    """This worker's control listener; start once, close on shutdown."""

    def __init__(self, state: ServiceState, path: str) -> None:
        self.path = path
        try:
            os.unlink(path)  # a crashed predecessor's stale socket
        except FileNotFoundError:
            pass
        self._server = _UnixServer(path, _ControlHandler)
        self._server.state = state
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-control",
            daemon=True,
        )

    def start(self) -> "ControlServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


# -- client ------------------------------------------------------------------


def control_request(
    path: str, payload: dict, timeout: float = CONTROL_TIMEOUT
) -> dict:
    """One request/response round-trip against a peer's control socket."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(path)
            sock.sendall(json.dumps(payload, default=str).encode() + b"\n")
            with sock.makefile("rb") as stream:
                line = stream.readline(MAX_LINE_BYTES)
    except OSError as error:
        raise ControlError(f"control peer {path}: {error}") from error
    if not line:
        raise ControlError(f"control peer {path}: empty response")
    try:
        response = json.loads(line)
    except ValueError as error:
        raise ControlError(f"control peer {path}: bad response: {error}") from error
    if not isinstance(response, dict):
        raise ControlError(f"control peer {path}: non-object response")
    return response


# -- fleet aggregation -------------------------------------------------------


def fleet_statuses(state: ServiceState, timeout: float = 2.0) -> Tuple[List[dict], List[int]]:
    """``(entries, unreachable shards)`` — one ``ping`` per worker.

    This worker answers for itself in-process; peers over their control
    sockets.  A dead/restarting peer lands in *unreachable* instead of
    failing the whole listing — ``GET /fleet`` must stay useful mid-chaos.
    """
    entries = [_op_ping(state, {})]
    unreachable: List[int] = []
    control_dir = state.config.control_dir
    if not state.is_fleet_worker or control_dir is None:
        return entries, unreachable
    for shard in state.peer_shards():
        try:
            reply = control_request(
                socket_path(control_dir, shard), {"op": "ping"}, timeout
            )
        except ControlError:
            OBS.add("service.fleet.peer_unreachable")
            unreachable.append(shard)
            continue
        entries.append(reply)
    entries.sort(key=lambda entry: entry.get("shard") or 0)
    return entries, unreachable


def fleet_snapshot(
    state: ServiceState, timeout: float = 5.0
) -> Tuple[ObsSnapshot, Dict[str, float], List[int]]:
    """``(merged snapshot, summed rates, unreachable shards)`` fleet-wide.

    Counters sum, gauges are last-write-wins, histogram buckets merge
    exactly (see :func:`repro.obs.core.merge_snapshots`); rates sum
    name-wise — fleet req/s is the sum of per-worker req/s.  Outside
    fleet mode this degrades to the local snapshot.
    """
    snapshots = [OBS.snapshot()]
    rates: Dict[str, float] = dict(OBS.rates())
    unreachable: List[int] = []
    control_dir = state.config.control_dir
    if state.is_fleet_worker and control_dir is not None:
        for shard in state.peer_shards():
            try:
                reply = control_request(
                    socket_path(control_dir, shard), {"op": "snapshot"}, timeout
                )
                snapshots.append(snapshot_from_dict(reply["snapshot"]))
            except (ControlError, KeyError, TypeError, ValueError):
                OBS.add("service.fleet.peer_unreachable")
                unreachable.append(shard)
                continue
            for name, value in dict(reply.get("rates", {})).items():
                rates[name] = rates.get(name, 0.0) + float(value)
    return merge_snapshots(snapshots), rates, unreachable
