"""The HTTP daemon: stdlib ``ThreadingHTTPServer`` over the handlers.

Request lifecycle::

    accept → (draining? → 503) → route → parse body → handler
           → worker pool for heavy endpoints (429 when saturated)
           → JSON response (keep-alive, explicit Content-Length)

Every request is instrumented through the process observer:
``service.requests[.<route>]`` counters, ``service.latency_seconds``
(and per-route ``service.latency_seconds.<route>``) **histograms**,
a ``service.requests`` sliding-window rate (the live req/s gauge on
``/metrics``), ``service.responses.<class>xx`` totals, a
``service.queue.depth`` gauge, ``service.rejected.*`` totals, and a
``service.request`` span per request while span recording is enabled.

Request correlation: every request carries an ``X-Request-Id`` —
honoured when the client sends one (sanitised), generated otherwise —
echoed on the response, stamped into the request span's attributes,
and written to the structured JSON access log (one line per request on
stderr when ``log_json`` is set), so one slow request can be chased
from the load generator through the access log into the Chrome trace.

Graceful shutdown (:func:`shutdown_gracefully`, wired to
SIGINT/SIGTERM by :func:`serve`) stops the accept loop, flips the
drain flag so late requests get a structured 503, waits for in-flight
requests to finish (bounded by ``drain_seconds``), then closes the
worker pool and the listening socket.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Optional, Tuple

from urllib.parse import parse_qs

from ..obs import OBS, PROMETHEUS_CONTENT_TYPE, parse_traceparent, write_chrome_trace
from ..obs.profiler import (
    DEFAULT_SECONDS as PROFILE_DEFAULT_SECONDS,
    MAX_SECONDS as PROFILE_MAX_SECONDS,
    ProfilerBusy,
    profile_collapsed,
)
from .control import ControlServer, socket_path
from .handlers import (
    KNOWN_PATHS,
    ROUTES,
    envelope,
    error_envelope,
    handle_trace,
    render_metrics,
    route_name,
)
from .logs import write_access_log
from .state import ApiError, ServiceConfig, ServiceState

#: Test hook: seconds to stall before binding the listener, so tests can
#: deliver SIGTERM *during startup* deterministically.  The stall is
#: interruptible — a stop signal during it exits immediately.
BIND_DELAY_ENV = "REPRO_SERVE_TEST_BIND_DELAY"

#: Request bodies above this are rejected with 413.
MAX_BODY_BYTES = 1 << 20

#: Longest client-supplied X-Request-Id honoured verbatim.
MAX_REQUEST_ID_LEN = 128

_REQUEST_ID_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.:"
)


def sanitize_request_id(raw: Optional[str]) -> Optional[str]:
    """A client id fit to echo into logs and traces, else ``None``.

    Only a conservative token alphabet is honoured — the id is written
    verbatim into the access log and trace files, so arbitrary header
    bytes must not ride along.
    """
    if not raw:
        return None
    raw = raw.strip()
    if not raw or len(raw) > MAX_REQUEST_ID_LEN:
        return None
    if not all(ch in _REQUEST_ID_OK for ch in raw):
        return None
    return raw


def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return uuid.uuid4().hex[:16]


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ServiceState`.

    Pass ``sock`` to adopt an already-bound, already-listening socket
    instead of binding a fresh one — fleet workers all accept from the
    one listener their supervisor bound before forking (the supervisor
    keeps its copy open, so a worker death never drops the accept
    queue; see :mod:`repro.service.supervisor`).
    """

    # Connection threads are daemonic; the drain logic in
    # shutdown_gracefully — not thread joining — bounds shutdown time.
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, config: ServiceConfig, sock: Optional[socket.socket] = None
    ) -> None:
        self.state = ServiceState(config)
        if sock is None:
            super().__init__((config.host, config.port), _RequestHandler)
            return
        host, port = sock.getsockname()[:2]
        super().__init__((host, port), _RequestHandler, bind_and_activate=False)
        self.socket.close()  # the unbound placeholder TCPServer made
        self.socket = sock
        self.server_address = (host, port)
        # what HTTPServer.server_bind would have derived on bind
        self.server_name = host
        self.server_port = port

    @property
    def port(self) -> int:
        return self.server_address[1]


class _RequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"
    #: socket timeout — bounds how long an idle keep-alive connection
    #: can pin a thread during drain
    timeout = 30
    #: headers and body leave in separate writes; without TCP_NODELAY,
    #: Nagle + delayed ACK adds ~40ms to every keep-alive response
    disable_nagle_algorithm = True

    server: ServiceServer  # narrowed for type checkers

    #: X-Request-Id for the request currently being handled on this
    #: connection thread; set at the top of _dispatch.
    _request_id: str = "-"

    #: trace id of the request currently being handled ("-" while the
    #: tracing layer is disabled); echoed as X-Trace-Id and stamped
    #: into the envelope and the access log.
    _trace_id: str = "-"

    #: ``?raw=1`` was requested: answer with the legacy (pre-envelope)
    #: body shape.  Kept for one release as a migration escape hatch.
    _raw: bool = False

    #: parsed query string of the request currently being handled.
    _query: dict = {}

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if self.server.state.config.verbose:
            sys.stderr.write(
                "service: %s %s\n" % (self.address_string(), format % args)
            )

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self._send_body(status, body, "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode(), content_type)

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", self._request_id)
        if self._trace_id != "-":
            self.send_header("X-Trace-Id", self._trace_id)
        if status in (429, 503):
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)
        OBS.add(f"service.responses.{status // 100}xx")

    def _read_body(self) -> dict:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header or 0)
        except ValueError:
            raise ApiError(400, "bad_request", "invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            # The unread body would be misparsed as the next request on
            # this keep-alive connection; drop the connection instead.
            self.close_connection = True
            raise ApiError(
                413,
                "payload_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ApiError(400, "bad_request", "request body is required")
        try:
            body = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ApiError(400, "bad_request", f"body is not valid JSON: {error}")
        if not isinstance(body, dict):
            raise ApiError(400, "bad_request", "body must be a JSON object")
        return body

    # -- dispatch ------------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        state = self.server.state
        path, _, query = self.path.partition("?")
        self._query = parse_qs(query)
        self._raw = self._query.get("raw", ["0"])[-1] in ("1", "true")
        if path != "/" and path.endswith("/"):
            path = path.rstrip("/")
        name = route_name(path)
        rid = sanitize_request_id(self.headers.get("X-Request-Id"))
        self._request_id = rid or new_request_id()
        trace = None
        if state.flight.enabled:
            # Honour inbound W3C trace context; start fresh otherwise.
            context = parse_traceparent(self.headers.get("traceparent"))
            trace = (
                OBS.start_trace(context[0], context[1])
                if context
                else OBS.start_trace()
            )
            trace.notes["request_id"] = self._request_id
            self._trace_id = trace.trace_id
        else:
            self._trace_id = "-"
        state.request_started()
        started = perf_counter()
        status = 500
        try:
            with OBS.span(
                "service.request",
                method=method,
                route=name,
                request_id=self._request_id,
            ):
                status = self._respond(state, method, path)
        finally:
            OBS.end_trace()
            state.request_finished()
            elapsed = perf_counter() - started
            OBS.add("service.requests")
            OBS.add(f"service.requests.{name}")
            OBS.observe("service.latency_seconds", elapsed)
            OBS.observe(f"service.latency_seconds.{name}", elapsed)
            OBS.mark("service.requests")
            if trace is not None:
                state.flight.record(
                    trace,
                    status,
                    name,
                    elapsed,
                    request_id=self._request_id,
                    shard=state.config.shard_index,
                )
            if state.config.log_json:
                self._access_log(method, path, name, status, elapsed, trace)
            if state.config.verbose:
                self.log_message("%s %s -> %d (%.1fms)", method, path, status, elapsed * 1e3)

    def _access_log(
        self, method: str, path: str, route: str, status: int, elapsed: float, trace
    ) -> None:
        """One structured JSON line per request, on stderr.

        stderr on purpose: stdout carries the daemon's parseable
        output; the access log must never interleave with it.  Shard
        routing outcomes noted on the trace (``proxied``/``owner``,
        ``fallback_local``) ride along so a cross-shard request can be
        followed through both workers' logs by its ``trace_id``.
        """
        extra = {}
        if trace is not None:
            notes = trace.notes
            if notes.get("proxied"):
                extra["proxied"] = True
                extra["owner_shard"] = notes.get("owner")
            if notes.get("fallback_local"):
                extra["fallback_local"] = True
        write_access_log(
            self._request_id,
            method,
            path,
            route,
            status,
            elapsed,
            trace_id=None if trace is None else trace.trace_id,
            shard=self.server.state.config.shard_index,
            client=self.client_address[0],
            **extra,
        )

    def _envelope_trace_id(self) -> Optional[str]:
        return None if self._trace_id == "-" else self._trace_id

    def _profile_seconds(self) -> float:
        raw = self._query.get("seconds", [str(PROFILE_DEFAULT_SECONDS)])[-1]
        try:
            seconds = float(raw)
        except ValueError:
            raise ApiError(400, "bad_request", f"unparseable seconds {raw!r}")
        if not 0.0 < seconds <= PROFILE_MAX_SECONDS:
            raise ApiError(
                400,
                "bad_request",
                f"seconds must be in (0, {PROFILE_MAX_SECONDS:.0f}]",
                got=seconds,
            )
        return seconds

    def _respond(self, state: ServiceState, method: str, path: str) -> int:
        try:
            if method == "GET" and path == "/metrics":
                # Served even while draining — the last scrape before
                # shutdown is the one that captures the drain.
                self._send_text(200, render_metrics(state), PROMETHEUS_CONTENT_TYPE)
                return 200
            if state.draining:
                OBS.add("service.rejected.draining")
                raise ApiError(503, "draining", "server is shutting down")
            if method == "GET" and path.startswith("/trace/"):
                payload = handle_trace(
                    state, {"trace_id": path[len("/trace/") :]}
                )
                self._send_json(
                    200,
                    payload
                    if self._raw
                    else envelope(payload, trace_id=self._envelope_trace_id()),
                )
                return 200
            if method == "GET" and path == "/debug/profile":
                seconds = self._profile_seconds()
                try:
                    text = profile_collapsed(seconds)
                except ProfilerBusy:
                    raise ApiError(
                        429, "profiler_busy", "a profile is already running"
                    )
                self._send_text(200, text, "text/plain; charset=utf-8")
                return 200
            handler = ROUTES.get((method, path))
            if handler is None:
                if path in KNOWN_PATHS:
                    raise ApiError(
                        405, "method_not_allowed", f"{method} not allowed on {path}"
                    )
                raise ApiError(
                    404,
                    "unknown_route",
                    f"no such endpoint: {path}",
                    available=sorted(f"{m} {p}" for m, p in ROUTES),
                )
            body = self._read_body() if method == "POST" else None
            payload = handler(state, body)
            self._send_json(
                200,
                payload
                if self._raw
                else envelope(payload, trace_id=self._envelope_trace_id()),
            )
            return 200
        except ApiError as error:
            self._send_json(error.status, self._error_body(error.status, error.body()))
            return error.status
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
            return 499
        except Exception as error:  # noqa: BLE001 — must answer something
            OBS.add("service.errors.internal")
            body = {
                "error": {
                    "status": 500,
                    "code": "internal",
                    "message": f"{type(error).__name__}: {error}",
                }
            }
            self._send_json(500, self._error_body(500, body))
            return 500

    def _error_body(self, status: int, legacy: dict) -> dict:
        """Envelope an error body (legacy shape verbatim under ``?raw=1``).

        ``retry_after`` mirrors the Retry-After header _send_body puts
        on 429/503 so envelope-only clients never have to parse headers.
        """
        if self._raw:
            return legacy
        retry_after = 1 if status in (429, 503) else None
        return error_envelope(
            legacy["error"],
            retry_after=retry_after,
            trace_id=self._envelope_trace_id(),
        )


# -- lifecycle ---------------------------------------------------------------


def make_server(
    config: Optional[ServiceConfig] = None,
    sock: Optional[socket.socket] = None,
) -> ServiceServer:
    """Bind a server (``port=0`` picks an ephemeral port); not started.

    With *sock*, adopt that listener instead of binding (fleet workers).
    """
    return ServiceServer(config or ServiceConfig(), sock=sock)


def write_ready_file(path: str, document: dict) -> None:
    """Atomically publish a JSON readiness document at *path*.

    Written tmp-then-rename so a poller never reads a half-written
    file: the document either is not there yet or is complete.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2)
        stream.write("\n")
    os.replace(tmp, path)


def start_background(
    config: Optional[ServiceConfig] = None,
) -> Tuple[ServiceServer, threading.Thread]:
    """Bind and run a server on a daemon thread (tests, benches, loadgen)."""
    server = make_server(config)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service", daemon=True
    )
    thread.start()
    return server, thread


def shutdown_gracefully(server: ServiceServer, drain_seconds: Optional[float] = None) -> bool:
    """Stop accepting, drain in-flight requests, release resources.

    Returns True when the drain completed inside the deadline; False
    when lingering requests had to be abandoned (their daemon threads
    die with the process).
    """
    state = server.state
    state.begin_drain()
    server.shutdown()  # stop the accept loop (blocks until it exits)
    timeout = state.config.drain_seconds if drain_seconds is None else drain_seconds
    drained = state.wait_idle(timeout)
    state.close()
    server.server_close()
    if not drained:
        OBS.add("service.shutdown.abandoned", state.inflight_requests)
    return drained


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Run the daemon in the foreground until SIGINT/SIGTERM.

    ``workers > 1`` runs the supervised pre-fork fleet; otherwise one
    process serves directly.  (A fleet *worker* — ``shard_index`` set —
    also lands in :func:`serve_worker`: the supervisor fills in its
    shard before calling down.)
    """
    config = config or ServiceConfig()
    if config.workers > 1 and config.shard_index is None:
        from .supervisor import serve_fleet  # avoid a module cycle

        return serve_fleet(config)
    return serve_worker(config)


def serve_worker(
    config: ServiceConfig, sock: Optional[socket.socket] = None
) -> int:
    """One serving process, foreground, until SIGINT/SIGTERM.

    Signal handlers are installed *before* the listener binds, so a
    SIGTERM delivered during startup exits promptly instead of hitting
    the default handler (kill) or — the old bug — arming the full drain
    machinery against a server that never started accepting.
    """
    stop_requested = threading.Event()
    box = {"server": None, "serving": False}

    def request_stop(signum, frame) -> None:
        stop_requested.set()
        server = box["server"]
        if server is not None and box["serving"]:
            # shutdown() must not run on the thread inside
            # serve_forever (it would deadlock); hand it off.  Guarded
            # by `serving`: shutdown() on a server whose accept loop
            # never ran blocks forever on its is-shut-down event.
            threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, request_stop)
        except ValueError:
            pass  # not the main thread (tests calling serve_worker directly)

    delay = float(os.environ.get(BIND_DELAY_ENV, "0") or 0.0)
    if delay > 0 and stop_requested.wait(delay):
        for signum, old in previous.items():
            signal.signal(signum, old)
        print("repro-service stopped before binding", file=sys.stderr, flush=True)
        return 0

    server = make_server(config, sock=sock)
    state = server.state
    box["server"] = server
    control: Optional[ControlServer] = None
    if state.is_fleet_worker:
        control = ControlServer(
            state, socket_path(state.config.control_dir, state.config.shard_index)
        ).start()
    if state.config.trace_out:
        OBS.enable()
    if state.config.ready_file and not state.is_fleet_worker:
        write_ready_file(
            state.config.ready_file,
            {
                "host": state.config.host,
                "port": server.port,
                "workers": 1,
                "pids": [os.getpid()],
                "supervisor_pid": os.getpid(),
                "control_dir": None,
                "restarts": 0,
            },
        )
    host = state.config.host
    shard = (
        f", shard {state.config.shard_index}/{state.fleet_size}"
        if state.is_fleet_worker
        else ""
    )
    print(
        f"repro-service listening on http://{host}:{server.port} "
        f"(threads={state.config.threads}, "
        f"queue_limit={state.config.queue_limit}, "
        f"lru_size={state.config.lru_size}{shard})",
        file=sys.stderr,
        flush=True,
    )
    drained = True
    try:
        if not stop_requested.is_set():
            box["serving"] = True
            if stop_requested.is_set():
                # Signal raced the flag: either its handler saw
                # serving=False (no shutdown spawned) or it spawned a
                # shutdown() that parks on a daemon thread; both are
                # safe because serve_forever never runs.
                box["serving"] = False
            else:
                server.serve_forever(poll_interval=0.2)
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except ValueError:
                pass
        state.begin_drain()
        drained = state.wait_idle(state.config.drain_seconds)
        if control is not None:
            control.close()
        state.close()
        try:
            server.server_close()
        except OSError:
            pass
        if state.config.trace_out:
            write_chrome_trace(state.config.trace_out, OBS.snapshot())
            print(
                f"repro-service trace written to {state.config.trace_out}",
                file=sys.stderr,
                flush=True,
            )
        print(
            "repro-service stopped"
            + ("" if drained else " (abandoned in-flight requests)"),
            file=sys.stderr,
            flush=True,
        )
    return 0


def wait_until_ready(
    host: str, port: int, timeout: float = 5.0
) -> bool:
    """Poll until the listening socket accepts connections."""
    deadline = perf_counter() + timeout
    while perf_counter() < deadline:
        try:
            with socket.create_connection((host, port), timeout=0.25):
                return True
        except OSError:
            continue
    return False
