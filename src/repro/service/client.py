"""A minimal stdlib client for the prediction service.

One :class:`ServiceClient` wraps one persistent keep-alive connection —
use one client per thread (the load generator gives each worker its
own).  Error responses surface as :class:`ServiceError` carrying the
server's structured code/status; transport failures surface as the
underlying ``OSError``.

Every request carries an ``X-Request-Id`` (a caller-supplied one, or a
fresh 16-hex-char id per request); the id the server echoed back is
kept on :attr:`ServiceClient.last_request_id` so a failure can be
correlated with the server's access log and trace.

429 handling is opt-in: construct with ``retries=N`` and the client
sleeps out the server's ``Retry-After`` hint (stretched by capped
exponential backoff plus jitter) before re-issuing a shed request, up
to N times.  Only 429 is retried — it is the one status the server
sends specifically to mean "same request, later, will work"; 5xx may
not be idempotent-safe and 4xx will never succeed.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

#: Default first-retry delay (seconds) when the server sent no usable
#: ``Retry-After``; doubles per attempt up to :data:`BACKOFF_CAP`.
BACKOFF_BASE = 0.1
#: Ceiling on any single retry sleep, jitter included.
BACKOFF_CAP = 5.0
#: Jitter stretches a delay by up to this fraction (never shrinks it —
#: the server's Retry-After is a promise about when capacity returns).
JITTER_FRACTION = 0.25


class ServiceError(Exception):
    """A structured (non-2xx) response from the service.

    ``retry_after`` carries the envelope's in-band backpressure hint
    (seconds) when the server sent one (429/503), else ``None``.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        details: Optional[dict] = None,
        retry_after: Optional[float] = None,
    ):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.details = details or {}
        self.retry_after = retry_after


#: One /predict key: ``(name, predictor)``, ``(name, predictor, scale)``,
#: ``(name, predictor, scale, seed_offset)`` or an explicit body dict.
PredictKey = Union[Tuple[str, ...], Dict[str, Any]]


def unwrap_envelope(document: Any) -> Any:
    """The ``data`` payload of a v1 success envelope; pass-through for
    anything else (legacy ``?raw=1`` bodies, non-dict documents)."""
    if (
        isinstance(document, dict)
        and document.get("v") == 1
        and document.get("ok") is True
        and "data" in document
    ):
        return document["data"]
    return document


class ServiceClient:
    """Thread-unsafe persistent-connection client (one per thread)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 30.0,
        retries: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        #: extra attempts after a 429 (0 = never retry, the default)
        self.retries = retries
        #: injectable for tests; production callers leave the defaults
        self._sleep = sleep
        self._rng = rng or random.Random()
        self._connection: Optional[http.client.HTTPConnection] = None
        #: X-Request-Id echoed by the server on the most recent response
        #: (None before the first request).
        self.last_request_id: Optional[str] = None
        #: X-Trace-Id from the most recent response — the distributed
        #: trace id, resolvable via ``GET /trace/{id}`` while the
        #: fleet's flight recorders retain it (None when tracing is off).
        self.last_trace_id: Optional[str] = None
        #: parsed Retry-After (seconds) from the most recent response,
        #: or None when the header was absent/unparseable.
        self.last_retry_after: Optional[float] = None
        #: 429s absorbed by retry sleeps over this client's lifetime.
        self.retries_performed = 0

    def _retry_delay(self, attempt: int) -> float:
        """Sleep before retry *attempt* (0-based): honour the server's
        ``Retry-After`` floor, back off exponentially, stretch by
        jitter, and cap the result."""
        floor = self.last_retry_after or 0.0
        delay = max(floor, BACKOFF_BASE * (2.0 ** attempt))
        delay *= 1.0 + JITTER_FRACTION * self._rng.random()
        return min(BACKOFF_CAP, delay)

    # -- transport -----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip(
        self,
        method: str,
        path: str,
        payload: Optional[bytes],
        request_id: Optional[str],
    ) -> Tuple[int, bytes]:
        """One request/response cycle; updates :attr:`last_request_id`.

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests); real refusals propagate.
        """
        headers = {"X-Request-Id": request_id or uuid.uuid4().hex[:16]}
        if payload:
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
        self.last_request_id = response.getheader("X-Request-Id") or headers["X-Request-Id"]
        self.last_trace_id = response.getheader("X-Trace-Id")
        retry_after = response.getheader("Retry-After")
        try:
            self.last_retry_after = (
                max(0.0, float(retry_after)) if retry_after is not None else None
            )
        except ValueError:
            self.last_retry_after = None  # HTTP-date form; treat as absent
        return response.status, raw

    def request_raw(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        request_id: Optional[str] = None,
    ) -> Tuple[int, dict]:
        """``(status, parsed_body)`` without raising on error statuses.

        With ``retries > 0``, a 429 is retried after sleeping out
        :meth:`_retry_delay`; any other status returns immediately.
        """
        payload = None if body is None else json.dumps(body).encode()
        attempt = 0
        while True:
            status, raw = self._roundtrip(method, path, payload, request_id)
            if status != 429 or attempt >= self.retries:
                break
            self._sleep(self._retry_delay(attempt))
            self.retries_performed += 1
            attempt += 1
        try:
            document = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            document = {"raw": raw.decode(errors="replace")}
        return status, document

    def request_text(
        self, method: str, path: str, request_id: Optional[str] = None
    ) -> Tuple[int, str]:
        """``(status, body text)`` for non-JSON endpoints (``/metrics``)."""
        status, raw = self._roundtrip(method, path, None, request_id)
        return status, raw.decode(errors="replace")

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        request_id: Optional[str] = None,
    ) -> dict:
        """Like :meth:`request_raw` but envelope-aware: unwraps the v1
        success envelope to its ``data`` payload and raises a typed
        :class:`ServiceError` on non-2xx (envelope or legacy body)."""
        status, document = self.request_raw(method, path, body, request_id)
        if 200 <= status < 300:
            return unwrap_envelope(document)
        error = document.get("error", {}) if isinstance(document, dict) else {}
        retry_after = error.get("retry_after")
        if not isinstance(retry_after, (int, float)) or isinstance(retry_after, bool):
            retry_after = self.last_retry_after
        raise ServiceError(
            status,
            error.get("code", "unknown"),
            error.get("message", f"HTTP {status}"),
            error.get("details"),
            retry_after=retry_after,
        )

    # -- endpoint conveniences -----------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def benchmarks(self) -> dict:
        return self.request("GET", "/benchmarks")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def metrics(self) -> str:
        """The Prometheus text exposition body from ``GET /metrics``."""
        status, text = self.request_text("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, "metrics_unavailable", f"HTTP {status}")
        return text

    def artifacts(self, name: str, scale: int = 1, seed_offset: int = 0) -> dict:
        return self.request(
            "POST",
            "/artifacts",
            {"name": name, "scale": scale, "seed_offset": seed_offset},
        )

    def predict(
        self, name: str, predictor: str, scale: int = 1, seed_offset: int = 0
    ) -> dict:
        return self.request(
            "POST",
            "/predict",
            {
                "name": name,
                "predictor": predictor,
                "scale": scale,
                "seed_offset": seed_offset,
            },
        )

    def train(
        self,
        name: str,
        predictor: str,
        scale: int = 1,
        seed_offset: int = 0,
        split: Optional[float] = None,
    ) -> dict:
        """Train (or fetch the cached) learned model for *predictor* on
        the benchmark's trace prefix; the payload carries the versioned
        model document."""
        body: Dict[str, Any] = {
            "name": name,
            "predictor": predictor,
            "scale": scale,
            "seed_offset": seed_offset,
        }
        if split is not None:
            body["split"] = split
        return self.request("POST", "/train", body)

    def predict_many(self, keys: Iterable[PredictKey]) -> List[dict]:
        """Evaluate many ``/predict`` keys over the one keep-alive
        connection, returning payloads in input order.

        Each key is ``(name, predictor[, scale[, seed_offset]])`` or an
        explicit request-body dict.  Errors raise :class:`ServiceError`
        naming the offending key in ``details["key"]`` — partial results
        are not returned (the caller retries the whole batch or narrows
        it), matching the all-or-nothing contract of :meth:`request`.
        """
        results: List[dict] = []
        for key in keys:
            if isinstance(key, dict):
                body = dict(key)
            else:
                parts = tuple(key)
                if not 2 <= len(parts) <= 4:
                    raise ValueError(
                        "predict key must be (name, predictor[, scale[, seed_offset]])"
                        f", got {key!r}"
                    )
                body = {"name": parts[0], "predictor": parts[1]}
                if len(parts) > 2:
                    body["scale"] = parts[2]
                if len(parts) > 3:
                    body["seed_offset"] = parts[3]
            try:
                results.append(self.request("POST", "/predict", body))
            except ServiceError as error:
                error.details = dict(error.details, key=body)
                raise
        return results

    def machine(
        self,
        name: str,
        site: Optional[str] = None,
        max_states: int = 6,
        scale: int = 1,
        seed_offset: int = 0,
    ) -> dict:
        body: Dict[str, Any] = {
            "name": name,
            "max_states": max_states,
            "scale": scale,
            "seed_offset": seed_offset,
        }
        if site is not None:
            body["site"] = site
        return self.request("POST", "/machine", body)

    def plan(
        self,
        name: str,
        max_states: int = 6,
        max_size_factor: Optional[float] = None,
        scale: int = 1,
        seed_offset: int = 0,
    ) -> dict:
        body: Dict[str, Any] = {
            "name": name,
            "max_states": max_states,
            "scale": scale,
            "seed_offset": seed_offset,
        }
        if max_size_factor is not None:
            body["max_size_factor"] = max_size_factor
        return self.request("POST", "/plan", body)
