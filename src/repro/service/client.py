"""A minimal stdlib client for the prediction service.

One :class:`ServiceClient` wraps one persistent keep-alive connection —
use one client per thread (the load generator gives each worker its
own).  Error responses surface as :class:`ServiceError` carrying the
server's structured code/status; transport failures surface as the
underlying ``OSError``.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple


class ServiceError(Exception):
    """A structured (non-2xx) response from the service."""

    def __init__(self, status: int, code: str, message: str, details: Optional[dict] = None):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.details = details or {}


class ServiceClient:
    """Thread-unsafe persistent-connection client (one per thread)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request_raw(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """``(status, parsed_body)`` without raising on error statuses.

        Retries once on a stale keep-alive connection (the server may
        have closed it between requests); real refusals propagate.
        """
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
        try:
            document = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            document = {"raw": raw.decode(errors="replace")}
        return response.status, document

    def request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        """Like :meth:`request_raw` but raises :class:`ServiceError` on non-2xx."""
        status, document = self.request_raw(method, path, body)
        if 200 <= status < 300:
            return document
        error = document.get("error", {}) if isinstance(document, dict) else {}
        raise ServiceError(
            status,
            error.get("code", "unknown"),
            error.get("message", f"HTTP {status}"),
            error.get("details"),
        )

    # -- endpoint conveniences -----------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def benchmarks(self) -> dict:
        return self.request("GET", "/benchmarks")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def artifacts(self, name: str, scale: int = 1, seed_offset: int = 0) -> dict:
        return self.request(
            "POST",
            "/artifacts",
            {"name": name, "scale": scale, "seed_offset": seed_offset},
        )

    def predict(
        self, name: str, predictor: str, scale: int = 1, seed_offset: int = 0
    ) -> dict:
        return self.request(
            "POST",
            "/predict",
            {
                "name": name,
                "predictor": predictor,
                "scale": scale,
                "seed_offset": seed_offset,
            },
        )

    def machine(
        self,
        name: str,
        site: Optional[str] = None,
        max_states: int = 6,
        scale: int = 1,
        seed_offset: int = 0,
    ) -> dict:
        body: Dict[str, Any] = {
            "name": name,
            "max_states": max_states,
            "scale": scale,
            "seed_offset": seed_offset,
        }
        if site is not None:
            body["site"] = site
        return self.request("POST", "/machine", body)

    def plan(
        self,
        name: str,
        max_states: int = 6,
        max_size_factor: Optional[float] = None,
        scale: int = 1,
        seed_offset: int = 0,
    ) -> dict:
        body: Dict[str, Any] = {
            "name": name,
            "max_states": max_states,
            "scale": scale,
            "seed_offset": seed_offset,
        }
        if max_size_factor is not None:
            body["max_size_factor"] = max_size_factor
        return self.request("POST", "/plan", body)
