"""The pre-fork fleet supervisor: one listener, N worker processes.

``python -m repro serve --workers N`` runs this instead of a single
server.  The supervisor

1. **binds the one listening socket** itself (``SO_REUSEPORT`` is set
   opportunistically so an operator can run side-by-side fleets, but
   nothing depends on it — workers share the *inherited* socket, which
   works on any platform and keeps the accept queue alive across
   worker restarts because the supervisor never closes its copy);
2. **forks** N workers (``multiprocessing`` fork context — the
   supervisor is single-threaded at fork time, so no lock is ever
   cloned mid-acquisition); each worker resets the forked observer
   copy, opens its control socket (:mod:`repro.service.control`) and
   accepts from the shared listener;
3. **monitors**: children are reaped promptly, and an unexpected death
   is answered with a respawn after per-slot exponential backoff
   (0.2 s doubling to 5 s, reset once a worker survives 30 s) so a
   crash-looping shard cannot busy-spin the machine;
4. **propagates shutdown**: SIGINT/SIGTERM to the supervisor SIGTERMs
   every worker, which drains in-flight requests exactly like the
   single-process server, then the supervisor reaps, closes the
   listener and removes the control-socket directory.

:func:`spawn_fleet` is the test/bench-facing helper: it launches the
whole arrangement as a *subprocess* (never forking from a threaded
test runner) and hands back ports and pids parsed from the
``--ready-file`` the supervisor publishes once every worker is up.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..obs import OBS
from .control import socket_path
from .server import serve_worker, write_ready_file
from .state import ServiceConfig

#: First respawn delay after an unexpected worker death.
BACKOFF_INITIAL = 0.2
#: Ceiling on the per-slot respawn delay.
BACKOFF_CAP = 5.0
#: A worker alive this long is "healthy": its slot's backoff resets.
BACKOFF_HEALTHY_RESET = 30.0
#: Listen backlog for the shared socket.
LISTEN_BACKLOG = 128


def create_listener(host: str, port: int, backlog: int = LISTEN_BACKLOG) -> socket.socket:
    """Bind and listen the fleet's one shared socket.

    ``SO_REUSEPORT`` is best-effort (absent or refused on some
    platforms); inheritance across fork is what actually shares the
    socket.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except OSError:
                pass
        sock.bind((host, port))
        sock.listen(backlog)
        sock.set_inheritable(True)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(config: ServiceConfig, sock: socket.socket) -> None:
    """Entry point of one forked worker process."""
    # The fork cloned the supervisor's observer verbatim; this worker's
    # telemetry must start from zero or fleet merges double-count.
    OBS.reset()
    sys.exit(serve_worker(config, sock=sock))


class FleetSupervisor:
    """Owns the listener, the control dir and the worker processes."""

    def __init__(self, config: ServiceConfig) -> None:
        if config.workers < 2:
            raise ValueError("fleet mode needs workers >= 2")
        self.config = config
        self._ctx = multiprocessing.get_context("fork")
        self.sock: Optional[socket.socket] = None
        self.port: Optional[int] = None
        self.control_dir: Optional[str] = None
        self.workers: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._backoff = [BACKOFF_INITIAL] * config.workers
        self._spawned_at = [0.0] * config.workers
        self.restarts = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the listener, create the control dir, fork every worker."""
        self.sock = create_listener(self.config.host, self.config.port)
        self.port = self.sock.getsockname()[1]
        self.control_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        for shard in range(self.config.workers):
            self._spawn(shard)

    def _worker_config(self, shard: int) -> ServiceConfig:
        return replace(
            self.config,
            port=self.port,
            shard_index=shard,
            control_dir=self.control_dir,
            ready_file=None,  # the supervisor publishes readiness
            trace_out=None,  # per-worker traces would clobber one path
        )

    def _spawn(self, shard: int) -> None:
        process = self._ctx.Process(
            target=_worker_main,
            args=(self._worker_config(shard), self.sock),
            name=f"repro-worker-{shard}",
        )
        process.start()
        self.workers[shard] = process
        self._spawned_at[shard] = time.monotonic()

    def pids(self) -> List[int]:
        return [proc.pid for _, proc in sorted(self.workers.items())]

    def publish_ready(self) -> None:
        """(Re)write the readiness document; called again after respawns
        so pollers always see live pids."""
        if not self.config.ready_file:
            return
        write_ready_file(
            self.config.ready_file,
            {
                "host": self.config.host,
                "port": self.port,
                "workers": self.config.workers,
                "pids": self.pids(),
                "supervisor_pid": os.getpid(),
                "control_dir": self.control_dir,
                "restarts": self.restarts,
            },
        )

    # -- monitoring ----------------------------------------------------------

    def monitor(self, stop: threading.Event, poll_interval: float = 0.2) -> None:
        """Reap and respawn until *stop* is set."""
        while not stop.is_set():
            self._sweep_once(stop)
            stop.wait(poll_interval)

    def _sweep_once(self, stop: threading.Event) -> None:
        for shard, process in list(self.workers.items()):
            process.join(timeout=0)  # reap if exited; never blocks
            if process.exitcode is None or stop.is_set():
                continue
            now = time.monotonic()
            if now - self._spawned_at[shard] >= BACKOFF_HEALTHY_RESET:
                self._backoff[shard] = BACKOFF_INITIAL
            delay = self._backoff[shard]
            print(
                f"repro-service: worker {shard} (pid {process.pid}) exited "
                f"with code {process.exitcode}; restarting in {delay:.1f}s",
                file=sys.stderr,
                flush=True,
            )
            self._backoff[shard] = min(self._backoff[shard] * 2.0, BACKOFF_CAP)
            self.restarts += 1
            if stop.wait(delay):
                return
            self._spawn(shard)
            self.publish_ready()

    # -- shutdown ------------------------------------------------------------

    def stop(self) -> bool:
        """SIGTERM every worker, wait out the drain, then clean up.

        Returns True when every worker exited inside the drain budget.
        """
        for process in self.workers.values():
            if process.is_alive():
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except (ProcessLookupError, TypeError):
                    pass
        deadline = time.monotonic() + self.config.drain_seconds + 5.0
        clean = True
        for process in self.workers.values():
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                clean = False
                process.kill()
                process.join(timeout=2.0)
        if self.sock is not None:
            self.sock.close()
        if self.control_dir is not None:
            shutil.rmtree(self.control_dir, ignore_errors=True)
        return clean


def serve_fleet(config: ServiceConfig) -> int:
    """Run the supervised fleet in the foreground until SIGINT/SIGTERM."""
    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, request_stop)

    supervisor = FleetSupervisor(config)
    clean = True
    try:
        if not stop.is_set():
            supervisor.start()
            supervisor.publish_ready()
            print(
                f"repro-service fleet listening on "
                f"http://{config.host}:{supervisor.port} "
                f"(workers={config.workers}, threads={config.threads}, "
                f"queue_limit={config.queue_limit})",
                file=sys.stderr,
                flush=True,
            )
            supervisor.monitor(stop)
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
        clean = supervisor.stop()
        print(
            "repro-service fleet stopped"
            + ("" if clean else " (killed lingering workers)")
            + (f" after {supervisor.restarts} restart(s)" if supervisor.restarts else ""),
            file=sys.stderr,
            flush=True,
        )
    return 0


# -- subprocess harness (tests, benchmarks, chaos CI) ------------------------


@dataclass
class FleetHandle:
    """A running ``serve`` subprocess plus its parsed readiness document."""

    process: subprocess.Popen
    ready: dict
    ready_file: str
    #: Where the subprocess's stderr (startup banner + ``--log-json``
    #: access log) is being captured, when ``spawn_fleet(log_path=...)``.
    log_path: Optional[str] = None

    @property
    def port(self) -> int:
        return int(self.ready["port"])

    @property
    def host(self) -> str:
        return str(self.ready["host"])

    @property
    def pids(self) -> List[int]:
        return [int(pid) for pid in self.ready["pids"]]

    @property
    def control_dir(self) -> Optional[str]:
        return self.ready.get("control_dir")

    def worker_socket(self, shard: int) -> str:
        if not self.control_dir:
            raise RuntimeError("not a fleet (no control_dir)")
        return socket_path(self.control_dir, shard)

    def refresh_ready(self) -> dict:
        """Re-read the ready file (pids change after a worker restart)."""
        with open(self.ready_file, "r", encoding="utf-8") as stream:
            self.ready = json.load(stream)
        return self.ready

    def stop(self, timeout: float = 20.0) -> int:
        """Graceful SIGTERM; escalate to SIGKILL past *timeout*."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)
        return self.process.returncode


def spawn_fleet(
    workers: int = 2,
    threads: int = 2,
    port: int = 0,
    host: str = "127.0.0.1",
    extra_args: Optional[List[str]] = None,
    extra_env: Optional[Dict[str, str]] = None,
    startup_timeout: float = 30.0,
    log_path: Optional[str] = None,
) -> FleetHandle:
    """Launch ``python -m repro serve`` as a subprocess; await readiness.

    Always a subprocess — forking a fleet from inside a threaded test
    runner or benchmark would clone held locks into every worker.  The
    child inherits this interpreter's ``sys.path`` via ``PYTHONPATH``,
    so it runs the same checkout regardless of install state.

    *log_path* redirects the subprocess's stderr to that file — the QA
    layer pairs it with ``--log-json`` to read the access-log stream.
    """
    fd, ready_file = tempfile.mkstemp(prefix="repro-ready-", suffix=".json")
    os.close(fd)
    os.unlink(ready_file)  # the server's atomic rename will create it
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        str(port),
        "--workers",
        str(workers),
        "--threads",
        str(threads),
        "--ready-file",
        ready_file,
        *(extra_args or []),
    ]
    env = dict(os.environ, **(extra_env or {}))
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    stderr_stream = None
    if log_path is not None:
        stderr_stream = open(log_path, "ab", buffering=0)
    try:
        process = subprocess.Popen(command, env=env, stderr=stderr_stream)
    finally:
        if stderr_stream is not None:
            stderr_stream.close()  # the child holds its own copy of the fd
    deadline = time.monotonic() + startup_timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"serve subprocess exited with {process.returncode} before ready"
            )
        if os.path.exists(ready_file):
            with open(ready_file, "r", encoding="utf-8") as stream:
                ready = json.load(stream)
            return FleetHandle(
                process=process,
                ready=ready,
                ready_file=ready_file,
                log_path=log_path,
            )
        time.sleep(0.05)
    process.kill()
    raise RuntimeError(f"serve subprocess not ready within {startup_timeout}s")
