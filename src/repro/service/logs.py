"""The structured JSON access log, shared by HTTP and control paths.

One line per served request on **stderr** (stdout carries the daemon's
parseable output and must never interleave).  Two writers exist:

* the HTTP layer (:mod:`repro.service.server`) logs every request a
  worker answered over its listening socket;
* the control layer (:mod:`repro.service.control`) logs every handler
  an *owner* worker ran on behalf of a peer's ``invoke`` — those never
  touch HTTP, so without this line a request proxied across shards
  would be invisible in the owner's log.

Owner-side lines carry ``"owner": true`` so log consumers that reason
about *client-visible* requests (the QA access-log invariants count
exactly one line per request id) can separate the two populations: a
proxied request produces one client-facing line on the proxy *and* one
owner line on the owner, both sharing the same ``trace_id``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Optional


def write_access_log(
    request_id: str,
    method: str,
    path: str,
    route: str,
    status: int,
    duration_s: float,
    trace_id: Optional[str] = None,
    shard: Optional[int] = None,
    client: Optional[str] = None,
    **extra: Any,
) -> None:
    """Emit one JSON access-log line on stderr (flushed).

    ``trace_id``/``shard`` are omitted when ``None`` (single-process
    daemons with tracing off keep their old line shape); *extra* fields
    (``proxied``, ``owner``, ``fallback_local``, ...) append verbatim.
    """
    record = {
        "ts": time.time(),
        "request_id": request_id,
        "method": method,
        "path": path,
        "route": route,
        "status": status,
        "duration_ms": round(duration_s * 1e3, 3),
    }
    if trace_id is not None:
        record["trace_id"] = trace_id
    if shard is not None:
        record["shard"] = shard
    if client is not None:
        record["client"] = client
    record.update(extra)
    sys.stderr.write(json.dumps(record, separators=(",", ":")) + "\n")
    sys.stderr.flush()
