"""Consistent artifact-key sharding for the worker fleet.

Fleet mode runs N worker processes behind one listening socket; any
worker can *accept* any request, but each artifact key has exactly one
**owner** whose in-process ``ComputeCache`` slice, single-flight table
and disk-cache working set stay hot and non-overlapping.  A request
that lands on the wrong worker is proxied to the owner over its
control socket (see :mod:`repro.service.control`).

Ownership uses **rendezvous (highest-random-weight) hashing**: every
``(shard, key)`` pair gets a deterministic score — ``crc32`` of the
key mixed with the shard index through a splitmix64 finalizer — and
the shard with the highest score owns the key.  The finalizer matters:
CRC is affine, so scoring ``crc32(f"{shard}|{key}")`` directly makes
same-length keys' scores differ across shards by a *key-independent
XOR constant*, which correlates the comparisons and skews ownership
badly (one shard of three ends up owning ~half the keyspace).  The
multiply-xor-shift finalizer breaks that linearity.

* **Deterministic** — neither ``crc32`` nor the finalizer depends on
  ``PYTHONHASHSEED`` (the same reason the two-level predictor's set
  index moved off the builtin ``hash()`` in PR 4), so every worker,
  every restart and every test computes the same owner.
* **Balanced** — finalized scores are uniform: N shards each own ~1/N
  of the keyspace (tests bound the skew).
* **Minimal movement** — growing the fleet N → N+1 only introduces new
  ``(N, key)`` scores; a key moves **only** when the new shard wins it,
  so ~1/(N+1) of keys move and every moved key moves *to the new
  shard*.  No other pair of shards exchanges keys, which is exactly the
  property a warm per-worker cache wants from a resize.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List

__all__ = ["shard_key", "owner_shard", "shard_counts"]


def shard_key(name: str, scale: int = 1, seed_offset: int = 0) -> str:
    """The canonical shard key for one artifact triple.

    All four heavy endpoints (``/artifacts``, ``/predict``,
    ``/machine``, ``/plan``) shard on the *artifact* triple — a
    predictor evaluation and a replication plan for the same run land
    on the same worker as the run artifacts they derive from.
    """
    return f"{name}:{scale}:{seed_offset}"


_MASK64 = (1 << 64) - 1
#: golden-ratio increment, the standard splitmix64 stream constant
_GAMMA = 0x9E3779B97F4A7C15


def _score(shard: int, key: str) -> int:
    # crc32 once per key; splitmix64 decorrelates the per-shard scores
    x = (zlib.crc32(key.encode()) ^ (shard * _GAMMA)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def owner_shard(key: str, workers: int) -> int:
    """The shard index in ``[0, workers)`` owning *key*.

    Rendezvous hashing: the shard whose ``crc32(shard | key)`` score is
    highest wins; ties break toward the lowest index (deterministic).
    O(workers) per call — fleet sizes are single digits.
    """
    if workers <= 1:
        return 0
    best_shard = 0
    best_score = _score(0, key)
    for shard in range(1, workers):
        score = _score(shard, key)
        if score > best_score:
            best_shard, best_score = shard, score
    return best_shard


def shard_counts(keys: Iterable[str], workers: int) -> List[int]:
    """How many of *keys* each shard owns (diagnostics and tests)."""
    counts = [0] * max(1, workers)
    for key in keys:
        counts[owner_shard(key, workers)] += 1
    return counts
