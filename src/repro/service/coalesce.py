"""Caching primitives for the service hot path.

Two thread-safe building blocks, composed by :class:`ComputeCache`:

* :class:`LRUCache` — a bounded in-process memo sitting *above* the
  on-disk artifact cache.  Disk hits still cost a read plus a codec
  pass; serving from the LRU costs a dict lookup.
* :class:`SingleFlight` — request coalescing.  When N concurrent
  requests miss on the same key, exactly one (the *leader*) runs the
  computation; the other N-1 block on an event and share the result
  (or the exception).  Without this, a traffic spike on a cold key
  runs the interpreter N times for one answer.

Both are deliberately generic — keys are any hashable, values opaque —
so the server reuses them for artifacts, predictor evaluations,
planners and trade-off curves alike.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..obs import OBS


class LRUCache:
    """A bounded, thread-safe least-recently-used map."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)`` — a tuple so cached ``None`` stays distinguishable."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                return False, None
            self._entries.move_to_end(key)
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _Call:
    """One in-flight computation other threads can latch onto."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key coalescing: concurrent callers share one execution.

    The leader runs *fn* outside the registry lock; followers wait on
    the call's event and receive the leader's value or exception.  The
    key is removed before the event fires, so a request arriving after
    completion starts a fresh flight (the LRU layer above absorbs it).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, _Call] = {}

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent key; ``(value, was_leader)``."""
        with self._lock:
            call = self._inflight.get(key)
            leader = call is None
            if leader:
                call = self._inflight[key] = _Call()
        if not leader:
            waited = perf_counter()
            call.event.wait()
            OBS.observe("service.coalesce.wait_seconds", perf_counter() - waited)
            if call.error is not None:
                raise call.error
            return call.value, False
        try:
            call.value = fn()
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            call.event.set()
        return call.value, True


#: How a :class:`ComputeCache` answer was produced.
SOURCE_LRU = "lru"
SOURCE_COMPUTED = "computed"
SOURCE_COALESCED = "coalesced"


class ComputeCache:
    """LRU over single-flight: the service's memoisation stack.

    ``name`` namespaces the obs counters
    (``service.cache.<name>.{hits,misses,coalesced}``); coalesce hits
    additionally roll up into the service-wide
    ``service.coalesce.hits``.
    """

    def __init__(self, capacity: int, name: str) -> None:
        self.name = name
        self._lru = LRUCache(capacity)
        self._flight = SingleFlight()

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()

    def get(self, key: Hashable, compute: Callable[[], Any]) -> Tuple[Any, str]:
        """``(value, source)`` with source one of lru/computed/coalesced."""
        hit, value = self._lru.get(key)
        if hit:
            OBS.add(f"service.cache.{self.name}.hits")
            return value, SOURCE_LRU

        def fill() -> Any:
            value = compute()
            self._lru.put(key, value)
            return value

        value, leader = self._flight.do(key, fill)
        if leader:
            OBS.add(f"service.cache.{self.name}.misses")
            return value, SOURCE_COMPUTED
        OBS.add("service.coalesce.hits")
        OBS.add(f"service.cache.{self.name}.coalesced")
        return value, SOURCE_COALESCED
