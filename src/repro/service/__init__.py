"""Prediction-as-a-service: a concurrent HTTP daemon over the pipeline.

The serving layer the ROADMAP's north star asks for: artifacts,
predictor evaluations, machine search and replication plans exposed as
a JSON HTTP API (see :mod:`repro.service.handlers` for the endpoint
contract), with an in-process LRU over the on-disk artifact cache,
single-flight request coalescing, bounded-queue backpressure and
graceful drain.  ``python -m repro serve`` runs the daemon;
``python -m repro.service.loadgen`` drives it.
"""

from .client import ServiceClient, ServiceError
from .coalesce import ComputeCache, LRUCache, SingleFlight
from .loadgen import run_load
from .server import (
    ServiceServer,
    make_server,
    serve,
    shutdown_gracefully,
    start_background,
    wait_until_ready,
)
from .state import SERVICE_VERSION, ApiError, ServiceConfig, ServiceState

__all__ = [
    "ApiError",
    "ComputeCache",
    "LRUCache",
    "SERVICE_VERSION",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "ServiceState",
    "SingleFlight",
    "make_server",
    "run_load",
    "serve",
    "shutdown_gracefully",
    "start_background",
    "wait_until_ready",
]
