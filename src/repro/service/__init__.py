"""Prediction-as-a-service: a concurrent HTTP daemon over the pipeline.

The serving layer the ROADMAP's north star asks for: artifacts,
predictor evaluations, machine search and replication plans exposed as
a JSON HTTP API (see :mod:`repro.service.handlers` for the endpoint
contract), with an in-process LRU over the on-disk artifact cache,
single-flight request coalescing, bounded-queue backpressure and
graceful drain.  ``python -m repro serve`` runs the daemon;
``python -m repro serve --workers N`` runs the supervised pre-fork
fleet (:mod:`repro.service.supervisor`): N processes behind one
listening socket, artifact keys sharded by rendezvous hash
(:mod:`repro.service.shard`), cross-shard requests proxied over
per-worker control sockets (:mod:`repro.service.control`), and
``/stats`` / ``/metrics`` merged exactly fleet-wide.
``python -m repro.service.loadgen`` drives either shape.
"""

from .client import ServiceClient, ServiceError
from .coalesce import ComputeCache, LRUCache, SingleFlight
from .control import (
    ControlError,
    ControlServer,
    control_request,
    fleet_snapshot,
    fleet_statuses,
    socket_path,
)
from .loadgen import run_load
from .server import (
    ServiceServer,
    make_server,
    serve,
    serve_worker,
    shutdown_gracefully,
    start_background,
    wait_until_ready,
    write_ready_file,
)
from .shard import owner_shard, shard_counts, shard_key
from .state import SERVICE_VERSION, ApiError, ServiceConfig, ServiceState
from .supervisor import FleetHandle, FleetSupervisor, serve_fleet, spawn_fleet

__all__ = [
    "ApiError",
    "ComputeCache",
    "ControlError",
    "ControlServer",
    "FleetHandle",
    "FleetSupervisor",
    "LRUCache",
    "SERVICE_VERSION",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "ServiceState",
    "SingleFlight",
    "control_request",
    "fleet_snapshot",
    "fleet_statuses",
    "make_server",
    "owner_shard",
    "run_load",
    "serve",
    "serve_fleet",
    "serve_worker",
    "shard_counts",
    "shard_key",
    "shutdown_gracefully",
    "socket_path",
    "spawn_fleet",
    "start_background",
    "wait_until_ready",
    "write_ready_file",
]
