"""Shared server state: configuration, caches, worker pool, backpressure.

One :class:`ServiceState` lives for the life of the daemon.  It owns

* the per-resource :class:`~repro.service.coalesce.ComputeCache` stack
  (artifacts, predictor evaluations, planners, trade-off curves);
* a bounded :class:`~concurrent.futures.ThreadPoolExecutor` the heavy
  POST endpoints run on, guarded by a semaphore sized
  ``workers + queue_limit``.  When every slot is taken the request is
  rejected immediately with 429 instead of piling onto an unbounded
  queue — the daemon degrades by shedding load, not by falling over;
* the drain flag and in-flight request accounting graceful shutdown
  waits on.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..obs import OBS, FlightRecorder
from .coalesce import ComputeCache

#: Environment kill-switch for the always-on tracing layer (the bench
#: overhead baseline boots with this set); config.trace_off is the
#: programmatic equivalent.
TRACE_OFF_ENV = "REPRO_TRACE_OFF"

#: Service wire-format version, reported by /healthz.
SERVICE_VERSION = 1


class ApiError(Exception):
    """An error the server turns into a structured JSON response."""

    def __init__(self, status: int, code: str, message: str, **details: Any) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.details = details

    def body(self) -> dict:
        error = {"status": self.status, "code": self.code, "message": self.message}
        if self.details:
            error["details"] = self.details
        return {"error": error}


@dataclass(frozen=True)
class ServiceConfig:
    """Every serve-time knob, in one value object.

    One config describes one *process*: ``threads`` is this process's
    heavy-endpoint pool.  Fleet mode (``workers > 1``) spawns
    ``workers`` processes, each carrying a copy of this config with its
    own ``shard_index`` and the shared ``control_dir`` filled in by the
    supervisor (see :mod:`repro.service.supervisor`).
    """

    host: str = "127.0.0.1"
    port: int = 8642
    #: threads executing heavy (POST) endpoint work in this process
    #: (named ``workers`` before fleet mode claimed that word)
    threads: int = 4
    #: additional requests allowed to wait for a pool thread; beyond
    #: ``threads + queue_limit`` concurrent heavy requests → 429
    queue_limit: int = 16
    #: capacity of each in-process LRU layer
    lru_size: int = 128
    #: seconds graceful shutdown waits for in-flight requests
    drain_seconds: float = 10.0
    #: log one line per request to stderr
    verbose: bool = False
    #: emit one structured JSON access-log line per request on stderr
    #: (request id, route, status, duration); stdout stays untouched
    log_json: bool = False
    #: record spans for the daemon's lifetime and write them as Chrome
    #: trace_event JSON to this path on shutdown
    trace_out: Optional[str] = None
    #: worker *processes*; > 1 runs the supervised pre-fork fleet
    workers: int = 1
    #: this process's shard index in ``[0, workers)``; set per worker
    #: by the supervisor, ``None`` outside fleet mode
    shard_index: Optional[int] = None
    #: directory holding the per-worker control sockets; set by the
    #: supervisor, ``None`` outside fleet mode
    control_dir: Optional[str] = None
    #: write a JSON readiness document (port, pids, control dir) here
    #: once the listener is accepting; tests and the CI chaos job poll it
    ready_file: Optional[str] = None
    #: disable the always-on tracing layer (no per-request traces, no
    #: flight recorder, no exemplars); REPRO_TRACE_OFF=1 does the same
    trace_off: bool = False
    #: probabilistic keep rate for unremarkable requests in the flight
    #: recorder (errors and slow-tail requests are always kept);
    #: 1.0 keeps everything (the QA harness runs at 1.0)
    trace_sample: float = 0.01
    #: slow-tail threshold (milliseconds): requests at least this slow
    #: always enter the flight recorder
    trace_slow_ms: float = 250.0
    #: finished request traces the per-worker ring buffer retains
    trace_capacity: int = 256

    @property
    def queue_capacity(self) -> int:
        """Heavy requests this process admits before shedding with 429."""
        return self.threads + self.queue_limit

    @property
    def tracing_enabled(self) -> bool:
        """Whether the always-on tracing layer is live for this process."""
        return not self.trace_off and os.environ.get(TRACE_OFF_ENV, "") != "1"


class ServiceState:
    """Mutable daemon state shared by every request thread."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.started = time.time()
        self.draining = False
        self.artifacts = ComputeCache(config.lru_size, "artifacts")
        self.predictions = ComputeCache(config.lru_size, "predict")
        self.planners = ComputeCache(max(8, config.lru_size // 4), "planner")
        self.plans = ComputeCache(config.lru_size, "plan")
        self.models = ComputeCache(max(8, config.lru_size // 4), "models")
        self.flight = FlightRecorder(
            capacity=config.trace_capacity,
            slow_threshold=config.trace_slow_ms / 1e3,
            sample_rate=config.trace_sample,
            enabled=config.tracing_enabled,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=config.threads, thread_name_prefix="repro-svc"
        )
        self._slots = threading.BoundedSemaphore(config.queue_capacity)
        self._depth_lock = threading.Lock()
        self._queue_depth = 0
        self._http_lock = threading.Lock()
        self._http_inflight = 0
        self._idle = threading.Condition(self._http_lock)

    # -- heavy work ----------------------------------------------------------

    def run_heavy(self, fn: Callable[[], Any]) -> Any:
        """Run *fn* on the bounded worker pool; 429 when saturated.

        The calling request thread blocks on the result (the HTTP
        response needs it) — the pool exists to bound *concurrent
        compute* and to give overload a cheap, immediate answer.

        The caller's active trace crosses the pool boundary: spans the
        compute opens on the pool thread collect into the same trace,
        parented under the caller's innermost span.
        """
        if not self._slots.acquire(blocking=False):
            OBS.add("service.rejected.overload")
            raise ApiError(
                429,
                "overloaded",
                "server is at capacity; retry shortly",
                queue_capacity=self.config.queue_capacity,
            )
        trace = OBS.current_trace()
        if trace is not None:
            parent_hint = OBS.current_span_id()
            compute = fn

            def traced() -> Any:
                with OBS.adopt_trace(trace, parent_hint=parent_hint):
                    with OBS.span("service.pool"):
                        return compute()

            fn = traced
        self._bump_depth(+1)
        try:
            future = self._pool.submit(fn)
        except BaseException:
            self._bump_depth(-1)
            self._slots.release()
            raise
        try:
            return future.result()
        finally:
            self._bump_depth(-1)
            self._slots.release()

    def _bump_depth(self, delta: int) -> None:
        with self._depth_lock:
            self._queue_depth += delta
            depth = self._queue_depth
        OBS.set_gauge("service.queue.depth", depth)

    @property
    def queue_depth(self) -> int:
        with self._depth_lock:
            return self._queue_depth

    # -- request accounting (for graceful drain) -----------------------------

    def request_started(self) -> None:
        with self._http_lock:
            self._http_inflight += 1

    def request_finished(self) -> None:
        with self._http_lock:
            self._http_inflight -= 1
            if self._http_inflight <= 0:
                self._idle.notify_all()

    @property
    def inflight_requests(self) -> int:
        with self._http_lock:
            return self._http_inflight

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._http_lock:
            while self._http_inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- fleet topology -------------------------------------------------------

    @property
    def fleet_size(self) -> int:
        """Worker processes in the fleet (1 outside fleet mode)."""
        return max(1, self.config.workers)

    @property
    def is_fleet_worker(self) -> bool:
        """True when this process is one shard of a supervised fleet."""
        return (
            self.fleet_size > 1
            and self.config.shard_index is not None
            and self.config.control_dir is not None
        )

    def peer_shards(self) -> List[int]:
        """Every shard index except this process's own."""
        own = self.config.shard_index
        return [i for i in range(self.fleet_size) if i != own]

    # -- lifecycle -----------------------------------------------------------

    def begin_drain(self) -> None:
        self.draining = True

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def uptime(self) -> float:
        return time.time() - self.started
