"""Endpoint implementations: validated JSON dict in, JSON dict out.

Handlers are plain functions ``(state, body) -> payload`` so the
contract can be tested without sockets; the HTTP layer
(:mod:`repro.service.server`) owns parsing, routing, worker-pool
dispatch and error envelopes.  Anything invalid raises
:class:`~repro.service.state.ApiError` with a structured body.

Each heavy endpoint funnels through the state's
:class:`~repro.service.coalesce.ComputeCache`, so the response carries
``"source"``: ``"lru"`` (served from memory), ``"computed"`` (this
request ran the pipeline) or ``"coalesced"`` (another identical
in-flight request ran it and we shared the result).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ir import BranchSite
from ..learn import (
    DEFAULT_SPLIT,
    LearnedPredictor,
    default_learned_configs,
    fit,
    holdout_trace,
    model_from_json,
    model_to_json,
    parse_learned_name,
    training_cut,
)
from ..learn.serialize import FORMAT_VERSION as MODEL_FORMAT_VERSION
from ..obs import (
    OBS,
    format_span_tree,
    format_traceparent,
    new_span_id,
    render_prometheus,
    trace_chrome_doc,
)
from ..predictors import (
    LastDirection,
    Predictor,
    SaturatingCounter,
    all_yeh_patt_variants,
    evaluate,
    semistatic_suite,
    static_predictors,
    two_level_4k,
)
from ..replication import ReplicationPlanner
from ..replication.tradeoff import TradeoffPoint, tradeoff_curve
from ..statemachines import machine_to_json
from ..statemachines.serialize import FORMAT_VERSION as MACHINE_FORMAT_VERSION
from ..workloads import BENCHMARK_NAMES, artifacts as artifact_store
from ..workloads.benchmarks import WORKLOADS, get_profile, get_program, get_trace
from .control import (
    ControlError,
    control_request,
    fleet_snapshot,
    fleet_statuses,
    socket_path,
)
from .shard import owner_shard, shard_key
from .state import SERVICE_VERSION, ApiError, ServiceState

#: Version of the JSON response envelope every endpoint answers with.
ENVELOPE_VERSION = 1

#: Cap on sites echoed back by /artifacts (benchmarks are small, but
#: the contract should not grow linearly with arbitrary programs).
MAX_TOP_SITES = 20
#: Cap on trade-off points echoed back by /plan.
MAX_CURVE_POINTS = 100
#: Bounds accepted from clients (a 429-guarded server must also bound
#: per-request work, or one request DoSes the pool).
MAX_SCALE = 16
MAX_STATES_LIMIT = 10


# -- response envelope -------------------------------------------------------


def envelope(payload: Any, trace_id: Optional[str] = None) -> dict:
    """Wrap a handler payload in the versioned success envelope.

    Every JSON endpoint answers ``{"v": 1, "ok": true, "data": ...}``;
    handlers keep returning plain payload dicts and the HTTP layer wraps
    at send time (``?raw=1`` skips the wrapping for one release).
    *trace_id* (present whenever the tracing layer is live) names the
    request's distributed trace — resolvable via ``GET /trace/{id}``.
    """
    doc = {"v": ENVELOPE_VERSION, "ok": True, "data": payload}
    if trace_id is not None:
        doc["trace_id"] = trace_id
    return doc


def error_envelope(
    error: Dict[str, Any],
    retry_after: Optional[int] = None,
    trace_id: Optional[str] = None,
) -> dict:
    """Wrap an error body (``ApiError.body()["error"]`` shape) in the v1
    envelope: ``{"v": 1, "ok": false, "error": {"code", "message", ...}}``.

    *retry_after* (seconds) is included for backpressure/drain errors so
    clients can honour it without parsing HTTP headers.
    """
    err = dict(error)
    if retry_after is not None:
        err["retry_after"] = retry_after
    doc = {"v": ENVELOPE_VERSION, "ok": False, "error": err}
    if trace_id is not None:
        doc["trace_id"] = trace_id
    return doc


# -- validation helpers ------------------------------------------------------


def _bad_request(message: str, **details: Any) -> ApiError:
    return ApiError(400, "bad_request", message, **details)


def _get_int(
    body: Dict[str, Any], key: str, default: int, low: int, high: int
) -> int:
    value = body.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad_request(f"{key!r} must be an integer", got=repr(value))
    if not (low <= value <= high):
        raise _bad_request(f"{key!r} must be in [{low}, {high}]", got=value)
    return value


def _get_str(body: Dict[str, Any], key: str) -> str:
    value = body.get(key)
    if not isinstance(value, str) or not value:
        raise _bad_request(f"{key!r} is required and must be a non-empty string")
    return value


def _resolve_benchmark(body: Dict[str, Any]) -> Tuple[str, int, int]:
    name = _get_str(body, "name")
    if name not in BENCHMARK_NAMES:
        raise ApiError(
            404,
            "unknown_benchmark",
            f"unknown benchmark {name!r}",
            available=list(BENCHMARK_NAMES),
        )
    scale = _get_int(body, "scale", 1, 1, MAX_SCALE)
    seed_offset = _get_int(body, "seed_offset", 0, -(2**31), 2**31)
    return name, scale, seed_offset


# -- fleet routing -----------------------------------------------------------


#: Set while a handler runs on behalf of a control-socket ``invoke``.
#: The *proxying* worker already made (and counted) the routing
#: decision, so the owner must compute directly — re-entering
#: ``_shard_route`` would double-count ``service.shard.local`` and, if
#: ownership views ever disagreed mid-resize, proxy in a loop.
_control_invoke = threading.local()


def enter_control_invoke() -> None:
    _control_invoke.active = True


def exit_control_invoke() -> None:
    _control_invoke.active = False


def _shard_route(
    state: ServiceState,
    method: str,
    path: str,
    body: dict,
    name: str,
    scale: int,
    seed_offset: int,
) -> Optional[dict]:
    """Proxy to the artifact's owning shard; ``None`` → compute here.

    The shared listening socket hands a connection to *any* worker, but
    each artifact triple has one rendezvous-hash owner whose caches stay
    hot (see :mod:`repro.service.shard`).  Non-owners forward the call
    over the owner's control socket; the owner's own backpressure and
    error semantics pass through verbatim (a 429 on the owner is a 429
    to the client).  If the owner is unreachable — killed mid-chaos,
    restarting — the accepting worker computes locally instead of
    failing, so a dead shard degrades cache locality, never requests.
    """
    if not state.is_fleet_worker:
        return None
    if getattr(_control_invoke, "active", False):
        return None
    owner = owner_shard(shard_key(name, scale, seed_offset), state.fleet_size)
    if owner == state.config.shard_index:
        OBS.add("service.shard.local")
        return None
    request = {"op": "invoke", "method": method, "path": path, "body": body}
    trace = OBS.current_trace()
    if trace is not None:
        # Carry the trace context across the control-socket hop so the
        # owner's compute spans parent under this request's span.
        parent = OBS.current_span_id() or new_span_id()
        request["traceparent"] = format_traceparent(trace.trace_id, parent)
        request_id = trace.notes.get("request_id")
        if request_id:
            request["request_id"] = request_id
        request["invoked_by"] = state.config.shard_index
    try:
        reply = control_request(
            socket_path(state.config.control_dir, owner), request
        )
    except ControlError:
        OBS.add("service.shard.fallback_local")
        if trace is not None:
            trace.notes["fallback_local"] = True
        return None
    if trace is not None:
        trace.notes["proxied"] = True
        trace.notes["owner"] = owner
    if reply.get("ok"):
        OBS.add("service.shard.proxied")
        payload = dict(reply.get("payload") or {})
        payload["shard"] = {"owner": owner, "proxied_by": state.config.shard_index}
        remote = reply.get("spans")
        if trace is not None and isinstance(remote, list):
            # The owner also keeps its own flight-recorder entry, but a
            # client asking *any* worker for GET /trace/{id} should see
            # the stitched tree even if the owner's ring evicts first.
            trace.add_span_dicts(remote)
        return payload
    error = reply.get("error") or {}
    raise ApiError(
        int(error.get("status", 500)),
        str(error.get("code", "internal")),
        str(error.get("message", "proxied request failed")),
        **dict(error.get("details") or {}),
    )


# -- light endpoints (served inline) -----------------------------------------


def handle_healthz(state: ServiceState, body: Optional[dict]) -> dict:
    return {
        "status": "draining" if state.draining else "ok",
        "service_version": SERVICE_VERSION,
        "uptime_seconds": round(state.uptime(), 3),
        "in_flight": state.inflight_requests,
        "queue_depth": state.queue_depth,
    }


def handle_benchmarks(state: ServiceState, body: Optional[dict]) -> dict:
    return {
        "benchmarks": [
            {
                "name": spec.name,
                "description": spec.description,
                "cached_on_disk": artifact_store.cached_on_disk(spec.name),
            }
            for spec in WORKLOADS.values()
        ]
    }


def handle_stats(state: ServiceState, body: Optional[dict]) -> dict:
    """Fleet-wide statistics (exact; see :func:`fleet_snapshot`).

    In fleet mode, counters and rates are summed across every reachable
    worker and histogram buckets are merged exactly, so p50/p95/p99 are
    the true fleet-wide quantiles — not an average of per-worker
    quantiles.  The ``service`` block stays local to the worker that
    answered (its pool, its queue); ``fleet`` reports the merge.
    """
    snapshot, rates, unreachable = fleet_snapshot(state)
    doc = {
        "uptime_seconds": round(state.uptime(), 3),
        "counters": snapshot.counters,
        "rates": {name: round(value, 3) for name, value in rates.items()},
        "histograms": {
            name: {
                "count": hist.count,
                "p50": hist.quantile(0.50),
                "p95": hist.quantile(0.95),
                "p99": hist.quantile(0.99),
            }
            for name, hist in sorted(snapshot.hists.items())
        },
        "spans_recorded": len(snapshot.spans),
        "service": {
            "in_flight": state.inflight_requests,
            "queue_depth": state.queue_depth,
            "queue_capacity": state.config.queue_capacity,
            "draining": state.draining,
            "cache_sizes": {
                cache.name: len(cache)
                for cache in (
                    state.artifacts,
                    state.predictions,
                    state.planners,
                    state.plans,
                    state.models,
                )
            },
        },
    }
    if state.is_fleet_worker:
        doc["fleet"] = {
            "workers": state.fleet_size,
            "answered_by": state.config.shard_index,
            "merged_workers": state.fleet_size - len(unreachable),
            "unreachable": unreachable,
        }
    return doc


def handle_fleet(state: ServiceState, body: Optional[dict]) -> dict:
    """Per-worker fleet roster: who is alive, on which pid, how busy.

    Outside fleet mode this is a one-row roster for the single process.
    """
    entries, unreachable = fleet_statuses(state)
    return {
        "workers": state.fleet_size,
        "answered_by": state.config.shard_index,
        "as_of": OBS.epoch(),
        "alive": len(entries),
        "unreachable": unreachable,
        "fleet": [
            {
                "shard": entry.get("shard"),
                "pid": entry.get("pid"),
                "as_of": entry.get("as_of"),
                "uptime_seconds": entry.get("uptime_seconds"),
                "inflight": entry.get("inflight"),
                "draining": entry.get("draining"),
                "requests": entry.get("requests"),
                "latency_p95_ms": entry.get("latency_p95_ms"),
            }
            for entry in entries
        ],
    }


def render_metrics(state: ServiceState) -> str:
    """The Prometheus text exposition body for ``GET /metrics``.

    Refreshes the level gauges (uptime, in-flight, queue depth) so a
    scrape never reads a stale level, then renders the fleet-merged
    snapshot plus the summed sliding-window rates.  Histogram buckets
    merge exactly across workers, so quantiles derived from the
    exposition are fleet-exact; gauges are last-write-wins and reflect
    one worker (scrape ``/fleet`` for per-worker levels).

    When the flight recorder is live, latency buckets carry OpenMetrics
    exemplars — one kept trace id per bucket — so a dashboard can jump
    from a latency spike straight to ``GET /trace/{id}``.
    """
    OBS.set_gauge("service.uptime_seconds", round(state.uptime(), 3))
    OBS.set_gauge("service.inflight_requests", state.inflight_requests)
    OBS.set_gauge("service.queue.depth", state.queue_depth)
    snapshot, rates, _ = fleet_snapshot(state)
    exemplars = None
    if state.flight.enabled:
        bucket_exemplars = state.flight.exemplars()
        if bucket_exemplars:
            exemplars = {"service.latency_seconds": bucket_exemplars}
    return render_prometheus(snapshot, rates=rates, exemplars=exemplars)


# -- distributed traces (flight recorder) ------------------------------------


def _valid_trace_id(raw: Any) -> str:
    trace_id = str(raw or "").strip().lower()
    if len(trace_id) != 32 or any(c not in "0123456789abcdef" for c in trace_id):
        raise _bad_request(
            "'trace_id' must be 32 lowercase hex characters", got=str(raw)[:64]
        )
    return trace_id


def handle_trace(state: ServiceState, body: Optional[dict]) -> dict:
    """``GET /trace/{id}``: the stitched, fleet-wide view of one trace.

    Any worker answers: it merges its own flight-recorder entry with
    every reachable peer's (``trace`` control op), dedups spans by span
    id (the proxy's entry already embeds owner spans returned over the
    invoke hop), and renders one tree plus a Chrome/Perfetto document.
    404 ``trace_not_found`` when no worker retained the id — dropped by
    tail-sampling or already evicted from the bounded rings.
    """
    trace_id = _valid_trace_id((body or {}).get("trace_id"))
    holders: List[Tuple[Optional[int], dict]] = []
    local = state.flight.get(trace_id)
    if local is not None:
        holders.append((state.config.shard_index, local))
    unreachable: List[int] = []
    if state.is_fleet_worker:
        for shard in state.peer_shards():
            try:
                reply = control_request(
                    socket_path(state.config.control_dir, shard),
                    {"op": "trace", "trace_id": trace_id},
                )
            except ControlError:
                unreachable.append(shard)
                continue
            entry = reply.get("entry")
            if reply.get("ok") and isinstance(entry, dict):
                holders.append((shard, entry))
    if not holders:
        raise ApiError(
            404,
            "trace_not_found",
            f"no worker retained trace {trace_id!r} "
            "(not sampled, or evicted from the flight-recorder ring)",
            unreachable=unreachable,
        )
    spans: List[dict] = []
    seen: set = set()
    for _, entry in holders:
        for span in entry.get("spans") or []:
            span_id = span.get("span_id")
            if span_id is not None and span_id in seen:
                continue
            if span_id is not None:
                seen.add(span_id)
            spans.append(span)
    spans.sort(key=lambda s: (s.get("start") or 0.0))
    pids = sorted({s.get("pid") for s in spans if s.get("pid") is not None})
    # The entry recorded by the client-facing worker (the one whose
    # notes lack the owner marker) describes the request end to end.
    primary = next(
        (entry for _, entry in holders if not (entry.get("notes") or {}).get("owner")),
        holders[0][1],
    )
    return {
        "trace_id": trace_id,
        "route": primary.get("route"),
        "status": primary.get("status"),
        "duration_ms": primary.get("duration_ms"),
        "request_id": primary.get("request_id"),
        "kept": primary.get("kept"),
        "notes": primary.get("notes") or {},
        "workers": [shard for shard, _ in holders],
        "pids": pids,
        "unreachable": unreachable,
        "spans": spans,
        "tree": format_span_tree(spans),
        "chrome": trace_chrome_doc(trace_id, spans),
    }


def handle_debug_traces(state: ServiceState, body: Optional[dict]) -> dict:
    """``GET /debug/traces``: every worker's flight-recorder ring, newest
    first — the index you browse before ``GET /trace/{id}``."""
    recorders = [
        {
            "shard": state.config.shard_index,
            "retained": len(state.flight),
            "traces": state.flight.summaries(),
        }
    ]
    unreachable: List[int] = []
    if state.is_fleet_worker:
        for shard in state.peer_shards():
            try:
                reply = control_request(
                    socket_path(state.config.control_dir, shard),
                    {"op": "traces"},
                )
            except ControlError:
                unreachable.append(shard)
                continue
            if reply.get("ok"):
                recorders.append(
                    {
                        "shard": shard,
                        "retained": reply.get("retained", 0),
                        "traces": reply.get("traces") or [],
                    }
                )
    return {
        "enabled": state.flight.enabled,
        "sample_rate": state.flight.sample_rate,
        "slow_threshold_ms": round(state.flight.slow_threshold * 1e3, 3),
        "capacity": state.flight.capacity,
        "answered_by": state.config.shard_index,
        "unreachable": unreachable,
        "recorders": recorders,
    }


# -- heavy endpoints (worker pool + compute caches) --------------------------


def _artifact_summary(name: str, scale: int, seed_offset: int) -> dict:
    profile = get_profile(name, scale, seed_offset)
    steps = artifact_store.get_artifacts(
        name, scale=scale, seed_offset=seed_offset
    ).steps
    ranked = sorted(
        profile.totals.items(), key=lambda item: -(item[1][0] + item[1][1])
    )
    return {
        "benchmark": name,
        "scale": scale,
        "seed_offset": seed_offset,
        "events": profile.events,
        "steps": steps,
        "sites": len(profile.totals),
        "top_sites": [
            {
                "site": str(site),
                "executions": counts[0] + counts[1],
                "taken": counts[1],
                "taken_rate": round(counts[1] / max(counts[0] + counts[1], 1), 6),
            }
            for site, counts in ranked[:MAX_TOP_SITES]
        ],
    }


def handle_artifacts(state: ServiceState, body: dict) -> dict:
    name, scale, seed_offset = _resolve_benchmark(body)
    proxied = _shard_route(state, "POST", "/artifacts", body, name, scale, seed_offset)
    if proxied is not None:
        return proxied
    key = (name, scale, seed_offset)
    summary, source = state.artifacts.get(
        key,
        lambda: state.run_heavy(lambda: _artifact_summary(name, scale, seed_offset)),
    )
    return dict(summary, source=source)


def _build_zoo(name: str, scale: int, seed_offset: int) -> Dict[str, Predictor]:
    """Fresh instances of the whole predictor zoo, keyed by name.

    Fresh per call because dynamic predictors carry run-time state; the
    evaluation result is what gets cached, never the predictor.
    """
    program = get_program(name)
    profile = get_profile(name, scale, seed_offset)
    zoo: List[Predictor] = [
        *static_predictors(program),
        *semistatic_suite(profile),
        LastDirection(),
        SaturatingCounter(2),
        *all_yeh_patt_variants().values(),
        two_level_4k(),
    ]
    return {predictor.name: predictor for predictor in zoo}


def _evaluate_predictor(
    name: str, scale: int, seed_offset: int, predictor_name: str
) -> dict:
    zoo = _build_zoo(name, scale, seed_offset)
    predictor = zoo.get(predictor_name)
    if predictor is None:
        raise ApiError(
            404,
            "unknown_predictor",
            f"unknown predictor {predictor_name!r}",
            available=sorted(zoo),
        )
    trace = get_trace(name, scale, seed_offset)
    result = evaluate(predictor, trace)
    sites = []
    predictor.reset()
    for site in sorted(result.per_site, key=str):
        stats = result.per_site[site]
        entry = {
            "site": str(site),
            "executions": stats.executions,
            "mispredictions": stats.mispredictions,
            "rate": round(stats.rate, 6),
        }
        if predictor.order_independent:
            # A static prediction is a per-site constant — expose the
            # direction the compiler would emit.
            entry["predicted_taken"] = predictor.predict(site)
        sites.append(entry)
    return {
        "benchmark": name,
        "scale": scale,
        "seed_offset": seed_offset,
        "predictor": predictor.name,
        "order_independent": predictor.order_independent,
        "events": result.events,
        "mispredictions": result.mispredictions,
        "misprediction_rate": round(result.misprediction_rate, 6),
        "accuracy": round(result.accuracy, 6),
        "sites": sites,
    }


def handle_predict(state: ServiceState, body: dict) -> dict:
    name, scale, seed_offset = _resolve_benchmark(body)
    proxied = _shard_route(state, "POST", "/predict", body, name, scale, seed_offset)
    if proxied is not None:
        return proxied
    predictor_name = _get_str(body, "predictor")
    key = (name, scale, seed_offset, predictor_name)
    if _learned_config(predictor_name) is not None:
        payload, source = state.predictions.get(
            key,
            lambda: state.run_heavy(
                lambda: _learned_prediction(
                    state, name, scale, seed_offset, predictor_name
                )
            ),
        )
        return dict(payload, source=source)
    payload, source = state.predictions.get(
        key,
        lambda: state.run_heavy(
            lambda: _evaluate_predictor(name, scale, seed_offset, predictor_name)
        ),
    )
    return dict(payload, source=source)


# -- learned models (train-as-a-service) -------------------------------------


def _learned_config(predictor_name: str):
    """Parse a ``learned-*`` predictor name; names in the learned
    namespace with invalid parameters are a 400, anything else is
    ``None`` (→ the classic zoo)."""
    try:
        return parse_learned_name(predictor_name)
    except ValueError as error:
        raise _bad_request(str(error), predictor=predictor_name)


def _get_split(body: Dict[str, Any]) -> float:
    value = body.get("split", DEFAULT_SPLIT)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad_request("'split' must be a number in (0, 1]", got=repr(value))
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise _bad_request("'split' must be in (0, 1]", got=value)
    return value


def _train_model(
    name: str, scale: int, seed_offset: int, config, split: float
) -> dict:
    """Train one model and summarise it (runs on the worker pool; the
    result is what the models cache stores)."""
    from time import perf_counter

    trace = get_trace(name, scale, seed_offset)
    started = perf_counter()
    model = fit(trace.columns(), config, split)
    OBS.observe("learn.train_seconds", perf_counter() - started)
    OBS.add("learn.train.fits")
    train_events = training_cut(len(trace), split)
    OBS.add("learn.train.events", train_events)
    payload = {
        "benchmark": name,
        "scale": scale,
        "seed_offset": seed_offset,
        "predictor": config.name,
        "split": split,
        "train_events": train_events,
        "sites_learned": len(model.sites),
        "model_format_version": MODEL_FORMAT_VERSION,
        "model": json.loads(model_to_json(model)),
    }
    if split < 1.0:
        holdout = holdout_trace(trace, split)
        result = evaluate(LearnedPredictor(model), holdout)
        payload["holdout"] = {
            "events": result.events,
            "mispredictions": result.mispredictions,
            "misprediction_rate": round(result.misprediction_rate, 6),
            "accuracy": round(result.accuracy, 6),
        }
    return payload


def _learned_prediction(
    state: ServiceState, name: str, scale: int, seed_offset: int, predictor_name: str
) -> dict:
    """Evaluate a learned predictor on the holdout suffix, training (or
    fetching) the model through the models cache.

    Already running on the worker pool, so the nested cache compute must
    not re-enter ``run_heavy`` — a second slot acquisition under load
    would turn one admitted request into a spurious 429.
    """
    config = _learned_config(predictor_name)
    key = (name, scale, seed_offset, predictor_name, DEFAULT_SPLIT)
    trained, _ = state.models.get(
        key,
        lambda: _train_model(name, scale, seed_offset, config, DEFAULT_SPLIT),
    )
    # Deploy from the wire format, not a live object: the cache holds
    # the JSON-able /train payload (it may have crossed a shard proxy),
    # and round-tripping guarantees served predictions match what a
    # client downloading the model would compute.
    model = model_from_json(json.dumps(trained["model"]))
    trace = get_trace(name, scale, seed_offset)
    result = evaluate(LearnedPredictor(model), holdout_trace(trace, DEFAULT_SPLIT))
    return {
        "benchmark": name,
        "scale": scale,
        "seed_offset": seed_offset,
        "predictor": predictor_name,
        "order_independent": False,
        "events": result.events,
        "mispredictions": result.mispredictions,
        "misprediction_rate": round(result.misprediction_rate, 6),
        "accuracy": round(result.accuracy, 6),
        "sites": [
            {
                "site": str(site),
                "executions": result.per_site[site].executions,
                "mispredictions": result.per_site[site].mispredictions,
                "rate": round(result.per_site[site].rate, 6),
            }
            for site in sorted(result.per_site, key=str)
        ],
        "learned": {
            "split": trained["split"],
            "train_events": trained["train_events"],
            "sites_learned": trained["sites_learned"],
            "model_format_version": trained["model_format_version"],
        },
    }


def handle_train(state: ServiceState, body: dict) -> dict:
    name, scale, seed_offset = _resolve_benchmark(body)
    proxied = _shard_route(state, "POST", "/train", body, name, scale, seed_offset)
    if proxied is not None:
        return proxied
    predictor_name = _get_str(body, "predictor")
    config = _learned_config(predictor_name)
    if config is None:
        raise ApiError(
            404,
            "unknown_predictor",
            f"{predictor_name!r} is not a learned predictor "
            "(expected learned-<kind>-<scope>-<k>bit)",
            available=[config.name for config in default_learned_configs()],
        )
    split = _get_split(body)
    key = (name, scale, seed_offset, predictor_name, split)
    payload, source = state.models.get(
        key,
        lambda: state.run_heavy(
            lambda: _train_model(name, scale, seed_offset, config, split)
        ),
    )
    OBS.add("learn.train.requests")
    return dict(payload, source=source)


def _get_planner(
    state: ServiceState, name: str, scale: int, seed_offset: int, max_states: int
) -> Tuple[ReplicationPlanner, str]:
    key = (name, scale, seed_offset, max_states)
    return state.planners.get(
        key,
        lambda: state.run_heavy(
            lambda: ReplicationPlanner(
                get_program(name),
                get_profile(name, scale, seed_offset),
                max_states,
            )
        ),
    )


def handle_machine(state: ServiceState, body: dict) -> dict:
    name, scale, seed_offset = _resolve_benchmark(body)
    proxied = _shard_route(state, "POST", "/machine", body, name, scale, seed_offset)
    if proxied is not None:
        return proxied
    max_states = _get_int(body, "max_states", 6, 2, MAX_STATES_LIMIT)
    planner, source = _get_planner(state, name, scale, seed_offset, max_states)
    site_spec = body.get("site")
    if site_spec is not None:
        if not isinstance(site_spec, str) or ":" not in site_spec:
            raise _bad_request("'site' must be a 'function:block' string")
        function, _, block = site_spec.partition(":")
        site = BranchSite(function, block)
        plan = planner.plans.get(site)
        if plan is None:
            raise ApiError(
                404,
                "unknown_site",
                f"no executed branch {site_spec!r} in {name!r}",
                available=sorted(str(s) for s in planner.plans),
            )
    else:
        improvable = planner.improvable_plans()
        if not improvable:
            raise ApiError(
                404,
                "no_improvable_branch",
                f"no branch of {name!r} improves on profile prediction",
            )
        plan = max(improvable, key=lambda p: p.executions)
    option = plan.best_option(max_states)
    if option is None:
        raise ApiError(
            404,
            "no_machine",
            f"no machine with <= {max_states} states beats profile "
            f"prediction for {plan.site}",
        )
    return {
        "benchmark": name,
        "scale": scale,
        "seed_offset": seed_offset,
        "site": str(plan.site),
        "branch_class": plan.info.kind.value,
        "executions": plan.executions,
        "profile_correct": plan.profile_correct,
        "n_states": option.n_states,
        "family": option.family,
        "correct": option.correct,
        "extra_size": option.extra_size,
        "machine_format_version": MACHINE_FORMAT_VERSION,
        "machine": json.loads(machine_to_json(option.scored.machine)),
        "source": source,
    }


def _curve_payload(
    planner: ReplicationPlanner, points: List[TradeoffPoint]
) -> dict:
    def point_doc(point: TradeoffPoint) -> dict:
        doc = {
            "size": point.size,
            "size_factor": round(point.size_factor, 6),
            "mispredictions": point.mispredictions,
            "misprediction_rate": round(point.misprediction_rate, 6),
        }
        if point.step is not None:
            site, n_states = point.step
            doc["step"] = {"site": str(site), "n_states": n_states}
        return doc

    total = planner.total_executions()
    return {
        "branches": len(planner.plans),
        "improvable_branches": len(planner.improvable_plans()),
        "total_executions": total,
        "profile_misprediction_rate": round(points[0].misprediction_rate, 6),
        "upgrades": len(points) - 1,
        "final": point_doc(points[-1]),
        "truncated": len(points) > MAX_CURVE_POINTS,
        "curve": [point_doc(p) for p in points[:MAX_CURVE_POINTS]],
    }


def handle_plan(state: ServiceState, body: dict) -> dict:
    name, scale, seed_offset = _resolve_benchmark(body)
    proxied = _shard_route(state, "POST", "/plan", body, name, scale, seed_offset)
    if proxied is not None:
        return proxied
    max_states = _get_int(body, "max_states", 6, 2, MAX_STATES_LIMIT)
    max_size_factor = body.get("max_size_factor")
    if max_size_factor is not None:
        if isinstance(max_size_factor, bool) or not isinstance(
            max_size_factor, (int, float)
        ):
            raise _bad_request("'max_size_factor' must be a number")
        max_size_factor = float(max_size_factor)
        if not (1.0 <= max_size_factor <= 100.0):
            raise _bad_request(
                "'max_size_factor' must be in [1.0, 100.0]", got=max_size_factor
            )
    key = (name, scale, seed_offset, max_states, max_size_factor)

    def compute() -> dict:
        planner, _ = _get_planner(state, name, scale, seed_offset, max_states)
        points = state.run_heavy(lambda: tradeoff_curve(planner, max_size_factor))
        payload = _curve_payload(planner, points)
        payload.update(
            benchmark=name,
            scale=scale,
            seed_offset=seed_offset,
            max_states=max_states,
            max_size_factor=max_size_factor,
        )
        return payload

    payload, source = state.plans.get(key, compute)
    return dict(payload, source=source)


# -- routing table -----------------------------------------------------------

Handler = Callable[[ServiceState, Optional[dict]], dict]

ROUTES: Dict[Tuple[str, str], Handler] = {
    ("GET", "/healthz"): handle_healthz,
    ("GET", "/benchmarks"): handle_benchmarks,
    ("GET", "/stats"): handle_stats,
    ("GET", "/fleet"): handle_fleet,
    ("GET", "/debug/traces"): handle_debug_traces,
    ("POST", "/artifacts"): handle_artifacts,
    ("POST", "/predict"): handle_predict,
    ("POST", "/machine"): handle_machine,
    ("POST", "/plan"): handle_plan,
    ("POST", "/train"): handle_train,
}

#: Paths that exist (for 405-vs-404 discrimination).  /metrics and
#: /debug/profile are served as raw text by the HTTP layer, and
#: /trace/{id} is a prefix route — all outside the JSON ROUTES table.
KNOWN_PATHS = {path for _, path in ROUTES} | {"/metrics", "/debug/profile"}


def route_name(path: str) -> str:
    """``/artifacts`` → ``artifacts`` (obs counter suffix)."""
    return path.strip("/").replace("/", ".") or "root"
