"""Branch prediction strategies and the evaluation engine."""

from .base import EvaluationResult, Predictor, SiteStats, evaluate
from .dynamic import LastDirection, SaturatingCounter
from .engine import EngineStats, engine_stats, evaluate_many, reset_engine_stats
from .semistatic import (
    CorrelationPredictor,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    semistatic_suite,
)
from .static import (
    AlwaysNotTaken,
    AlwaysTaken,
    FixedMapPredictor,
    backward_taken,
    ball_larus,
    opcode_heuristic,
    static_predictors,
)
from .twolevel import (
    TwoLevelConfig,
    TwoLevelPredictor,
    all_yeh_patt_variants,
    two_level_4k,
)

__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "CorrelationPredictor",
    "EngineStats",
    "EvaluationResult",
    "FixedMapPredictor",
    "LastDirection",
    "LoopCorrelationPredictor",
    "LoopPredictor",
    "Predictor",
    "ProfilePredictor",
    "SaturatingCounter",
    "SiteStats",
    "TwoLevelConfig",
    "TwoLevelPredictor",
    "all_yeh_patt_variants",
    "backward_taken",
    "ball_larus",
    "engine_stats",
    "evaluate",
    "evaluate_many",
    "opcode_heuristic",
    "reset_engine_stats",
    "semistatic_suite",
    "static_predictors",
    "two_level_4k",
]
