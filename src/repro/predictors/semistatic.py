"""Semi-static (profile-based) prediction strategies (Sections 2.2, 3).

All of these are trained from a :class:`~repro.profiling.ProfileData`
and then evaluated on a trace.  During evaluation they still track
history registers — not as learned state (the predictions are frozen at
"compile time") but because the *pattern* the program is in selects
which frozen prediction applies.  Code replication is exactly the
technique that realises this pattern-tracking in the program counter.

Strategies:

* :class:`ProfilePredictor` — "predict the most frequent direction".
* :class:`CorrelationPredictor` — "predict using one global k-bit
  history register" (the *correlated branch strategy*).
* :class:`LoopPredictor` — "use k-bit history registers for every
  branch" (the *loop branch strategy*).
* :class:`LoopCorrelationPredictor` — per branch, "the best of 1-bit
  correlation and 9-bit loop".
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir import BranchSite
from ..profiling import ProfileData
from .base import Predictor


def _majority_map(counts: Dict[int, list]) -> Dict[int, bool]:
    """pattern -> majority direction (ties predict taken)."""
    return {pattern: entry[1] >= entry[0] for pattern, entry in counts.items()}


class ProfilePredictor(Predictor):
    """Per-branch most-frequent direction from the training profile."""

    order_independent = True

    def __init__(self, profile: ProfileData, default: bool = True) -> None:
        super().__init__("profile")
        self.default = default
        self._bias: Dict[BranchSite, bool] = {
            site: counts[1] >= counts[0] for site, counts in profile.totals.items()
        }

    def predict(self, site: BranchSite) -> bool:
        return self._bias.get(site, self.default)


class CorrelationPredictor(Predictor):
    """k-bit *global* history, per-branch pattern table, frozen majority
    predictions.  Falls back to the branch bias on unseen patterns."""

    def __init__(self, profile: ProfileData, bits: int = 1, default: bool = True) -> None:
        if bits > profile.global_bits:
            raise ValueError(
                f"profile holds {profile.global_bits} global history bits, "
                f"requested {bits}"
            )
        super().__init__(f"{bits}-bit-correlation")
        self.bits = bits
        self.default = default
        self._mask = (1 << bits) - 1
        self._tables: Dict[BranchSite, Dict[int, bool]] = {}
        self._bias: Dict[BranchSite, bool] = {}
        for site, table in profile.global_tables.items():
            short = table.marginalize(bits)
            self._tables[site] = _majority_map(short.counts)
            not_taken, taken = profile.totals[site]
            self._bias[site] = taken >= not_taken
        self._history = 0

    def reset(self) -> None:
        self._history = 0

    def predict(self, site: BranchSite) -> bool:
        table = self._tables.get(site)
        if table is not None:
            guess = table.get(self._history & self._mask)
            if guess is not None:
                return guess
            return self._bias[site]
        return self.default

    def update(self, site: BranchSite, taken: bool) -> None:
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask

    def make_stepper(self, sites):
        tables = [self._tables.get(site) for site in sites]
        bias = [self._bias.get(site) for site in sites]
        default = self.default
        mask = self._mask
        history = self._history

        def step(sid: int, direction: int) -> bool:
            nonlocal history
            table = tables[sid]
            if table is None:
                guess = default
            else:
                guess = table.get(history)
                if guess is None:
                    guess = bias[sid]
            history = ((history << 1) | direction) & mask
            return guess != direction

        return step


class LoopPredictor(Predictor):
    """k-bit *local* (per-branch) history, frozen majority predictions."""

    def __init__(self, profile: ProfileData, bits: int = 9, default: bool = True) -> None:
        if bits > profile.local_bits:
            raise ValueError(
                f"profile holds {profile.local_bits} local history bits, "
                f"requested {bits}"
            )
        super().__init__(f"{bits}-bit-loop")
        self.bits = bits
        self.default = default
        self._mask = (1 << bits) - 1
        self._tables: Dict[BranchSite, Dict[int, bool]] = {}
        self._bias: Dict[BranchSite, bool] = {}
        for site, table in profile.local.items():
            short = table.marginalize(bits)
            self._tables[site] = _majority_map(short.counts)
            not_taken, taken = profile.totals[site]
            self._bias[site] = taken >= not_taken
        self._histories: Dict[BranchSite, int] = {}

    def reset(self) -> None:
        self._histories = {}

    def predict(self, site: BranchSite) -> bool:
        table = self._tables.get(site)
        if table is None:
            return self.default
        guess = table.get(self._histories.get(site, 0))
        if guess is None:
            return self._bias[site]
        return guess

    def update(self, site: BranchSite, taken: bool) -> None:
        history = self._histories.get(site, 0)
        self._histories[site] = ((history << 1) | (1 if taken else 0)) & self._mask

    def make_stepper(self, sites):
        tables = [self._tables.get(site) for site in sites]
        bias = [self._bias.get(site) for site in sites]
        histories = [0] * len(sites)
        default = self.default
        mask = self._mask

        def step(sid: int, direction: int) -> bool:
            history = histories[sid]
            histories[sid] = ((history << 1) | direction) & mask
            table = tables[sid]
            if table is None:
                return default != direction
            guess = table.get(history)
            if guess is None:
                guess = bias[sid]
            return guess != direction

        return step


class LoopCorrelationPredictor(Predictor):
    """Per branch, the better of the correlation and loop strategies.

    The choice is made at training time by comparing, per site, the
    number of correct predictions each strategy would have achieved on
    the training trace (per-pattern majority counts).
    """

    def __init__(
        self,
        profile: ProfileData,
        correlation_bits: int = 1,
        loop_bits: int = 9,
        default: bool = True,
    ) -> None:
        super().__init__("loop-correlation")
        self.default = default
        self.correlation = CorrelationPredictor(profile, correlation_bits, default)
        self.loop = LoopPredictor(profile, loop_bits, default)
        self.choice: Dict[BranchSite, str] = {}
        for site in profile.totals:
            corr = (
                profile.global_tables[site]
                .marginalize(correlation_bits)
                .correct_if_per_pattern()
            )
            loop = (
                profile.local[site].marginalize(loop_bits).correct_if_per_pattern()
            )
            self.choice[site] = "loop" if loop >= corr else "correlation"

    def reset(self) -> None:
        self.correlation.reset()
        self.loop.reset()

    def predict(self, site: BranchSite) -> bool:
        choice = self.choice.get(site)
        if choice == "loop":
            return self.loop.predict(site)
        if choice == "correlation":
            return self.correlation.predict(site)
        return self.default

    def update(self, site: BranchSite, taken: bool) -> None:
        self.correlation.update(site, taken)
        self.loop.update(site, taken)

    def make_stepper(self, sites):
        # Both sub-predictors update their histories on every event (the
        # sequential semantics), but only the chosen one's guess counts.
        selectors = {"loop": 0, "correlation": 1}
        chosen = [selectors.get(self.choice.get(site), 2) for site in sites]
        default = self.default
        corr_step = self.correlation.make_stepper(sites)
        loop_step = self.loop.make_stepper(sites)

        def step(sid: int, direction: int) -> bool:
            corr_wrong = corr_step(sid, direction)
            loop_wrong = loop_step(sid, direction)
            choice = chosen[sid]
            if choice == 0:
                return loop_wrong
            if choice == 1:
                return corr_wrong
            return default != direction

        return step

    def improved_sites(self, profile: ProfileData) -> Dict[BranchSite, int]:
        """Sites where the chosen strategy beats plain profile on the
        training data, with the number of extra correct predictions —
        the paper's "improved branches" row in Table 1."""
        improved: Dict[BranchSite, int] = {}
        for site in profile.totals:
            base = max(profile.totals[site])
            if self.choice[site] == "loop":
                best = (
                    profile.local[site]
                    .marginalize(self.loop.bits)
                    .correct_if_per_pattern()
                )
            else:
                best = (
                    profile.global_tables[site]
                    .marginalize(self.correlation.bits)
                    .correct_if_per_pattern()
                )
            if best > base:
                improved[site] = best - base
        return improved


def semistatic_suite(profile: ProfileData) -> Tuple[Predictor, ...]:
    """The semi-static strategies of Table 1, in row order."""
    return (
        ProfilePredictor(profile),
        CorrelationPredictor(profile, 1),
        LoopPredictor(profile, 1),
        LoopPredictor(profile, 9),
        LoopCorrelationPredictor(profile),
    )
