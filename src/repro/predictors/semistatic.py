"""Semi-static (profile-based) prediction strategies (Sections 2.2, 3).

All of these are trained from a :class:`~repro.profiling.ProfileData`
and then evaluated on a trace.  During evaluation they still track
history registers — not as learned state (the predictions are frozen at
"compile time") but because the *pattern* the program is in selects
which frozen prediction applies.  Code replication is exactly the
technique that realises this pattern-tracking in the program counter.

Strategies:

* :class:`ProfilePredictor` — "predict the most frequent direction".
* :class:`CorrelationPredictor` — "predict using one global k-bit
  history register" (the *correlated branch strategy*).
* :class:`LoopPredictor` — "use k-bit history registers for every
  branch" (the *loop branch strategy*).
* :class:`LoopCorrelationPredictor` — per branch, "the best of 1-bit
  correlation and 9-bit loop".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import BranchSite
from ..profiling import ProfileData
from .base import Predictor
from .kernels import bincount_bool, fixed_guess_wrongs, history_pack


def _majority_map(counts: Dict[int, list]) -> Dict[int, bool]:
    """pattern -> majority direction (ties predict taken)."""
    return {pattern: entry[1] >= entry[0] for pattern, entry in counts.items()}


def _pattern_rows(
    sites, tables, bias, bits: int, default: bool
) -> List[Optional[List[int]]]:
    """Per site id, the frozen pattern -> guess lookup row.

    ``None`` marks an unprofiled site (always guess *default*); a row is
    ``2**bits`` guesses, pre-filled with the site's bias so unseen
    patterns fall back exactly like ``predict`` does.
    """
    mask = (1 << bits) - 1
    rows: List[Optional[List[int]]] = []
    for site in sites:
        table = tables.get(site)
        if table is None:
            rows.append(None)
            continue
        row = [1 if bias[site] else 0] * (1 << bits)
        for pattern, guess in table.items():
            if 0 <= pattern <= mask:
                row[pattern] = 1 if guess else 0
        rows.append(row)
    return rows


def _pattern_lut(np, sites, tables, bias, bits: int, default: bool):
    """The frozen lookup as one ``(site, pattern) -> guess`` uint8 grid.

    Unprofiled sites' rows are the *default* guess everywhere — a fixed
    guess ignores the history, so a constant row reproduces it exactly.
    """
    mask = (1 << bits) - 1
    lut = np.full((len(sites), 1 << bits), 1 if default else 0, dtype=np.uint8)
    for sid, site in enumerate(sites):
        table = tables.get(site)
        if table is None:
            continue
        row = lut[sid]
        row[:] = 1 if bias[site] else 0
        for pattern, guess in table.items():
            if 0 <= pattern <= mask:
                row[pattern] = 1 if guess else 0
    return lut


def _cached_flat_lut(predictor, np, columns):
    """The predictor's flat ``(site << bits) | pattern -> guess`` lookup
    for this trace's site list, built once per (predictor, site list).

    The tables are frozen at construction, so the grid only varies with
    the trace's interning order; keying by the site tuple keeps repeated
    evaluations (other traces, repeated runs) from re-walking the
    Python-dict tables.
    """
    key = tuple(columns.sites)
    cache = predictor.__dict__.setdefault("_lut_cache", {})
    lut = cache.get(key)
    if lut is None:
        lut = _pattern_lut(
            np,
            columns.sites,
            predictor._tables,
            predictor._bias,
            predictor.bits,
            predictor.default,
        ).reshape(-1)
        cache[key] = lut
    return lut


def _default_wrongs(columns, sid: int, default: bool) -> int:
    """Mispredictions of a fixed *default* guess at site *sid*."""
    executions = columns.site_executions().get(sid, 0)
    taken = columns.site_taken()[sid]
    return executions - taken if default else taken


class ProfilePredictor(Predictor):
    """Per-branch most-frequent direction from the training profile."""

    order_independent = True

    def __init__(self, profile: ProfileData, default: bool = True) -> None:
        super().__init__("profile")
        self.default = default
        self._bias: Dict[BranchSite, bool] = {
            site: counts[1] >= counts[0] for site, counts in profile.totals.items()
        }

    def predict(self, site: BranchSite) -> bool:
        return self._bias.get(site, self.default)

    def step_batch(self, columns) -> List[int]:
        return fixed_guess_wrongs(
            columns,
            [self._bias.get(site, self.default) for site in columns.sites],
        )


class CorrelationPredictor(Predictor):
    """k-bit *global* history, per-branch pattern table, frozen majority
    predictions.  Falls back to the branch bias on unseen patterns."""

    def __init__(self, profile: ProfileData, bits: int = 1, default: bool = True) -> None:
        if bits > profile.global_bits:
            raise ValueError(
                f"profile holds {profile.global_bits} global history bits, "
                f"requested {bits}"
            )
        super().__init__(f"{bits}-bit-correlation")
        self.bits = bits
        self.default = default
        self._mask = (1 << bits) - 1
        self._tables: Dict[BranchSite, Dict[int, bool]] = {}
        self._bias: Dict[BranchSite, bool] = {}
        for site, table in profile.global_tables.items():
            short = table.marginalize(bits)
            self._tables[site] = _majority_map(short.counts)
            not_taken, taken = profile.totals[site]
            self._bias[site] = taken >= not_taken
        self._history = 0

    def reset(self) -> None:
        self._history = 0

    def predict(self, site: BranchSite) -> bool:
        table = self._tables.get(site)
        if table is not None:
            guess = table.get(self._history & self._mask)
            if guess is not None:
                return guess
            return self._bias[site]
        return self.default

    def update(self, site: BranchSite, taken: bool) -> None:
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask

    def make_stepper(self, sites):
        tables = [self._tables.get(site) for site in sites]
        bias = [self._bias.get(site) for site in sites]
        default = self.default
        mask = self._mask
        history = self._history

        def step(sid: int, direction: int) -> bool:
            nonlocal history
            table = tables[sid]
            if table is None:
                guess = default
            else:
                guess = table.get(history)
                if guess is None:
                    guess = bias[sid]
            history = ((history << 1) | direction) & mask
            return guess != direction

        return step

    def step_batch(self, columns) -> List[int]:
        # One *global* register: its contents before event t are just
        # the previous k outcomes of the whole stream, so the entire
        # history column vectorizes and the frozen tables become one
        # (site, pattern) lookup.
        counts = [0] * columns.n_sites
        if columns.n_events == 0:
            return counts
        bits = self.bits
        default = 1 if self.default else 0
        np = columns.np
        if np is None:
            rows = _pattern_rows(
                columns.sites, self._tables, self._bias, bits, self.default
            )
            mask = self._mask
            history = 0
            for sid, direction in zip(columns.site_ids, columns.directions):
                row = rows[sid]
                guess = default if row is None else row[history]
                if guess != direction:
                    counts[sid] += 1
                history = ((history << 1) | direction) & mask
            return counts
        lut = _cached_flat_lut(self, np, columns)

        def build_index():
            histories = columns.cached(
                ("ghist", bits),
                lambda: history_pack(np, columns.directions, bits),
            )
            return (columns.site_ids.astype(np.int32) << bits) | histories

        guesses = lut[columns.cached(("ghist-idx", bits), build_index)]
        return bincount_bool(
            np, columns.site_ids, guesses != columns.directions, columns.n_sites
        )


class LoopPredictor(Predictor):
    """k-bit *local* (per-branch) history, frozen majority predictions."""

    def __init__(self, profile: ProfileData, bits: int = 9, default: bool = True) -> None:
        if bits > profile.local_bits:
            raise ValueError(
                f"profile holds {profile.local_bits} local history bits, "
                f"requested {bits}"
            )
        super().__init__(f"{bits}-bit-loop")
        self.bits = bits
        self.default = default
        self._mask = (1 << bits) - 1
        self._tables: Dict[BranchSite, Dict[int, bool]] = {}
        self._bias: Dict[BranchSite, bool] = {}
        for site, table in profile.local.items():
            short = table.marginalize(bits)
            self._tables[site] = _majority_map(short.counts)
            not_taken, taken = profile.totals[site]
            self._bias[site] = taken >= not_taken
        self._histories: Dict[BranchSite, int] = {}

    def reset(self) -> None:
        self._histories = {}

    def predict(self, site: BranchSite) -> bool:
        table = self._tables.get(site)
        if table is None:
            return self.default
        guess = table.get(self._histories.get(site, 0))
        if guess is None:
            return self._bias[site]
        return guess

    def update(self, site: BranchSite, taken: bool) -> None:
        history = self._histories.get(site, 0)
        self._histories[site] = ((history << 1) | (1 if taken else 0)) & self._mask

    def make_stepper(self, sites):
        tables = [self._tables.get(site) for site in sites]
        bias = [self._bias.get(site) for site in sites]
        histories = [0] * len(sites)
        default = self.default
        mask = self._mask

        def step(sid: int, direction: int) -> bool:
            history = histories[sid]
            histories[sid] = ((history << 1) | direction) & mask
            table = tables[sid]
            if table is None:
                return default != direction
            guess = table.get(history)
            if guess is None:
                guess = bias[sid]
            return guess != direction

        return step

    def step_batch(self, columns) -> List[int]:
        # One register *per branch*: grouping the direction column by
        # site makes every register's history a within-group window, so
        # one boundary-masked pack scores all of them together.
        counts = [0] * columns.n_sites
        if columns.n_events == 0:
            return counts
        bits = self.bits
        default = 1 if self.default else 0
        np = columns.np
        if np is None:
            rows = _pattern_rows(
                columns.sites, self._tables, self._bias, bits, self.default
            )
            mask = self._mask
            histories = [0] * columns.n_sites
            for sid, direction in zip(columns.site_ids, columns.directions):
                row = rows[sid]
                history = histories[sid]
                guess = default if row is None else row[history]
                if guess != direction:
                    counts[sid] += 1
                histories[sid] = ((history << 1) | direction) & mask
            return counts
        lut = _cached_flat_lut(self, np, columns)
        sorted_ids, grouped_dirs, _ = columns.grouped()

        def build_index():
            histories = columns.cached(
                ("lhist", bits),
                lambda: history_pack(
                    np, grouped_dirs, bits, columns.grouped_starts()
                ),
            )
            return (sorted_ids.astype(np.int32) << bits) | histories

        guesses = lut[columns.cached(("lhist-idx", bits), build_index)]
        return bincount_bool(
            np, sorted_ids, guesses != grouped_dirs, columns.n_sites
        )


class LoopCorrelationPredictor(Predictor):
    """Per branch, the better of the correlation and loop strategies.

    The choice is made at training time by comparing, per site, the
    number of correct predictions each strategy would have achieved on
    the training trace (per-pattern majority counts).
    """

    def __init__(
        self,
        profile: ProfileData,
        correlation_bits: int = 1,
        loop_bits: int = 9,
        default: bool = True,
    ) -> None:
        super().__init__("loop-correlation")
        self.default = default
        self.correlation = CorrelationPredictor(profile, correlation_bits, default)
        self.loop = LoopPredictor(profile, loop_bits, default)
        self.choice: Dict[BranchSite, str] = {}
        for site in profile.totals:
            corr = (
                profile.global_tables[site]
                .marginalize(correlation_bits)
                .correct_if_per_pattern()
            )
            loop = (
                profile.local[site].marginalize(loop_bits).correct_if_per_pattern()
            )
            self.choice[site] = "loop" if loop >= corr else "correlation"

    def reset(self) -> None:
        self.correlation.reset()
        self.loop.reset()

    def predict(self, site: BranchSite) -> bool:
        choice = self.choice.get(site)
        if choice == "loop":
            return self.loop.predict(site)
        if choice == "correlation":
            return self.correlation.predict(site)
        return self.default

    def update(self, site: BranchSite, taken: bool) -> None:
        self.correlation.update(site, taken)
        self.loop.update(site, taken)

    def make_stepper(self, sites):
        # Both sub-predictors update their histories on every event (the
        # sequential semantics), but only the chosen one's guess counts.
        selectors = {"loop": 0, "correlation": 1}
        chosen = [selectors.get(self.choice.get(site), 2) for site in sites]
        default = self.default
        corr_step = self.correlation.make_stepper(sites)
        loop_step = self.loop.make_stepper(sites)

        def step(sid: int, direction: int) -> bool:
            corr_wrong = corr_step(sid, direction)
            loop_wrong = loop_step(sid, direction)
            choice = chosen[sid]
            if choice == 0:
                return loop_wrong
            if choice == 1:
                return corr_wrong
            return default != direction

        return step

    def step_batch(self, columns) -> List[int]:
        # Each sub-strategy's histories evolve from outcomes alone, so
        # their full kernels run independently; only the chosen
        # strategy's count survives per site.
        loop_counts = self.loop.step_batch(columns)
        corr_counts = self.correlation.step_batch(columns)
        counts = [0] * columns.n_sites
        for sid, site in enumerate(columns.sites):
            choice = self.choice.get(site)
            if choice == "loop":
                counts[sid] = loop_counts[sid]
            elif choice == "correlation":
                counts[sid] = corr_counts[sid]
            else:
                counts[sid] = _default_wrongs(columns, sid, self.default)
        return counts

    def improved_sites(self, profile: ProfileData) -> Dict[BranchSite, int]:
        """Sites where the chosen strategy beats plain profile on the
        training data, with the number of extra correct predictions —
        the paper's "improved branches" row in Table 1."""
        improved: Dict[BranchSite, int] = {}
        for site in profile.totals:
            base = max(profile.totals[site])
            if self.choice[site] == "loop":
                best = (
                    profile.local[site]
                    .marginalize(self.loop.bits)
                    .correct_if_per_pattern()
                )
            else:
                best = (
                    profile.global_tables[site]
                    .marginalize(self.correlation.bits)
                    .correct_if_per_pattern()
                )
            if best > base:
                improved[site] = best - base
        return improved


def semistatic_suite(profile: ProfileData) -> Tuple[Predictor, ...]:
    """The semi-static strategies of Table 1, in row order."""
    return (
        ProfilePredictor(profile),
        CorrelationPredictor(profile, 1),
        LoopPredictor(profile, 1),
        LoopPredictor(profile, 9),
        LoopCorrelationPredictor(profile),
    )
