"""Single-pass multi-predictor evaluation engine.

Every table in the paper compares many strategies over the *same*
trace.  :func:`repro.predictors.base.evaluate` replays the full trace
once per predictor; :func:`evaluate_many` scores each predictor by the
cheapest route that yields identical results:

* **closed form** — order-independent predictors (static heuristics,
  :class:`~repro.predictors.semistatic.ProfilePredictor`) are scored
  from per-site taken counts alone, O(sites) instead of O(events);
* **columnar batch kernels** — predictor families that implement
  :meth:`Predictor.step_batch` score themselves against the trace's
  columnar view (:meth:`~repro.profiling.trace.Trace.columns`):
  vectorized numpy column passes when numpy is importable, pure-Python
  run/sequence kernels otherwise, both byte-identical to the
  sequential replay;
* **a fused stepper scan** — anything else (custom ``Predictor``
  subclasses) falls back to the single shared per-event scan: each
  predictor contributes a ``step(site_id, direction) -> mispredicted``
  closure (:meth:`Predictor.make_stepper`) and the per-event dispatch
  over N steppers is generated (and cached) per N, so the hot loop has
  no tuple unpacking or inner ``for``.

Per-site execution and taken counts are predictor-independent and come
from the columnar view's C-speed aggregations, shared by every result.

The engine reports process-wide counters (``engine.*``: scans, events,
wall-clock) and an ``engine.evaluate_many`` span per call to the
:mod:`repro.obs` observer, so the CLI's ``--timings`` and
``--trace-out`` can show events/sec per stage.  ``engine.events``
counts only events that did online work (batch kernels or a stepper
scan); calls that were satisfied entirely in closed form book their
events under ``engine.closed_form_events`` instead, so the
``--timings`` events/sec rate is never inflated by O(sites) calls.
The per-event hot loop itself carries **no** instrumentation —
counters are bumped once per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from ..ir import BranchSite
from ..obs import OBS
from ..profiling import Trace
from .base import EvaluationResult, Predictor, SiteStats


@dataclass
class EngineStats:
    """Process-wide evaluation counters (see :func:`engine_stats`).

    Since the obs layer landed this is a *view* over the process
    observer's ``engine.*`` counters, kept for callers of the original
    API; new code should read :func:`repro.obs.default_observer`
    directly.
    """

    scans: int = 0
    events: int = 0
    online_predictors: int = 0
    closed_form_predictors: int = 0
    seconds: float = 0.0
    batch_predictors: int = 0
    closed_form_events: int = 0

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            self.scans,
            self.events,
            self.online_predictors,
            self.closed_form_predictors,
            self.seconds,
            self.batch_predictors,
            self.closed_form_events,
        )


def engine_stats() -> EngineStats:
    """This process's evaluation counters, as a fresh snapshot."""
    counters = OBS.counters("engine.")
    return EngineStats(
        scans=int(counters.get("engine.scans", 0)),
        events=int(counters.get("engine.events", 0)),
        online_predictors=int(counters.get("engine.online_predictors", 0)),
        closed_form_predictors=int(counters.get("engine.closed_form_predictors", 0)),
        seconds=float(counters.get("engine.seconds", 0.0)),
        batch_predictors=int(counters.get("engine.batch_predictors", 0)),
        closed_form_events=int(counters.get("engine.closed_form_events", 0)),
    )


def reset_engine_stats() -> None:
    """Reset the ``engine.*`` counters (other subsystems untouched)."""
    OBS.reset(prefix="engine.")


@lru_cache(maxsize=64)
def _scan_fn(n_steppers: int) -> Callable:
    """A scan loop unrolled over *n_steppers* stepper/counter pairs.

    ``scan(events, s0, w0, s1, w1, ...)`` drives every stepper per
    event and bumps its per-site misprediction array on a wrong guess.
    """
    params = ", ".join(f"s{i}, w{i}" for i in range(n_steppers))
    body = "\n".join(
        f"        if s{i}(sid, direction): w{i}[sid] += 1"
        for i in range(n_steppers)
    )
    source = (
        f"def scan(events, {params}):\n"
        f"    for sid, direction in events:\n"
        f"{body}\n"
    )
    namespace: Dict[str, Callable] = {}
    exec(source, namespace)  # noqa: S102 - fixed template, ints only
    return namespace["scan"]


def evaluate_many(
    predictors: Sequence[Predictor], trace: Trace, batch: bool = True
) -> List[EvaluationResult]:
    """Evaluate all *predictors* over *trace*, each by its fastest path.

    Returns one :class:`EvaluationResult` per predictor, in input
    order, each identical to ``evaluate(predictor, trace)``.  With
    *batch* (the default) predictors that implement
    :meth:`Predictor.step_batch` are scored by their columnar kernel;
    ``batch=False`` forces every non-closed-form predictor down the
    shared per-event stepper scan (the PR-2 engine), which is what the
    benchmark suite uses as its speedup baseline.
    """
    predictors = list(predictors)
    started = perf_counter()
    with OBS.span("engine.evaluate_many", predictors=len(predictors)) as span:
        sites = trace.sites
        columns = trace.columns()

        # Shared per-site bookkeeping from the columnar view (numpy
        # bincount / run-sliced byte counts — no per-event Python work).
        executions = columns.site_executions()
        taken = columns.site_taken()

        events = len(trace)
        results: List[EvaluationResult] = [None] * len(predictors)  # type: ignore[list-item]
        site_rows = [
            (sid, sites[sid], count) for sid, count in executions.items()
        ]

        def finish(index: int, name: str, wrong: Sequence[int]) -> None:
            per_site: Dict[BranchSite, SiteStats] = {
                site: SiteStats(count, wrong[sid]) for sid, site, count in site_rows
            }
            results[index] = EvaluationResult(name, events, sum(wrong), per_site)

        # Route each predictor: closed form, columnar kernel, or the
        # shared stepper scan.
        online: List[int] = []
        batched = 0
        wrongs: List[List[int]] = []
        flat: List = []
        for index, predictor in enumerate(predictors):
            if predictor.order_independent:
                continue
            predictor.reset()
            counts: Optional[List[int]] = (
                predictor.step_batch(columns) if batch else None
            )
            if counts is not None:
                batched += 1
                finish(index, predictor.name, counts)
                continue
            wrong = [0] * len(sites)
            online.append(index)
            wrongs.append(wrong)
            flat.append(predictor.make_stepper(sites))
            flat.append(wrong)

        if online:
            _scan_fn(len(online))(trace.events(), *flat)
        for index, wrong in zip(online, wrongs):
            finish(index, predictors[index].name, wrong)

        # Closed-form fast path: O(sites) per order-independent predictor.
        closed_form = 0
        for index, predictor in enumerate(predictors):
            if predictor.order_independent:
                closed_form += 1
                predictor.reset()
                predict = predictor.predict
                per_site = {}
                mispredictions = 0
                for sid, count in executions.items():
                    taken_here = taken[sid]
                    wrong_here = (
                        count - taken_here if predict(sites[sid]) else taken_here
                    )
                    mispredictions += wrong_here
                    per_site[sites[sid]] = SiteStats(count, wrong_here)
                results[index] = EvaluationResult(
                    predictor.name, events, mispredictions, per_site
                )

        span.set(
            events=events,
            online=len(online),
            batched=batched,
            closed_form=closed_form,
        )

    elapsed = perf_counter() - started
    scanned = bool(online) or batched
    OBS.add("engine.scans", 1 if online else 0)
    # events/sec accounting: only events that did online work (batch
    # kernels or a stepper scan) count as scanned; a call satisfied
    # entirely in closed form books them separately so it cannot
    # inflate the ``--timings`` rate.
    OBS.add("engine.events", events if scanned else 0)
    OBS.add("engine.closed_form_events", 0 if scanned else events)
    OBS.add("engine.online_predictors", len(online))
    OBS.add("engine.batch_predictors", batched)
    OBS.add("engine.closed_form_predictors", closed_form)
    OBS.add("engine.seconds", elapsed)
    # Distinct name from the engine.seconds total: a histogram family's
    # _sum/_count samples must not collide with the plain counter.
    OBS.observe("engine.scan_seconds", elapsed)
    return results
