"""Single-pass multi-predictor evaluation engine.

Every table in the paper compares many strategies over the *same*
trace.  :func:`repro.predictors.base.evaluate` replays the full trace
once per predictor; :func:`evaluate_many` replays it **once**, feeding
all N predictors per event, and scores order-independent predictors
(static heuristics, :class:`~repro.predictors.semistatic.ProfilePredictor`)
in closed form from per-site taken counts — O(sites) instead of
O(events).

Three mechanisms make the shared scan fast:

* **fused steppers** — each online predictor contributes a
  ``step(site_id, direction) -> mispredicted`` closure
  (:meth:`Predictor.make_stepper`) that folds ``predict`` and
  ``update`` into one state lookup over per-site-id arrays, replacing
  per-event ``BranchSite`` hashing with precomputed integer keys;
* **C-level bookkeeping** — per-site execution and taken counts are
  predictor-independent, so they are aggregated from the trace's
  column arrays with :class:`collections.Counter` /
  :func:`itertools.compress` (no Python-level per-event work) and
  shared by every result and the closed-form fast path;
* **an unrolled scan loop** — the per-event dispatch over N steppers is
  generated (and cached) per N, so the hot loop has no tuple unpacking
  or inner ``for``.

The engine reports process-wide counters (``engine.*``: scans, events,
wall-clock) and an ``engine.evaluate_many`` span per call to the
:mod:`repro.obs` observer, so the CLI's ``--timings`` and
``--trace-out`` can show events/sec per stage; results are exactly
those of the sequential reference implementation.  The per-event hot
loop itself carries **no** instrumentation — counters are bumped once
per call.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from itertools import compress
from time import perf_counter
from typing import Callable, Dict, List, Sequence

from ..ir import BranchSite
from ..obs import OBS
from ..profiling import Trace
from .base import EvaluationResult, Predictor, SiteStats


@dataclass
class EngineStats:
    """Process-wide evaluation counters (see :func:`engine_stats`).

    Since the obs layer landed this is a *view* over the process
    observer's ``engine.*`` counters, kept for callers of the original
    API; new code should read :func:`repro.obs.default_observer`
    directly.
    """

    scans: int = 0
    events: int = 0
    online_predictors: int = 0
    closed_form_predictors: int = 0
    seconds: float = 0.0

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            self.scans,
            self.events,
            self.online_predictors,
            self.closed_form_predictors,
            self.seconds,
        )


def engine_stats() -> EngineStats:
    """This process's evaluation counters, as a fresh snapshot."""
    counters = OBS.counters("engine.")
    return EngineStats(
        scans=int(counters.get("engine.scans", 0)),
        events=int(counters.get("engine.events", 0)),
        online_predictors=int(counters.get("engine.online_predictors", 0)),
        closed_form_predictors=int(counters.get("engine.closed_form_predictors", 0)),
        seconds=float(counters.get("engine.seconds", 0.0)),
    )


def reset_engine_stats() -> None:
    """Reset the ``engine.*`` counters (other subsystems untouched)."""
    OBS.reset(prefix="engine.")


@lru_cache(maxsize=64)
def _scan_fn(n_steppers: int) -> Callable:
    """A scan loop unrolled over *n_steppers* stepper/counter pairs.

    ``scan(events, s0, w0, s1, w1, ...)`` drives every stepper per
    event and bumps its per-site misprediction array on a wrong guess.
    """
    params = ", ".join(f"s{i}, w{i}" for i in range(n_steppers))
    body = "\n".join(
        f"        if s{i}(sid, direction): w{i}[sid] += 1"
        for i in range(n_steppers)
    )
    source = (
        f"def scan(events, {params}):\n"
        f"    for sid, direction in events:\n"
        f"{body}\n"
    )
    namespace: Dict[str, Callable] = {}
    exec(source, namespace)  # noqa: S102 - fixed template, ints only
    return namespace["scan"]


def evaluate_many(
    predictors: Sequence[Predictor], trace: Trace
) -> List[EvaluationResult]:
    """Evaluate all *predictors* over *trace* in a single scan.

    Returns one :class:`EvaluationResult` per predictor, in input
    order, each identical to ``evaluate(predictor, trace)``.
    """
    predictors = list(predictors)
    started = perf_counter()
    with OBS.span("engine.evaluate_many", predictors=len(predictors)) as span:
        sites = trace.sites

        # Shared per-site bookkeeping, aggregated at C speed.
        executions = Counter(trace.site_ids)
        taken = Counter(compress(trace.site_ids, trace.directions))

        # Online predictors step through the shared scan; order-independent
        # ones are scored from the counts alone.
        online: List[int] = []
        wrongs: List[List[int]] = []
        flat: List = []
        for index, predictor in enumerate(predictors):
            if not predictor.order_independent:
                predictor.reset()
                wrong = [0] * len(sites)
                online.append(index)
                wrongs.append(wrong)
                flat.append(predictor.make_stepper(sites))
                flat.append(wrong)

        if online:
            _scan_fn(len(online))(trace.events(), *flat)

        events = len(trace)
        results: List[EvaluationResult] = [None] * len(predictors)  # type: ignore[list-item]

        for index, wrong in zip(online, wrongs):
            per_site: Dict[BranchSite, SiteStats] = {
                sites[sid]: SiteStats(count, wrong[sid])
                for sid, count in executions.items()
            }
            results[index] = EvaluationResult(
                predictors[index].name, events, sum(wrong), per_site
            )

        # Closed-form fast path: O(sites) per order-independent predictor.
        for index, predictor in enumerate(predictors):
            if predictor.order_independent:
                predictor.reset()
                predict = predictor.predict
                per_site = {}
                mispredictions = 0
                for sid, count in executions.items():
                    taken_here = taken[sid]
                    wrong_here = (
                        count - taken_here if predict(sites[sid]) else taken_here
                    )
                    mispredictions += wrong_here
                    per_site[sites[sid]] = SiteStats(count, wrong_here)
                results[index] = EvaluationResult(
                    predictor.name, events, mispredictions, per_site
                )

        span.set(
            events=events,
            online=len(online),
            closed_form=len(predictors) - len(online),
        )

    elapsed = perf_counter() - started
    OBS.add("engine.scans", 1 if online else 0)
    OBS.add("engine.events", events)
    OBS.add("engine.online_predictors", len(online))
    OBS.add("engine.closed_form_predictors", len(predictors) - len(online))
    OBS.add("engine.seconds", elapsed)
    # Distinct name from the engine.seconds total: a histogram family's
    # _sum/_count samples must not collide with the plain counter.
    OBS.observe("engine.scan_seconds", elapsed)
    return results
