"""Static branch prediction (Section 2.1).

Implements Smith's simple heuristics and the Ball/Larus heuristic suite
in the paper's "most successful" order: Pointer, Call, Opcode, Return,
Store, Loop, Guard.  All of these examine only the program text — no
profile, no run-time state — and produce a fixed per-site prediction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..cfg import CFG, DominatorTree, LoopForest
from ..ir import Branch, BranchSite, Call, Program, Return, Store
from .base import Predictor
from .kernels import fixed_guess_wrongs


class FixedMapPredictor(Predictor):
    """Predicts from a precomputed per-site direction map."""

    order_independent = True

    def __init__(
        self,
        name: str,
        predictions: Dict[BranchSite, bool],
        default: bool = True,
    ) -> None:
        super().__init__(name)
        self.predictions = predictions
        self.default = default

    def predict(self, site: BranchSite) -> bool:
        return self.predictions.get(site, self.default)

    def step_batch(self, columns) -> List[int]:
        return fixed_guess_wrongs(
            columns,
            [self.predictions.get(site, self.default) for site in columns.sites],
        )


class AlwaysTaken(Predictor):
    """Smith: predict that all branches will be taken."""

    order_independent = True

    def __init__(self) -> None:
        super().__init__("always-taken")

    def predict(self, site: BranchSite) -> bool:
        return True

    def step_batch(self, columns) -> List[int]:
        return fixed_guess_wrongs(columns, [True] * columns.n_sites)


class AlwaysNotTaken(Predictor):
    """Predict that no branch is taken (baseline)."""

    order_independent = True

    def __init__(self) -> None:
        super().__init__("always-not-taken")

    def predict(self, site: BranchSite) -> bool:
        return False

    def step_batch(self, columns) -> List[int]:
        return fixed_guess_wrongs(columns, [False] * columns.n_sites)


def _block_order(program: Program) -> Dict[BranchSite, int]:
    """Positional index of each block, standing in for code addresses."""
    order: Dict[BranchSite, int] = {}
    for function in program:
        for index, block in enumerate(function.blocks.values()):
            order[BranchSite(function.name, block.label)] = index
    return order


def backward_taken(program: Program) -> FixedMapPredictor:
    """Smith: predict that all backward branches will be taken (BTFNT).

    "Backward" is judged by block layout order, our stand-in for code
    addresses.
    """
    order = _block_order(program)
    predictions: Dict[BranchSite, bool] = {}
    for function in program:
        for block in function:
            branch = block.branch
            if branch is None:
                continue
            site = BranchSite(function.name, block.label)
            target = BranchSite(function.name, branch.taken)
            predictions[site] = order.get(target, 0) <= order[site]
    return FixedMapPredictor("backward-taken", predictions)


_OPCODE_TAKEN = {"ne": True, "eq": False, "lt": False, "le": False, "gt": True, "ge": True}


def opcode_heuristic(program: Program) -> FixedMapPredictor:
    """Smith: decide the direction from the comparison opcode.

    Inequality tests are predicted taken (values are rarely equal);
    less-than tests (typically "is negative / error?") not taken;
    greater-or-equal taken.
    """
    predictions: Dict[BranchSite, bool] = {}
    for function in program:
        for block in function:
            branch = block.branch
            if branch is None:
                continue
            predictions[BranchSite(function.name, block.label)] = _OPCODE_TAKEN[
                branch.op
            ]
    return FixedMapPredictor("opcode", predictions)


# -- Ball/Larus -----------------------------------------------------------------


def _block_has(function, label: str, kinds) -> bool:
    block = function.block(label)
    instrs = list(block.instrs)
    if block.terminator is not None:
        instrs.append(block.terminator)
    return any(isinstance(instr, kinds) for instr in instrs)


def _heuristic_pointer(branch: Branch, **_) -> Optional[bool]:
    """Pointer comparisons: predict pointers unequal."""
    if not branch.pointer:
        return None
    if branch.op == "eq":
        return False
    if branch.op == "ne":
        return True
    return None


def _heuristic_call(branch: Branch, function=None, **_) -> Optional[bool]:
    """Avoid successors that call a subroutine."""
    taken_calls = _block_has(function, branch.taken, Call)
    fall_calls = _block_has(function, branch.not_taken, Call)
    if taken_calls and not fall_calls:
        return False
    if fall_calls and not taken_calls:
        return True
    return None


def _heuristic_opcode(branch: Branch, **_) -> Optional[bool]:
    """Decide on the branch instruction opcode (only for compares
    against zero, where the sign conventions are meaningful)."""
    if branch.rhs == 0 or branch.lhs == 0:
        return _OPCODE_TAKEN[branch.op]
    return None


def _heuristic_return(branch: Branch, function=None, **_) -> Optional[bool]:
    """Avoid successors that return from the function."""
    taken_rets = _block_has(function, branch.taken, Return)
    fall_rets = _block_has(function, branch.not_taken, Return)
    if taken_rets and not fall_rets:
        return False
    if fall_rets and not taken_rets:
        return True
    return None


def _heuristic_store(branch: Branch, function=None, **_) -> Optional[bool]:
    """Avoid successors that contain a store instruction."""
    taken_stores = _block_has(function, branch.taken, Store)
    fall_stores = _block_has(function, branch.not_taken, Store)
    if taken_stores and not fall_stores:
        return False
    if fall_stores and not taken_stores:
        return True
    return None


def _heuristic_loop(branch: Branch, block=None, forest=None, **_) -> Optional[bool]:
    """Predict that the loop branch will be taken: prefer the successor
    that is a back edge (or stays inside the loop when the other leaves)."""
    loop = forest.loop_of(block.label)
    if loop is None:
        return None
    taken_back = branch.taken == loop.header
    fall_back = branch.not_taken == loop.header
    if taken_back and not fall_back:
        return True
    if fall_back and not taken_back:
        return False
    taken_in = branch.taken in loop.body
    fall_in = branch.not_taken in loop.body
    if taken_in and not fall_in:
        return True
    if fall_in and not taken_in:
        return False
    return None


def _heuristic_guard(branch: Branch, function=None, **_) -> Optional[bool]:
    """Prefer the successor that uses the operands of the branch."""
    operands = set(branch.uses())
    if not operands:
        return None

    def block_uses(label: str) -> bool:
        block = function.block(label)
        for instr in block.instrs:
            if operands & set(instr.uses()):
                return True
            if operands & set(instr.defs()):
                return False
        return False

    taken_uses = block_uses(branch.taken)
    fall_uses = block_uses(branch.not_taken)
    if taken_uses and not fall_uses:
        return True
    if fall_uses and not taken_uses:
        return False
    return None


#: The paper's most successful order for non-loop branches.
BALL_LARUS_ORDER = (
    _heuristic_pointer,
    _heuristic_call,
    _heuristic_opcode,
    _heuristic_return,
    _heuristic_store,
    _heuristic_loop,
    _heuristic_guard,
)


def ball_larus(program: Program, default: bool = True) -> FixedMapPredictor:
    """Ball/Larus heuristic prediction over the whole program.

    Following [BL93], branches that control a loop (a back edge or a
    loop exit) are predicted by the *loop* heuristic before anything
    else — "predict that the loop branch will be taken"; the
    lexicographic heuristic order applies to the remaining branches.
    """
    predictions: Dict[BranchSite, bool] = {}
    for function in program:
        cfg = CFG.from_function(function)
        forest = LoopForest(cfg, DominatorTree(cfg))
        for block in function:
            branch = block.branch
            if branch is None:
                continue
            decision: Optional[bool] = _loop_controls(branch, block, forest)
            if decision is None:
                for heuristic in BALL_LARUS_ORDER:
                    decision = heuristic(
                        branch, function=function, block=block, forest=forest
                    )
                    if decision is not None:
                        break
            predictions[BranchSite(function.name, block.label)] = (
                decision if decision is not None else default
            )
    return FixedMapPredictor("ball-larus", predictions, default)


def _loop_controls(branch: Branch, block, forest) -> Optional[bool]:
    """The [BL93] loop-branch rule: if one arm is a back edge or stays
    in the loop while the other leaves it, predict the loop-continuing
    arm."""
    loop = forest.loop_of(block.label)
    if loop is None:
        return None
    taken_in = branch.taken in loop.body
    fall_in = branch.not_taken in loop.body
    if taken_in == fall_in:
        # Both stay (plain intra-loop branch) or both leave: the loop
        # rule says nothing; fall through to the heuristic chain.
        return None
    return taken_in


def static_predictors(program: Program) -> Iterable[Predictor]:
    """All static strategies, in presentation order."""
    return [
        AlwaysTaken(),
        AlwaysNotTaken(),
        backward_taken(program),
        opcode_heuristic(program),
        ball_larus(program),
    ]
