"""Simple dynamic predictors (Section 2.3, Smith's strategies).

* :class:`LastDirection` — "a branch will take the same direction as on
  its last execution".
* :class:`SaturatingCounter` — an n-bit saturating up/down counter per
  branch; predict taken while the counter is in the upper half.  The
  paper uses the classic 2-bit variant.

Both use unbounded per-site state (one entry per static branch) — the
idealised, aliasing-free version, which is what the paper compares
against.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir import BranchSite
from .base import Predictor
from .kernels import (
    count_runs_seq,
    saturating_run_wrongs,
    saturating_wrongs_seq,
)


def _grouped_direction_runs(columns):
    """``(run_starts, run_lengths)`` of the site-grouped direction
    column — the run partition both per-site counter kernels score, so
    it is computed once per snapshot and shared."""
    np = columns.np

    def build():
        _, grouped_dirs, new_site = columns.grouped()
        run_break = np.array(new_site, dtype=bool, copy=True)
        run_break[1:] |= grouped_dirs[1:] != grouped_dirs[:-1]
        run_starts = np.flatnonzero(run_break)
        run_lengths = np.diff(run_starts, append=columns.n_events)
        return run_starts, run_lengths

    return columns.cached(("gdir-runs",), build)


class LastDirection(Predictor):
    """Predict the direction taken on the previous execution."""

    def __init__(self, initial: bool = True) -> None:
        super().__init__("last-direction")
        self.initial = initial
        self._last: Dict[BranchSite, bool] = {}

    def reset(self) -> None:
        self._last = {}

    def predict(self, site: BranchSite) -> bool:
        return self._last.get(site, self.initial)

    def update(self, site: BranchSite, taken: bool) -> None:
        self._last[site] = taken

    def make_stepper(self, sites):
        # Per-site-id array state: predictions and outcomes compare
        # equal across bool/int (True == 1), so directions are stored
        # as the trace's 0/1 ints.
        last = [self.initial] * len(sites)

        def step(sid: int, direction: int) -> bool:
            wrong = last[sid] != direction
            last[sid] = direction
            return wrong

        return step

    def step_batch(self, columns) -> List[int]:
        # Within one site's outcome sequence, every run boundary is
        # exactly one misprediction (the previous outcome differed),
        # plus one for the first event when it differs from the
        # initial guess — no per-event state needed at all.
        counts = [0] * columns.n_sites
        if columns.n_events == 0:
            return counts
        initial = 1 if self.initial else 0
        np = columns.np
        if np is not None:
            # Mispredictions are exactly the direction-run starts: every
            # non-first run's first event differs from the previous
            # outcome, and a site's first event mispredicts when it
            # differs from the initial guess.  Runs, not events.
            sorted_ids, grouped_dirs, new_site = columns.grouped()
            run_starts, _ = _grouped_direction_runs(columns)
            wrong = grouped_dirs[run_starts] != initial
            wrong |= ~new_site[run_starts]
            return np.bincount(
                sorted_ids[run_starts[wrong]], minlength=columns.n_sites
            ).tolist()
        for sid in columns.site_executions():
            sequence = columns.site_directions(sid)
            counts[sid] = count_runs_seq(sequence) - 1 + (sequence[0] != initial)
        return counts


class SaturatingCounter(Predictor):
    """n-bit saturating counter per branch (default: the 2-bit scheme)."""

    def __init__(self, bits: int = 2) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        super().__init__(f"{bits}-bit-counter")
        self.bits = bits
        self.max = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        # Start weakly taken, the conventional initialisation.
        self.initial = self.threshold
        self._counters: Dict[BranchSite, int] = {}

    def reset(self) -> None:
        self._counters = {}

    def predict(self, site: BranchSite) -> bool:
        return self._counters.get(site, self.initial) >= self.threshold

    def update(self, site: BranchSite, taken: bool) -> None:
        value = self._counters.get(site, self.initial)
        if taken:
            if value < self.max:
                self._counters[site] = value + 1
        else:
            if value > 0:
                self._counters[site] = value - 1

    def make_stepper(self, sites):
        values = [self.initial] * len(sites)
        threshold = self.threshold
        top = self.max

        def step(sid: int, direction: int) -> bool:
            value = values[sid]
            if direction:
                if value < top:
                    values[sid] = value + 1
                return value < threshold
            if value > 0:
                values[sid] = value - 1
            return value >= threshold

        return step

    def step_batch(self, columns) -> List[int]:
        # One independent counter per site: group the direction column
        # by site and score every counter with the shared closed-form
        # run kernel (see repro.predictors.kernels).
        counts = [0] * columns.n_sites
        if columns.n_events == 0:
            return counts
        np = columns.np
        if np is not None:
            # Runs never span sites here, so per-run wrong counts
            # attribute by the run's site directly — O(runs), no
            # per-event expansion.
            sorted_ids, grouped_dirs, new_site = columns.grouped()
            run_starts, _, wrongs = saturating_run_wrongs(
                np,
                new_site,
                grouped_dirs,
                self.threshold,
                self.max,
                self.initial,
                runs=_grouped_direction_runs(columns),
            )
            return np.bincount(
                np.repeat(sorted_ids[run_starts], wrongs),
                minlength=columns.n_sites,
            ).tolist()
        for sid in columns.site_executions():
            counts[sid] = saturating_wrongs_seq(
                columns.site_directions(sid), self.threshold, self.max, self.initial
            )
        return counts
