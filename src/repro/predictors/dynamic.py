"""Simple dynamic predictors (Section 2.3, Smith's strategies).

* :class:`LastDirection` — "a branch will take the same direction as on
  its last execution".
* :class:`SaturatingCounter` — an n-bit saturating up/down counter per
  branch; predict taken while the counter is in the upper half.  The
  paper uses the classic 2-bit variant.

Both use unbounded per-site state (one entry per static branch) — the
idealised, aliasing-free version, which is what the paper compares
against.
"""

from __future__ import annotations

from typing import Dict

from ..ir import BranchSite
from .base import Predictor


class LastDirection(Predictor):
    """Predict the direction taken on the previous execution."""

    def __init__(self, initial: bool = True) -> None:
        super().__init__("last-direction")
        self.initial = initial
        self._last: Dict[BranchSite, bool] = {}

    def reset(self) -> None:
        self._last = {}

    def predict(self, site: BranchSite) -> bool:
        return self._last.get(site, self.initial)

    def update(self, site: BranchSite, taken: bool) -> None:
        self._last[site] = taken

    def make_stepper(self, sites):
        # Per-site-id array state: predictions and outcomes compare
        # equal across bool/int (True == 1), so directions are stored
        # as the trace's 0/1 ints.
        last = [self.initial] * len(sites)

        def step(sid: int, direction: int) -> bool:
            wrong = last[sid] != direction
            last[sid] = direction
            return wrong

        return step


class SaturatingCounter(Predictor):
    """n-bit saturating counter per branch (default: the 2-bit scheme)."""

    def __init__(self, bits: int = 2) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        super().__init__(f"{bits}-bit-counter")
        self.bits = bits
        self.max = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        # Start weakly taken, the conventional initialisation.
        self.initial = self.threshold
        self._counters: Dict[BranchSite, int] = {}

    def reset(self) -> None:
        self._counters = {}

    def predict(self, site: BranchSite) -> bool:
        return self._counters.get(site, self.initial) >= self.threshold

    def update(self, site: BranchSite, taken: bool) -> None:
        value = self._counters.get(site, self.initial)
        if taken:
            if value < self.max:
                self._counters[site] = value + 1
        else:
            if value > 0:
                self._counters[site] = value - 1

    def make_stepper(self, sites):
        values = [self.initial] * len(sites)
        threshold = self.threshold
        top = self.max

        def step(sid: int, direction: int) -> bool:
            value = values[sid]
            if direction:
                if value < top:
                    values[sid] = value + 1
                return value < threshold
            if value > 0:
                values[sid] = value - 1
            return value >= threshold

        return step
