"""Shared building blocks for the columnar batch kernels.

Every predictor family's :meth:`~repro.predictors.base.Predictor.step_batch`
kernel decomposes into the same few primitives over the trace's
columnar view (:class:`~repro.profiling.columns.TraceColumns`):

* **history packing** (:func:`history_pack`) — the k-bit shift-register
  contents before every event of a stream, as an integer column.  A
  branch-history register never depends on predictor state, only on the
  actual outcomes, so the whole history column is computable up front —
  the observation that makes even the *adaptive* two-level predictor
  batchable.
* **saturating-counter scoring** (:func:`saturating_wrong_flags`,
  :func:`saturating_wrongs_seq`) — mispredictions of independent n-bit
  saturating counters.  Within one counter's event stream, a *run* of
  equal outcomes mispredicts a closed-form prefix of its events (an
  up-run starting below threshold mispredicts exactly
  ``threshold - value`` times, capped by the run length) and leaves the
  counter in a closed-form state, so the per-event recurrence collapses
  to a per-run one: the Python-level work drops from O(events) to
  O(direction runs).

The numpy variants return per-event columns (so callers can attribute
mispredictions back to sites with one ``bincount``); the pure-sequence
variants return plain counts and run on any 0/1 byte sequence — both
produce results identical to stepping the predictor event by event.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def history_pack(np, dirs, bits: int, group_start=None):
    """The shift-register contents before each event, as an int64 column.

    ``out[t] = sum_{j=1..bits} dirs[t-j] << (j-1)`` — the register after
    shifting in events ``< t``, newest outcome in the LSB, starting from
    an all-zero register exactly like a freshly reset predictor.  With
    *group_start* (per-event index of the first event of its group),
    registers reset at group boundaries: contributions from events
    before ``group_start[t]`` are dropped, which scores one independent
    register per group (per-site, per-set, ...) in one pass.
    """
    dtype = np.int32 if bits < 31 else np.int64
    n = len(dirs)
    out = np.zeros(n, dtype=dtype)
    if n == 0 or bits == 0:
        return out
    wide = dirs.astype(dtype)
    for j in range(1, min(bits, n) + 1):
        out[j:] += wide[: n - j] << (j - 1)
    if group_start is not None:
        # Bit j-1 of out[t] is the outcome of event t-j; outcomes from
        # before the group are exactly the bits at positions >= the
        # distance to the group start, so one mask drops them all.
        window = np.arange(n, dtype=np.int64)
        window -= group_start
        window = np.minimum(window, bits).astype(dtype)
        out &= (dtype(1) << window) - dtype(1)
    return out


def group_starts(np, new_group, indices=None):
    """Per event, the index where its group begins.

    *new_group* is a boolean column marking the first event of every
    group (groups are contiguous).  The result feeds
    :func:`history_pack`'s boundary masking.  *indices* is an optional
    precomputed ``arange(len(new_group))`` (callers on a hot path cache
    it per trace).
    """
    n = len(new_group)
    starts = np.zeros(n, dtype=np.int64)
    if n:
        if indices is None:
            indices = np.arange(n, dtype=np.int64)
        starts[new_group] = indices[new_group]
        np.maximum.accumulate(starts, out=starts)
    return starts


def _run_mispredictions(
    value: int, direction: int, length: int, threshold: int, top: int
) -> Tuple[int, int]:
    """``(mispredictions, value_after)`` for one run of equal outcomes.

    Entering a run of *length* consecutive *direction* outcomes with
    counter *value*: an up-run mispredicts while the counter is still
    below *threshold* (``threshold - value`` events, capped), a
    down-run while it is still at or above it (``value - threshold + 1``
    events, capped); afterwards the counter sits at the clamped
    ``value ± length``.
    """
    if direction:
        wrong = threshold - value
        if wrong < 0:
            wrong = 0
        elif wrong > length:
            wrong = length
        value += length
        if value > top:
            value = top
    else:
        wrong = value - threshold + 1
        if wrong < 0:
            wrong = 0
        elif wrong > length:
            wrong = length
        value -= length
        if value < 0:
            value = 0
    return wrong, value


def saturating_run_wrongs(
    np, new_group, dirs, threshold: int, top: int, initial: int, runs=None
):
    """Per-run misprediction counts for grouped saturating counters.

    *dirs* holds the outcomes of many independent counters, grouped
    contiguously (*new_group* marks each counter's first event); every
    counter starts at *initial*.  Runs are cut where the outcome or the
    group changes; returns ``(run_starts, run_lengths, wrongs)`` where
    ``wrongs[i]`` is how many of run *i*'s events mispredict — always a
    *prefix* of the run (the counter moves monotonically through a
    run), so callers attribute them with :func:`wrong_positions`.
    *runs* optionally supplies precomputed ``(run_starts, run_lengths)``
    for exactly that partition (callers sharing a cached run column).

    The per-run entry-value recurrence — a clamped random walk — is
    solved without any Python-level loop: a saturated add
    ``v -> clip(v + d, 0, top)`` is exactly ``min(B, max(A, v + D))``,
    a family closed under composition, so per-run prefix compositions
    come out of a segmented Hillis-Steele doubling scan (O(log runs)
    vectorized passes).
    """
    n = len(dirs)
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    if runs is not None:
        run_starts, run_lengths = runs
    else:
        run_break = np.array(new_group, dtype=bool, copy=True)
        run_break[1:] |= dirs[1:] != dirs[:-1]
        run_starts = np.flatnonzero(run_break)
        run_lengths = np.diff(run_starts, append=n)
    # 0/1 direction bytes select like booleans everywhere below; the
    # cast to bool would only add a copy.
    run_up = dirs[run_starts]
    run_fresh = np.asarray(new_group, dtype=bool)[run_starts]
    n_runs = len(run_starts)

    # Each run is the saturated add v -> clip(v + delta, 0, top), i.e.
    # min(B, max(A, v + D)) with A = clip(delta), B = clip(top + delta).
    # All scan state fits int32 (|delta| <= n < 2**31), which halves the
    # memory the doubling passes touch.  Explicit minimum/maximum pairs
    # instead of np.clip: clip with Python-int bounds goes through a
    # slow bounds-normalisation path on every call.
    lengths32 = run_lengths.astype(np.int32)
    deltas = np.where(run_up, lengths32, -lengths32)
    lower = np.minimum(np.maximum(deltas, 0), top)
    upper = np.minimum(np.maximum(deltas + top, 0), top)
    # Group boundaries need no segment flags: bake each group's known
    # entry value into its first run, turning that composition into the
    # *constant* "value after this run".  A constant absorbs anything
    # folded in from its left, so group starts block cross-group folds
    # by construction — and runs of length >= top are constants too
    # (lower == upper), which keeps convergence to a handful of passes.
    group_entry = np.minimum(np.maximum(deltas + initial, 0), top)
    np.copyto(lower, group_entry, where=run_fresh)
    np.copyto(upper, group_entry, where=run_fresh)
    shifts = deltas  # consumed by the bake above; safe to reuse in place

    step = 1
    while step < n_runs:
        a1, b1, d1 = lower[:-step], upper[:-step], shifts[:-step]
        a2, b2, d2 = lower[step:], upper[step:], shifts[step:]
        # Positions < step already span the whole prefix; once every
        # later composition is constant, nothing can change any more.
        if (a2 == b2).all():
            break
        new_a = np.maximum(a2, a1 + d2)
        new_b = np.minimum(b2, np.maximum(a2, b1 + d2))
        np.minimum(new_b, new_a, out=new_a)
        d2 += d1
        lower[step:] = new_a
        upper[step:] = new_b
        step *= 2

    # Entry value of run i: the converged composition at i-1 applied to
    # any argument (the group-start constant has been absorbed), except
    # that a fresh run enters at the group's initial value.
    entry = np.empty(n_runs, dtype=np.int32)
    entry[0] = initial
    if n_runs > 1:
        np.minimum(
            upper[:-1],
            np.maximum(lower[:-1], shifts[:-1]),
            out=entry[1:],
        )
    entry[run_fresh] = initial

    # An up-run entering at v mispredicts its first threshold - v
    # events; a down-run its first v - threshold + 1 (both capped).
    raw = np.where(run_up, threshold - entry, entry - threshold + 1)
    wrongs = np.minimum(np.maximum(raw, 0), lengths32)
    return run_starts, run_lengths, wrongs


def wrong_positions(np, run_starts, wrongs):
    """Event positions of the mispredicted prefix of every run.

    Expands ``(run_starts, wrongs)`` from :func:`saturating_run_wrongs`
    into the indices of the mispredicted events — O(total wrongs) work,
    never O(events).
    """
    total = int(wrongs.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    before = np.cumsum(wrongs) - wrongs
    return (
        np.repeat(run_starts - before, wrongs)
        + np.arange(total, dtype=np.int64)
    )


def iter_runs(sequence: Sequence[int]):
    """``(direction, length)`` for each maximal run of a 0/1 byte
    sequence, scanning for boundaries at C speed via ``bytes.find``."""
    data = bytes(sequence)
    position = 0
    n = len(data)
    while position < n:
        direction = data[position]
        boundary = data.find(b"\x01" if direction == 0 else b"\x00", position)
        if boundary < 0:
            boundary = n
        yield direction, boundary - position
        position = boundary


def saturating_wrongs_seq(
    sequence: Sequence[int], threshold: int, top: int, initial: int
) -> int:
    """Total mispredictions of one saturating counter over *sequence*
    (pure-Python fallback of :func:`saturating_wrong_flags`)."""
    total = 0
    value = initial
    for direction, length in iter_runs(sequence):
        wrong, value = _run_mispredictions(value, direction, length, threshold, top)
        total += wrong
    return total


def count_runs_seq(sequence: Sequence[int]) -> int:
    """Number of maximal runs in a 0/1 byte sequence."""
    return sum(1 for _ in iter_runs(sequence))


def bincount_bool(np, site_ids, flags, n_sites: int) -> List[int]:
    """Per-site totals of a boolean per-event column, as Python ints."""
    # Filtering then counting stays integer end to end (bincount with
    # weights would round-trip through float64).
    return np.bincount(site_ids[flags], minlength=n_sites).tolist()


def fixed_guess_wrongs(columns, guesses: Sequence[bool]) -> List[int]:
    """Per-site mispredictions of frozen per-site *guesses*.

    A fixed guess is wrong on every not-taken execution when it guesses
    taken, and on every taken execution otherwise, so per-site taken
    totals score the whole static family without touching the event
    columns.
    """
    taken = columns.site_taken()
    counts = [0] * columns.n_sites
    for sid, executions in columns.site_executions().items():
        counts[sid] = (
            executions - taken[sid] if guesses[sid] else taken[sid]
        )
    return counts
