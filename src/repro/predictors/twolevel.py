"""Two-level adaptive branch prediction (Yeh/Patt, Pan/So/Rahmeh).

The first level is a branch-history shift register; the second level a
table of 2-bit saturating counters indexed by the history pattern.
Yeh and Patt's nine variants arise from choosing, independently for the
history registers and the pattern tables, one of three scopes:

* ``"global"``   — one shared register/table (GA*, *g),
* ``"set"``      — one per hash set of branches (SA*, *s),
* ``"peraddr"``  — one per branch (PA*, *p).

``two_level_4k()`` builds the configuration the paper evaluates as
"two level 4K bit": per-set 9-bit history registers (1K sets) with one
shared pattern table of 2-bit counters.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ir import BranchSite
from .base import Predictor

_SCOPES = ("global", "set", "peraddr")


def _site_hash(site: BranchSite) -> int:
    """Deterministic set-index hash for a branch site.

    Builtin ``hash()`` on strings is randomised per process
    (PYTHONHASHSEED), so using it for set selection would make the
    aliasing pattern — and hence every reported "set"-scope
    misprediction rate — vary from run to run.
    """
    return zlib.crc32(f"{site.function}:{site.block}".encode())


@dataclass(frozen=True)
class TwoLevelConfig:
    """Shape of a two-level predictor."""

    history_scope: str = "set"
    pattern_scope: str = "global"
    history_bits: int = 9
    history_sets: int = 1024
    pattern_sets: int = 1024
    counter_bits: int = 2

    def __post_init__(self) -> None:
        if self.history_scope not in _SCOPES or self.pattern_scope not in _SCOPES:
            raise ValueError(f"scopes must be one of {_SCOPES}")
        if self.history_bits < 1:
            raise ValueError("history_bits must be positive")

    @property
    def yeh_patt_name(self) -> str:
        """Conventional name, e.g. GAg, PAs, SAp."""
        first = {"global": "G", "set": "S", "peraddr": "P"}[self.history_scope]
        second = {"global": "g", "set": "s", "peraddr": "p"}[self.pattern_scope]
        return f"{first}A{second}"

    def cost_bits(self) -> int:
        """Hardware cost estimate in bits (per-address scopes are
        unbounded in software; they are costed at one entry per set)."""
        history_entries = {
            "global": 1,
            "set": self.history_sets,
            "peraddr": self.history_sets,
        }[self.history_scope]
        table_entries = 1 << self.history_bits
        table_count = {
            "global": 1,
            "set": self.pattern_sets,
            "peraddr": self.pattern_sets,
        }[self.pattern_scope]
        return (
            history_entries * self.history_bits
            + table_count * table_entries * self.counter_bits
        )


class TwoLevelPredictor(Predictor):
    """A configurable two-level adaptive predictor."""

    def __init__(self, config: TwoLevelConfig, name: Optional[str] = None) -> None:
        super().__init__(
            name
            if name is not None
            else f"two-level-{config.yeh_patt_name}-{config.history_bits}bit"
        )
        self.config = config
        self._mask = (1 << config.history_bits) - 1
        self._threshold = 1 << (config.counter_bits - 1)
        self._max = (1 << config.counter_bits) - 1
        self._histories: Dict[object, int] = {}
        self._counters: Dict[Tuple[object, int], int] = {}

    def reset(self) -> None:
        self._histories = {}
        self._counters = {}

    def _history_key(self, site: BranchSite) -> object:
        scope = self.config.history_scope
        if scope == "global":
            return 0
        if scope == "set":
            return _site_hash(site) % self.config.history_sets
        return site

    def _pattern_key(self, site: BranchSite) -> object:
        scope = self.config.pattern_scope
        if scope == "global":
            return 0
        if scope == "set":
            return _site_hash(site) % self.config.pattern_sets
        return site

    def predict(self, site: BranchSite) -> bool:
        history = self._histories.get(self._history_key(site), 0)
        counter = self._counters.get(
            (self._pattern_key(site), history), self._threshold
        )
        return counter >= self._threshold

    def update(self, site: BranchSite, taken: bool) -> None:
        hkey = self._history_key(site)
        history = self._histories.get(hkey, 0)
        ckey = (self._pattern_key(site), history)
        counter = self._counters.get(ckey, self._threshold)
        if taken:
            if counter < self._max:
                self._counters[ckey] = counter + 1
        else:
            if counter > 0:
                self._counters[ckey] = counter - 1
        self._histories[hkey] = ((history << 1) | (1 if taken else 0)) & self._mask

    def make_stepper(self, sites):
        # Keys are resolved once per *site* instead of once per event:
        # per-site-id key arrays index dense history lists, and the
        # pattern-table key packs (pattern entity, history) into one int.
        threshold = self._threshold
        top = self._max
        mask = self._mask
        shift = self.config.history_bits

        def keys_for(scope: str, sets: int):
            if scope == "global":
                return [0] * len(sites), 1
            if scope == "set":
                return [_site_hash(site) % sets for site in sites], sets
            return list(range(len(sites))), len(sites)

        hkeys, n_histories = keys_for(
            self.config.history_scope, self.config.history_sets
        )
        pkeys, _ = keys_for(self.config.pattern_scope, self.config.pattern_sets)
        histories = [0] * n_histories
        counters: Dict[int, int] = {}
        counters_get = counters.get

        def step(sid: int, direction: int) -> bool:
            hkey = hkeys[sid]
            history = histories[hkey]
            ckey = (pkeys[sid] << shift) | history
            counter = counters_get(ckey, threshold)
            if direction:
                if counter < top:
                    counters[ckey] = counter + 1
                histories[hkey] = ((history << 1) | 1) & mask
                return counter < threshold
            if counter > 0:
                counters[ckey] = counter - 1
            histories[hkey] = (history << 1) & mask
            return counter >= threshold

        return step


def two_level_4k(history_bits: int = 9) -> TwoLevelPredictor:
    """The paper's dynamic reference point ("two level 4K bit")."""
    return TwoLevelPredictor(
        TwoLevelConfig(
            history_scope="set",
            pattern_scope="global",
            history_bits=history_bits,
            history_sets=1024,
        ),
        name="two-level-4k",
    )


def all_yeh_patt_variants(history_bits: int = 6) -> Dict[str, TwoLevelPredictor]:
    """All nine history × pattern scope combinations [YN93]."""
    variants = {}
    for history_scope in _SCOPES:
        for pattern_scope in _SCOPES:
            config = TwoLevelConfig(
                history_scope=history_scope,
                pattern_scope=pattern_scope,
                history_bits=history_bits,
            )
            variants[config.yeh_patt_name] = TwoLevelPredictor(config)
    return variants
