"""Two-level adaptive branch prediction (Yeh/Patt, Pan/So/Rahmeh).

The first level is a branch-history shift register; the second level a
table of 2-bit saturating counters indexed by the history pattern.
Yeh and Patt's nine variants arise from choosing, independently for the
history registers and the pattern tables, one of three scopes:

* ``"global"``   — one shared register/table (GA*, *g),
* ``"set"``      — one per hash set of branches (SA*, *s),
* ``"peraddr"``  — one per branch (PA*, *p).

``two_level_4k()`` builds the configuration the paper evaluates as
"two level 4K bit": per-set 9-bit history registers (1K sets) with one
shared pattern table of 2-bit counters.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import BranchSite
from .base import Predictor
from .kernels import (
    group_starts,
    history_pack,
    saturating_run_wrongs,
    wrong_positions,
)

_SCOPES = ("global", "set", "peraddr")


def _site_hash(site: BranchSite) -> int:
    """Deterministic set-index hash for a branch site.

    Builtin ``hash()`` on strings is randomised per process
    (PYTHONHASHSEED), so using it for set selection would make the
    aliasing pattern — and hence every reported "set"-scope
    misprediction rate — vary from run to run.
    """
    return zlib.crc32(f"{site.function}:{site.block}".encode())


@dataclass(frozen=True)
class TwoLevelConfig:
    """Shape of a two-level predictor."""

    history_scope: str = "set"
    pattern_scope: str = "global"
    history_bits: int = 9
    history_sets: int = 1024
    pattern_sets: int = 1024
    counter_bits: int = 2

    def __post_init__(self) -> None:
        if self.history_scope not in _SCOPES or self.pattern_scope not in _SCOPES:
            raise ValueError(f"scopes must be one of {_SCOPES}")
        if self.history_bits < 1:
            raise ValueError("history_bits must be positive")

    @property
    def yeh_patt_name(self) -> str:
        """Conventional name, e.g. GAg, PAs, SAp."""
        first = {"global": "G", "set": "S", "peraddr": "P"}[self.history_scope]
        second = {"global": "g", "set": "s", "peraddr": "p"}[self.pattern_scope]
        return f"{first}A{second}"

    def cost_bits(self) -> int:
        """Hardware cost estimate in bits (per-address scopes are
        unbounded in software; they are costed at one entry per set)."""
        history_entries = {
            "global": 1,
            "set": self.history_sets,
            "peraddr": self.history_sets,
        }[self.history_scope]
        table_entries = 1 << self.history_bits
        table_count = {
            "global": 1,
            "set": self.pattern_sets,
            "peraddr": self.pattern_sets,
        }[self.pattern_scope]
        return (
            history_entries * self.history_bits
            + table_count * table_entries * self.counter_bits
        )


class TwoLevelPredictor(Predictor):
    """A configurable two-level adaptive predictor."""

    def __init__(self, config: TwoLevelConfig, name: Optional[str] = None) -> None:
        super().__init__(
            name
            if name is not None
            else f"two-level-{config.yeh_patt_name}-{config.history_bits}bit"
        )
        self.config = config
        self._mask = (1 << config.history_bits) - 1
        self._threshold = 1 << (config.counter_bits - 1)
        self._max = (1 << config.counter_bits) - 1
        self._histories: Dict[object, int] = {}
        self._counters: Dict[Tuple[object, int], int] = {}

    def reset(self) -> None:
        self._histories = {}
        self._counters = {}

    def _history_key(self, site: BranchSite) -> object:
        scope = self.config.history_scope
        if scope == "global":
            return 0
        if scope == "set":
            return _site_hash(site) % self.config.history_sets
        return site

    def _pattern_key(self, site: BranchSite) -> object:
        scope = self.config.pattern_scope
        if scope == "global":
            return 0
        if scope == "set":
            return _site_hash(site) % self.config.pattern_sets
        return site

    def predict(self, site: BranchSite) -> bool:
        history = self._histories.get(self._history_key(site), 0)
        counter = self._counters.get(
            (self._pattern_key(site), history), self._threshold
        )
        return counter >= self._threshold

    def update(self, site: BranchSite, taken: bool) -> None:
        hkey = self._history_key(site)
        history = self._histories.get(hkey, 0)
        ckey = (self._pattern_key(site), history)
        counter = self._counters.get(ckey, self._threshold)
        if taken:
            if counter < self._max:
                self._counters[ckey] = counter + 1
        else:
            if counter > 0:
                self._counters[ckey] = counter - 1
        self._histories[hkey] = ((history << 1) | (1 if taken else 0)) & self._mask

    def make_stepper(self, sites):
        # Keys are resolved once per *site* instead of once per event:
        # per-site-id key arrays index dense history lists, and the
        # pattern-table key packs (pattern entity, history) into one int.
        threshold = self._threshold
        top = self._max
        mask = self._mask
        shift = self.config.history_bits

        def keys_for(scope: str, sets: int):
            if scope == "global":
                return [0] * len(sites), 1
            if scope == "set":
                return [_site_hash(site) % sets for site in sites], sets
            return list(range(len(sites))), len(sites)

        hkeys, n_histories = keys_for(
            self.config.history_scope, self.config.history_sets
        )
        pkeys, _ = keys_for(self.config.pattern_scope, self.config.pattern_sets)
        histories = [0] * n_histories
        counters: Dict[int, int] = {}
        counters_get = counters.get

        def step(sid: int, direction: int) -> bool:
            hkey = hkeys[sid]
            history = histories[hkey]
            ckey = (pkeys[sid] << shift) | history
            counter = counters_get(ckey, threshold)
            if direction:
                if counter < top:
                    counters[ckey] = counter + 1
                histories[hkey] = ((history << 1) | 1) & mask
                return counter < threshold
            if counter > 0:
                counters[ckey] = counter - 1
            histories[hkey] = (history << 1) & mask
            return counter >= threshold

        return step

    def _scope_keys(self, scope: str, sets: int, n_sites: int, sites) -> List[int]:
        if scope == "global":
            return [0] * n_sites
        if scope == "set":
            return [_site_hash(site) % sets for site in sites]
        return list(range(n_sites))

    def step_batch(self, columns) -> List[int]:
        """Columnar scoring of the two-level predictor.

        The decomposition that makes an *adaptive* predictor batchable:
        history registers depend only on actual outcomes, never on the
        pattern-table counters, so every register's full contents over
        time is just the packed window of the previous outcomes routed
        to it — computable up front by grouping events by history key.
        With histories known, each (pattern entity, history) pair
        addresses an independent 2-bit saturating counter, so grouping
        events by that joint key reduces the second level to the same
        closed-form run kernel the plain saturating counter uses.
        """
        n_sites = columns.n_sites
        counts = [0] * n_sites
        n = columns.n_events
        if n == 0:
            return counts
        bits = self.config.history_bits
        threshold, top = self._threshold, self._max
        hkeys = self._scope_keys(
            self.config.history_scope, self.config.history_sets, n_sites, columns.sites
        )
        pkeys = self._scope_keys(
            self.config.pattern_scope, self.config.pattern_sets, n_sites, columns.sites
        )
        np = columns.np
        if np is None:
            return self._step_batch_sequential(columns, hkeys, pkeys)

        site_ids = columns.site_ids
        dirs = columns.directions

        # 1. Per-event history-register contents: group by history key,
        #    pack each group's previous outcomes, scatter back.  The
        #    history key is constant within every site-id run, so the
        #    grouping permutation comes from sorting *runs* (cheap)
        #    rather than argsorting the event column.  The whole column
        #    depends only on the trace and (scope, sets, bits) — never
        #    on predictor state — so it is cached on the snapshot and
        #    shared by every variant with the same first level.
        def build_histories():
            if self.config.history_scope == "global":
                return history_pack(np, dirs, bits)
            indices = columns.event_indices()
            run_sites, run_starts, run_lengths = columns.runs()
            hkey_table = np.asarray(hkeys, dtype=np.int64)
            run_hkeys = hkey_table[run_sites]
            # Stable integer argsort is a radix sort: the narrowest key
            # dtype that fits directly buys passes.
            sort_keys = (
                run_hkeys.astype(np.uint16)
                if max(hkeys) < 1 << 16
                else run_hkeys
            )
            run_order = np.argsort(sort_keys, kind="stable")
            starts_sorted = run_starts[run_order]
            lengths_sorted = run_lengths[run_order]
            before = np.cumsum(lengths_sorted) - lengths_sorted
            order = np.repeat(starts_sorted - before, lengths_sorted) + indices
            hkey_sorted = np.repeat(run_hkeys[run_order], lengths_sorted)
            new_register = np.empty(n, dtype=bool)
            new_register[0] = True
            np.not_equal(hkey_sorted[1:], hkey_sorted[:-1], out=new_register[1:])
            histories_sorted = history_pack(
                np, dirs[order], bits, group_starts(np, new_register, indices)
            )
            scattered = np.empty(n, dtype=histories_sorted.dtype)
            scattered[order] = histories_sorted
            return scattered

        if self.config.history_scope == "global":
            # Same column as the correlation strategy's global register.
            cache_key = ("ghist", bits)
        else:
            cache_key = (
                "tl-hist",
                self.config.history_scope,
                self.config.history_sets,
                bits,
            )
        histories = columns.cached(cache_key, build_histories)
        # 2. Joint counter key, one independent saturating counter per
        #    distinct (pattern entity, history) value, built and sorted
        #    in the narrowest dtype that fits.  Like the history column,
        #    the grouping permutation and its run partition are pure
        #    functions of the trace and the config's scopes/bits, so
        #    they live in the snapshot cache too; only the counter
        #    scoring and attribution run per call.
        def build_counter_grouping():
            counter_keys = (
                np.asarray(pkeys, dtype=np.int32)[site_ids] << bits
            ) | histories.astype(np.int32, copy=False)
            top_key = int(max(pkeys)) << bits | self._mask
            if top_key < 1 << 16:
                counter_keys = counter_keys.astype(np.uint16)
            order = np.argsort(counter_keys, kind="stable")
            keys_sorted = counter_keys[order]
            new_counter = np.empty(n, dtype=bool)
            new_counter[0] = True
            np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=new_counter[1:])
            dirs_sorted = dirs[order]
            run_break = new_counter.copy()
            run_break[1:] |= dirs_sorted[1:] != dirs_sorted[:-1]
            run_starts = np.flatnonzero(run_break)
            run_lengths = np.diff(run_starts, append=n)
            return order, new_counter, dirs_sorted, (run_starts, run_lengths)

        order, new_counter, dirs_sorted, runs = columns.cached(
            (
                "tl-ckey",
                self.config.history_scope,
                self.config.history_sets,
                self.config.pattern_scope,
                self.config.pattern_sets,
                bits,
            ),
            build_counter_grouping,
        )
        starts, _, wrongs = saturating_run_wrongs(
            np, new_counter, dirs_sorted, threshold, top, threshold, runs=runs
        )
        wrong_events = order[wrong_positions(np, starts, wrongs)]
        return np.bincount(site_ids[wrong_events], minlength=n_sites).tolist()

    def _step_batch_sequential(self, columns, hkeys, pkeys) -> List[int]:
        """Pure-Python columnar fallback: one pass over the two columns
        with per-site key arrays (no BranchSite hashing, no closures)."""
        counts = [0] * columns.n_sites
        threshold, top = self._threshold, self._max
        mask = self._mask
        shift = self.config.history_bits
        histories = [0] * (max(hkeys) + 1)
        counters: Dict[int, int] = {}
        counters_get = counters.get
        for sid, direction in zip(columns.site_ids, columns.directions):
            hkey = hkeys[sid]
            history = histories[hkey]
            ckey = (pkeys[sid] << shift) | history
            counter = counters_get(ckey, threshold)
            if direction:
                if counter < top:
                    counters[ckey] = counter + 1
                histories[hkey] = ((history << 1) | 1) & mask
                if counter < threshold:
                    counts[sid] += 1
            else:
                if counter > 0:
                    counters[ckey] = counter - 1
                histories[hkey] = (history << 1) & mask
                if counter >= threshold:
                    counts[sid] += 1
        return counts


def two_level_4k(history_bits: int = 9) -> TwoLevelPredictor:
    """The paper's dynamic reference point ("two level 4K bit")."""
    return TwoLevelPredictor(
        TwoLevelConfig(
            history_scope="set",
            pattern_scope="global",
            history_bits=history_bits,
            history_sets=1024,
        ),
        name="two-level-4k",
    )


def all_yeh_patt_variants(history_bits: int = 6) -> Dict[str, TwoLevelPredictor]:
    """All nine history × pattern scope combinations [YN93]."""
    variants = {}
    for history_scope in _SCOPES:
        for pattern_scope in _SCOPES:
            config = TwoLevelConfig(
                history_scope=history_scope,
                pattern_scope=pattern_scope,
                history_bits=history_bits,
            )
            variants[config.yeh_patt_name] = TwoLevelPredictor(config)
    return variants
