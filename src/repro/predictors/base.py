"""Predictor interface and the trace-driven evaluation engine.

Every strategy in the paper — static, dynamic or semi-static — is
modelled as a :class:`Predictor` that is asked for a prediction before
each trace event and told the outcome after it.  Semi-static predictors
are *fit* from a training profile first; dynamic predictors learn
on-line; static predictors ignore the trace entirely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ir import BranchSite
from ..profiling import Trace
from ..profiling.columns import TraceColumns

#: A fused predict+observe step: ``step(site_id, direction) -> mispredicted``
#: with ``direction`` the trace's 0/1 outcome.
Stepper = Callable[[int, int], bool]


class Predictor(abc.ABC):
    """A branch-direction predictor evaluated against a trace.

    Every concrete predictor passes its human-readable strategy name
    (used in reports) to ``super().__init__``; ``name`` is always an
    instance attribute fixed at construction time, never a mutated
    class attribute.
    """

    #: True when :meth:`predict` depends only on the site — no run-time
    #: state, no history, no sensitivity to event order.  The evaluation
    #: engine scores such predictors in closed form from per-site taken
    #: counts (O(sites)) instead of replaying the trace (O(events)).
    order_independent: bool = False

    def __init__(self, name: str) -> None:
        self.name = name

    def reset(self) -> None:
        """Clear run-time state before an evaluation pass."""

    @abc.abstractmethod
    def predict(self, site: BranchSite) -> bool:
        """Predict the direction of the next execution of *site*."""

    def update(self, site: BranchSite, taken: bool) -> None:
        """Observe the actual outcome (after :meth:`predict`)."""

    def make_stepper(self, sites: List[BranchSite]) -> Stepper:
        """A fused per-event kernel for the evaluation engine.

        *sites* is the trace's interned site table; the returned
        ``step(site_id, direction) -> mispredicted`` is equivalent to
        ``predict(sites[site_id]) is not bool(direction)`` followed by
        ``update(sites[site_id], bool(direction))``.  Subclasses
        override this to share work between the two halves (one state
        lookup instead of two) and to replace per-event ``BranchSite``
        hashing with precomputed per-site-id arrays; the contract is
        exact *result* equivalence with the ``predict``/``update``
        pair.  Call :meth:`reset` first; the stepper may keep its state
        in the closure, so the predictor must be reset again (and a
        fresh stepper made) before any reuse.
        """
        predict = self.predict
        update = self.update

        def step(sid: int, direction: int) -> bool:
            site = sites[sid]
            outcome = direction == 1
            wrong = predict(site) is not outcome
            update(site, outcome)
            return wrong

        return step

    def step_batch(self, columns: TraceColumns) -> Optional[List[int]]:
        """Columnar batch kernel: per-site-id misprediction counts.

        *columns* is the trace's columnar view
        (:meth:`~repro.profiling.trace.Trace.columns`).  A family that
        can score itself column-wise returns a list of
        ``columns.n_sites`` misprediction counts — exactly the per-site
        totals the sequential ``predict``/``update`` replay produces,
        whether or not numpy is importable (``columns.np`` is ``None``
        on the pure-Python fallback).  The default returns ``None``,
        which sends the predictor down the fused per-event stepper scan
        instead.

        Kernels are pure functions of the frozen predictor
        configuration and the columns: they must not mutate predictor
        state, and they assume :meth:`reset` semantics (history
        registers start zeroed, counters at their initial value).
        """
        return None


@dataclass
class SiteStats:
    """Per-branch evaluation counters."""

    executions: int = 0
    mispredictions: int = 0

    @property
    def rate(self) -> float:
        return self.mispredictions / self.executions if self.executions else 0.0


@dataclass
class EvaluationResult:
    """Outcome of evaluating one predictor over one trace."""

    predictor: str
    events: int
    mispredictions: int
    per_site: Dict[BranchSite, SiteStats] = field(default_factory=dict)

    @property
    def misprediction_rate(self) -> float:
        """Fraction of dynamic branches mispredicted (0..1)."""
        return self.mispredictions / self.events if self.events else 0.0

    @property
    def accuracy(self) -> float:
        return 1.0 - self.misprediction_rate

    def __str__(self) -> str:
        return (
            f"{self.predictor}: {self.misprediction_rate:.2%} "
            f"({self.mispredictions}/{self.events})"
        )


def evaluate(predictor: Predictor, trace: Trace) -> EvaluationResult:
    """Run *predictor* over *trace* and count mispredictions."""
    predictor.reset()
    sites = trace.sites
    stats: Dict[int, SiteStats] = {}
    mispredictions = 0
    events = 0
    predict = predictor.predict
    update = predictor.update
    for sid, taken in trace.events():
        site = sites[sid]
        guess = predict(site)
        outcome = bool(taken)
        wrong = guess is not outcome
        if wrong:
            mispredictions += 1
        events += 1
        entry = stats.get(sid)
        if entry is None:
            entry = stats[sid] = SiteStats()
        entry.executions += 1
        if wrong:
            entry.mispredictions += 1
        update(site, outcome)
    per_site = {sites[sid]: stat for sid, stat in stats.items()}
    return EvaluationResult(predictor.name, events, mispredictions, per_site)
