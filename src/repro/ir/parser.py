"""Parser for the textual IR format produced by :mod:`repro.ir.printer`.

The grammar is line oriented:

* ``func NAME(p1, p2) {`` opens a function, ``}`` closes it;
* ``LABEL:`` opens a basic block;
* every other non-empty line is one instruction;
* ``#`` and ``;`` start comments that run to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .blocks import BasicBlock, Function, Program
from .instructions import (
    Alloc,
    BinOp,
    BINOPS,
    Branch,
    Call,
    Cmp,
    CMPOPS,
    Const,
    In,
    Jump,
    Load,
    Move,
    Operand,
    Out,
    Return,
    Store,
    UnOp,
    UNOPS,
)


class ParseError(Exception):
    """Raised on malformed IR text, with a line number."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_FUNC_RE = re.compile(r"^func\s+(\w[\w.]*)\s*\(([^)]*)\)\s*\{$")
_LABEL_RE = re.compile(r"^(\w[\w.@|]*)\s*:$")
_ASSIGN_RE = re.compile(r"^(\w[\w.]*)\s*=\s*(.+)$")
_CALL_RE = re.compile(r"^call\s+(\w[\w.]*)\s*\(([^)]*)\)$")
_BRANCH_RE = re.compile(
    r"^(br(?:\.ptr)?(?:\.[tn])?)\s+(\w+)\s+(\S+)\s*,\s*(\S+)"
    r"\s*\?\s*(\S+)\s*:\s*(\S+)$"
)
_IDENT_RE = re.compile(r"^\w[\w.@|]*$")


def _operand(token: str, line_number: int) -> Operand:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        pass
    if _IDENT_RE.match(token):
        return token
    raise ParseError(f"bad operand {token!r}", line_number)


def _operands(text: str, line_number: int, count: int) -> List[Operand]:
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != count:
        raise ParseError(f"expected {count} operands in {text!r}", line_number)
    return [_operand(p, line_number) for p in parts]


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_rhs(dest: str, rhs: str, line_number: int):
    """Parse the right-hand side of an assignment instruction."""
    call_match = _CALL_RE.match(rhs)
    if call_match:
        func, argtext = call_match.groups()
        args = tuple(
            _operand(a, line_number) for a in argtext.split(",") if a.strip()
        )
        return Call(dest, func, args)
    parts = rhs.split(None, 1)
    keyword = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if keyword == "const":
        return Const(dest, int(rest.strip(), 0))
    if keyword == "move":
        return Move(dest, _operand(rest, line_number))
    if keyword == "in":
        if rest:
            raise ParseError("'in' takes no operands", line_number)
        return In(dest)
    if keyword == "load":
        addr, offset = _operands(rest, line_number, 2)
        if not isinstance(offset, int):
            raise ParseError("load offset must be an immediate", line_number)
        return Load(dest, addr, offset)
    if keyword == "alloc":
        return Alloc(dest, _operand(rest, line_number))
    if keyword == "cmp":
        opparts = rest.split(None, 1)
        if len(opparts) != 2 or opparts[0] not in CMPOPS:
            raise ParseError(f"bad cmp {rest!r}", line_number)
        lhs, rhs_op = _operands(opparts[1], line_number, 2)
        return Cmp(dest, opparts[0], lhs, rhs_op)
    if keyword in BINOPS:
        lhs, rhs_op = _operands(rest, line_number, 2)
        return BinOp(dest, keyword, lhs, rhs_op)
    if keyword in UNOPS:
        return UnOp(dest, keyword, _operand(rest, line_number))
    raise ParseError(f"unknown instruction {keyword!r}", line_number)


def _parse_instruction(text: str, line_number: int):
    """Parse one instruction line into an Instr."""
    branch_match = _BRANCH_RE.match(text)
    if branch_match:
        mnemonic, op, lhs, rhs, taken, not_taken = branch_match.groups()
        if op not in CMPOPS:
            raise ParseError(f"bad branch op {op!r}", line_number)
        modifiers = mnemonic.split(".")[1:]
        predict = None
        if "t" in modifiers:
            predict = True
        elif "n" in modifiers:
            predict = False
        return Branch(
            op,
            _operand(lhs, line_number),
            _operand(rhs, line_number),
            taken,
            not_taken,
            pointer="ptr" in modifiers,
            predict=predict,
        )
    assign_match = _ASSIGN_RE.match(text)
    if assign_match:
        dest, rhs = assign_match.groups()
        return _parse_rhs(dest, rhs.strip(), line_number)
    parts = text.split(None, 1)
    keyword = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if keyword == "jump":
        return Jump(rest.strip())
    if keyword == "ret":
        if not rest:
            return Return(None)
        return Return(_operand(rest, line_number))
    if keyword == "out":
        return Out(_operand(rest, line_number))
    if keyword == "store":
        addr, value, offset = _operands(rest, line_number, 3)
        if not isinstance(offset, int):
            raise ParseError("store offset must be an immediate", line_number)
        return Store(addr, value, offset)
    if keyword == "call":
        call_match = _CALL_RE.match(text)
        if call_match:
            func, argtext = call_match.groups()
            args = tuple(
                _operand(a, line_number) for a in argtext.split(",") if a.strip()
            )
            return Call(None, func, args)
    raise ParseError(f"cannot parse {text!r}", line_number)


def parse_program(text: str, main: str = "main") -> Program:
    """Parse a full program from its textual form."""
    program = Program(main)
    function: Optional[Function] = None
    block: Optional[BasicBlock] = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        func_match = _FUNC_RE.match(line)
        if func_match:
            if function is not None:
                raise ParseError("nested function", line_number)
            name, paramtext = func_match.groups()
            params = [p.strip() for p in paramtext.split(",") if p.strip()]
            function = Function(name, params)
            block = None
            continue
        if line == "}":
            if function is None:
                raise ParseError("'}' outside function", line_number)
            program.add_function(function)
            function = None
            block = None
            continue
        if function is None:
            raise ParseError(f"statement outside function: {line!r}", line_number)
        label_match = _LABEL_RE.match(line)
        if label_match:
            new_block = BasicBlock(label_match.group(1))
            # A block without an explicit terminator falls through.
            if block is not None and block.terminator is None:
                block.terminator = Jump(new_block.label)
            block = new_block
            function.add_block(block)
            continue
        if block is None:
            raise ParseError("instruction before first label", line_number)
        if block.terminator is not None:
            raise ParseError(
                f"instruction after terminator in block {block.label!r}",
                line_number,
            )
        instr = _parse_instruction(line, line_number)
        if isinstance(instr, (Jump, Branch, Return)):
            block.terminator = instr
        else:
            block.instrs.append(instr)
    if function is not None:
        raise ParseError("unterminated function at end of input", 0)
    return program


def parse_function(text: str) -> Function:
    """Parse a single function definition."""
    program = parse_program(text, main="__unused__")
    functions = list(program)
    if len(functions) != 1:
        raise ParseError("expected exactly one function", 0)
    return functions[0]
