"""Textual rendering of IR programs.

The format round-trips through :mod:`repro.ir.parser` and is meant to
be pleasant to read in tests and examples::

    func main(n) {
    entry:
      i = const 0
      jump loop
    loop:
      i = add i, 1
      br lt i, n ? loop : done
    done:
      ret i
    }
"""

from __future__ import annotations

from typing import List

from .blocks import BasicBlock, Function, Program
from .instructions import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Cmp,
    Const,
    In,
    Instr,
    IRError,
    Jump,
    Load,
    Move,
    Operand,
    Out,
    Return,
    Store,
    UnOp,
)


def format_operand(operand: Operand) -> str:
    """Render a register name or immediate literal."""
    return operand if isinstance(operand, str) else str(operand)


def format_instr(instr: Instr) -> str:
    """Render a single instruction (without indentation)."""
    if isinstance(instr, Const):
        return f"{instr.dest} = const {instr.value}"
    if isinstance(instr, Move):
        return f"{instr.dest} = move {format_operand(instr.src)}"
    if isinstance(instr, BinOp):
        return (
            f"{instr.dest} = {instr.op} "
            f"{format_operand(instr.lhs)}, {format_operand(instr.rhs)}"
        )
    if isinstance(instr, UnOp):
        return f"{instr.dest} = {instr.op} {format_operand(instr.src)}"
    if isinstance(instr, Cmp):
        return (
            f"{instr.dest} = cmp {instr.op} "
            f"{format_operand(instr.lhs)}, {format_operand(instr.rhs)}"
        )
    if isinstance(instr, Load):
        return f"{instr.dest} = load {format_operand(instr.addr)}, {instr.offset}"
    if isinstance(instr, Store):
        return (
            f"store {format_operand(instr.addr)}, "
            f"{format_operand(instr.value)}, {instr.offset}"
        )
    if isinstance(instr, Alloc):
        return f"{instr.dest} = alloc {format_operand(instr.size)}"
    if isinstance(instr, Call):
        args = ", ".join(format_operand(a) for a in instr.args)
        if instr.dest is None:
            return f"call {instr.func}({args})"
        return f"{instr.dest} = call {instr.func}({args})"
    if isinstance(instr, In):
        return f"{instr.dest} = in"
    if isinstance(instr, Out):
        return f"out {format_operand(instr.value)}"
    if isinstance(instr, Jump):
        return f"jump {instr.target}"
    if isinstance(instr, Branch):
        mnemonic = "br"
        if instr.pointer:
            mnemonic += ".ptr"
        if instr.predict is not None:
            # Prediction is part of the syntax so annotated programs
            # round-trip: .t = predict taken, .n = predict not-taken.
            mnemonic += ".t" if instr.predict else ".n"
        return (
            f"{mnemonic} {instr.op} {format_operand(instr.lhs)}, "
            f"{format_operand(instr.rhs)} ? {instr.taken} : {instr.not_taken}"
        )
    if isinstance(instr, Return):
        if instr.value is None:
            return "ret"
        return f"ret {format_operand(instr.value)}"
    raise IRError(f"cannot print {instr!r}")


def format_block(block: BasicBlock) -> str:
    lines: List[str] = [f"{block.label}:"]
    for instr in block.instrs:
        lines.append(f"  {format_instr(instr)}")
    if block.terminator is not None:
        lines.append(f"  {format_instr(block.terminator)}")
    return "\n".join(lines)


def format_function(function: Function) -> str:
    params = ", ".join(function.params)
    lines = [f"func {function.name}({params}) {{"]
    # Entry block first, then the rest in insertion order.
    ordered = [function.entry_block()]
    ordered.extend(b for b in function if b.label != function.entry)
    lines.extend(format_block(block) for block in ordered)
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a whole program (entry function first)."""
    ordered = [program.main_function()]
    ordered.extend(f for f in program if f.name != program.main)
    return "\n\n".join(format_function(f) for f in ordered) + "\n"
