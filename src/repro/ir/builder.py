"""Imperative construction API for IR programs.

:class:`FunctionBuilder` appends instructions to a *current block* and
starts new blocks with :meth:`~FunctionBuilder.label`; every emitting
method returns the destination register so expressions compose:

    >>> fb = FunctionBuilder("main")
    >>> i = fb.const(0)
    >>> fb.label("loop")                                # doctest: +SKIP
    >>> total = fb.add(i, 1)                            # doctest: +SKIP

Blocks left without an explicit terminator fall through to the next
:meth:`label` via an implicit jump.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .blocks import BasicBlock, Function, Program
from .instructions import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Cmp,
    Const,
    In,
    Instr,
    IRError,
    Jump,
    Load,
    Move,
    Operand,
    Out,
    Return,
    Store,
    Terminator,
    UnOp,
)


class FunctionBuilder:
    """Builds one :class:`~repro.ir.blocks.Function` imperatively."""

    def __init__(self, name: str, params: Optional[Sequence[str]] = None) -> None:
        self.function = Function(name, params)
        self._reg_counter = 0
        self._current: Optional[BasicBlock] = None
        self.label("entry")

    # -- block management ---------------------------------------------------

    def label(self, name: str) -> str:
        """Start a new block named *name*; the previous block falls through."""
        if self._current is not None and self._current.terminator is None:
            self._current.terminator = Jump(name)
        block = BasicBlock(name)
        self.function.add_block(block)
        self._current = block
        return name

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise IRError("no current block (function already finished?)")
        return self._current

    def reg(self, hint: str = "t") -> str:
        """Allocate a fresh virtual register name."""
        self._reg_counter += 1
        return f"{hint}{self._reg_counter}"

    def emit(self, instr: Instr) -> Instr:
        """Append a non-terminator instruction to the current block."""
        if isinstance(instr, Terminator):
            raise IRError("use terminate()/jump()/branch() for terminators")
        if self.current.terminator is not None:
            raise IRError(f"block {self.current.label!r} already terminated")
        self.current.instrs.append(instr)
        return instr

    def terminate(self, term: Terminator) -> None:
        """Close the current block with *term*."""
        if self.current.terminator is not None:
            raise IRError(f"block {self.current.label!r} already terminated")
        self.current.terminator = term

    # -- straight-line instruction helpers ----------------------------------

    def const(self, value: int, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(Const(dest, value))
        return dest

    def move(self, src: Operand, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(Move(dest, src))
        return dest

    def binop(self, op: str, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(BinOp(dest, op, lhs, rhs))
        return dest

    def add(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("add", lhs, rhs, dest)

    def sub(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("sub", lhs, rhs, dest)

    def mul(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("mul", lhs, rhs, dest)

    def div(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("div", lhs, rhs, dest)

    def mod(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("mod", lhs, rhs, dest)

    def band(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("and", lhs, rhs, dest)

    def bor(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("or", lhs, rhs, dest)

    def bxor(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("xor", lhs, rhs, dest)

    def shl(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("shl", lhs, rhs, dest)

    def shr(self, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        return self.binop("shr", lhs, rhs, dest)

    def unop(self, op: str, src: Operand, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(UnOp(dest, op, src))
        return dest

    def cmp(self, op: str, lhs: Operand, rhs: Operand, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(Cmp(dest, op, lhs, rhs))
        return dest

    def load(self, addr: Operand, offset: int = 0, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(Load(dest, addr, offset))
        return dest

    def store(self, addr: Operand, value: Operand, offset: int = 0) -> None:
        self.emit(Store(addr, value, offset))

    def alloc(self, size: Operand, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(Alloc(dest, size))
        return dest

    def call(
        self,
        func: str,
        args: Iterable[Operand] = (),
        dest: Optional[str] = None,
        void: bool = False,
    ) -> Optional[str]:
        """Emit a call; returns the destination register (None if *void*)."""
        if void:
            self.emit(Call(None, func, tuple(args)))
            return None
        dest = dest or self.reg()
        self.emit(Call(dest, func, tuple(args)))
        return dest

    def input(self, dest: Optional[str] = None) -> str:
        dest = dest or self.reg()
        self.emit(In(dest))
        return dest

    def output(self, value: Operand) -> None:
        self.emit(Out(value))

    # -- terminator helpers --------------------------------------------------

    def jump(self, target: str) -> None:
        self.terminate(Jump(target))

    def branch(
        self,
        op: str,
        lhs: Operand,
        rhs: Operand,
        taken: str,
        not_taken: str,
        pointer: bool = False,
    ) -> None:
        self.terminate(Branch(op, lhs, rhs, taken, not_taken, pointer=pointer))

    def ret(self, value: Optional[Operand] = None) -> None:
        self.terminate(Return(value))

    # -- finishing ------------------------------------------------------------

    def build(self) -> Function:
        """Finish construction and return the function.

        A dangling unterminated final block receives ``return``.
        """
        if self._current is not None and self._current.terminator is None:
            self._current.terminator = Return(None)
        self._current = None
        return self.function


class ProgramBuilder:
    """Builds a whole :class:`~repro.ir.blocks.Program`."""

    def __init__(self, main: str = "main") -> None:
        self.program = Program(main)
        self._builders: List[FunctionBuilder] = []

    def function(self, name: str, params: Optional[Sequence[str]] = None) -> FunctionBuilder:
        builder = FunctionBuilder(name, params)
        self._builders.append(builder)
        return builder

    def build(self) -> Program:
        for builder in self._builders:
            self.program.add_function(builder.build())
        self._builders = []
        return self.program
