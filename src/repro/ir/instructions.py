"""Instruction set of the small register-transfer IR.

The IR is deliberately close to the assembly level the paper's tools
operate on: an unbounded set of virtual registers, integer arithmetic,
a flat byte-less word memory, calls, and *compare-and-branch*
terminators that carry their comparison opcode (needed by the
Ball/Larus opcode heuristic and by the replication planner).

Operands are either a register name (``str``) or an immediate integer
(``int``).  All instructions are immutable dataclasses; program
transformations build new instances (see :func:`retarget`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, Union

Operand = Union[str, int]

#: Binary ALU operations understood by the interpreter.
BINOPS = (
    "add", "sub", "mul", "div", "mod",
    "and", "or", "xor", "shl", "shr",
    "min", "max",
)

#: Unary ALU operations.
UNOPS = ("neg", "not", "abs")

#: Comparison opcodes a conditional branch may carry.
CMPOPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Negation table for comparison opcodes (used to flip branch polarity).
CMP_NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "le": "gt", "gt": "le", "ge": "lt"}


class IRError(Exception):
    """Raised for malformed IR constructs."""


def is_reg(operand: Operand) -> bool:
    """Return True if *operand* names a register (vs an immediate)."""
    return isinstance(operand, str)


@dataclass(frozen=True)
class Instr:
    """Base class for all instructions."""

    def uses(self) -> Tuple[str, ...]:
        """Registers read by this instruction."""
        return ()

    def defs(self) -> Tuple[str, ...]:
        """Registers written by this instruction."""
        return ()


def _regs(*operands: Operand) -> Tuple[str, ...]:
    return tuple(op for op in operands if isinstance(op, str))


@dataclass(frozen=True)
class Const(Instr):
    """``dest = value`` — load an immediate into a register."""

    dest: str
    value: int

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class Move(Instr):
    """``dest = src`` — register/immediate copy."""

    dest: str
    src: Operand

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.src)

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class BinOp(Instr):
    """``dest = lhs <op> rhs`` for ``op`` in :data:`BINOPS`."""

    dest: str
    op: str
    lhs: Operand
    rhs: Operand

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise IRError(f"unknown binary op {self.op!r}")

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.lhs, self.rhs)

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class UnOp(Instr):
    """``dest = <op> src`` for ``op`` in :data:`UNOPS`."""

    dest: str
    op: str
    src: Operand

    def __post_init__(self) -> None:
        if self.op not in UNOPS:
            raise IRError(f"unknown unary op {self.op!r}")

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.src)

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class Cmp(Instr):
    """``dest = lhs <op> rhs`` producing 0/1, ``op`` in :data:`CMPOPS`."""

    dest: str
    op: str
    lhs: Operand
    rhs: Operand

    def __post_init__(self) -> None:
        if self.op not in CMPOPS:
            raise IRError(f"unknown comparison op {self.op!r}")

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.lhs, self.rhs)

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class Load(Instr):
    """``dest = mem[addr + offset]`` — uninitialised cells read as 0."""

    dest: str
    addr: Operand
    offset: int = 0

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.addr)

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class Store(Instr):
    """``mem[addr + offset] = value``."""

    addr: Operand
    value: Operand
    offset: int = 0

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.addr, self.value)


@dataclass(frozen=True)
class Alloc(Instr):
    """``dest = bump-allocate(size)`` — returns base address of a fresh
    zero-initialised region of *size* words."""

    dest: str
    size: Operand

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.size)

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class Call(Instr):
    """``dest = func(args...)`` — *dest* may be None for void calls."""

    dest: Optional[str]
    func: str
    args: Tuple[Operand, ...] = ()

    def uses(self) -> Tuple[str, ...]:
        return _regs(*self.args)

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,) if self.dest is not None else ()


@dataclass(frozen=True)
class In(Instr):
    """``dest = next input word`` — reads the machine's input stream.

    Reading past the end of the stream traps (the workload generators
    always provide enough input).
    """

    dest: str

    def defs(self) -> Tuple[str, ...]:
        return (self.dest,)


@dataclass(frozen=True)
class Out(Instr):
    """Append *value* to the machine's output stream."""

    value: Operand

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.value)


# --------------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Terminator(Instr):
    """Base class for block terminators."""

    def targets(self) -> Tuple[str, ...]:
        """Successor block labels, in order."""
        return ()


@dataclass(frozen=True)
class Jump(Terminator):
    """Unconditional jump."""

    target: str

    def targets(self) -> Tuple[str, ...]:
        return (self.target,)


@dataclass(frozen=True)
class Branch(Terminator):
    """Conditional compare-and-branch.

    The branch is *taken* (control moves to :attr:`taken`) when
    ``lhs <op> rhs`` holds, otherwise it falls through to
    :attr:`not_taken`.

    Attributes beyond the comparison carry compiler metadata:

    * ``pointer`` — the operands are addresses (Ball/Larus *pointer*
      heuristic).
    * ``predict`` — semi-static prediction planted by an optimiser:
      ``True`` = predict taken, ``False`` = predict not taken,
      ``None`` = unannotated.
    """

    op: str
    lhs: Operand
    rhs: Operand
    taken: str
    not_taken: str
    pointer: bool = False
    predict: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.op not in CMPOPS:
            raise IRError(f"unknown comparison op {self.op!r}")

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.lhs, self.rhs)

    def targets(self) -> Tuple[str, ...]:
        return (self.taken, self.not_taken)

    def negated(self) -> "Branch":
        """Return the equivalent branch with flipped polarity."""
        return dataclasses.replace(
            self,
            op=CMP_NEGATE[self.op],
            taken=self.not_taken,
            not_taken=self.taken,
            predict=None if self.predict is None else not self.predict,
        )


@dataclass(frozen=True)
class Return(Terminator):
    """Return from the current function (optionally with a value)."""

    value: Optional[Operand] = None

    def uses(self) -> Tuple[str, ...]:
        return _regs(self.value) if self.value is not None else ()


def retarget(term: Terminator, mapping) -> Terminator:
    """Return *term* with successor labels rewritten through *mapping*.

    *mapping* is a callable ``old_label -> new_label``; labels it leaves
    unchanged are kept.  Used by the code-replication transform.
    """
    if isinstance(term, Jump):
        return dataclasses.replace(term, target=mapping(term.target))
    if isinstance(term, Branch):
        return dataclasses.replace(
            term, taken=mapping(term.taken), not_taken=mapping(term.not_taken)
        )
    return term
