"""Structural validation of IR programs.

``validate_program`` checks the invariants the rest of the system
relies on; transforms call it after rewriting to catch bugs early:

* every block has a terminator;
* every branch/jump target names an existing block;
* every called function exists and is called with the right arity;
* the entry block exists;
* every register used is defined somewhere in the function (a cheap
  over-approximation of def-before-use) or is a parameter.
"""

from __future__ import annotations

from typing import List, Set

from .blocks import Function, Program
from .instructions import Call, Instr


class ValidationError(Exception):
    """Raised when a program violates an IR invariant."""


def _check_function(program: Program, function: Function, errors: List[str]) -> None:
    where = f"function {function.name!r}"
    if function.entry is None or function.entry not in function.blocks:
        errors.append(f"{where}: missing entry block")
        return
    defined: Set[str] = set(function.params)
    for block in function:
        if block.terminator is None:
            errors.append(f"{where}: block {block.label!r} has no terminator")
            continue
        for instr in list(block.instrs) + [block.terminator]:
            defined.update(instr.defs())
        for target in block.terminator.targets():
            if target not in function.blocks:
                errors.append(
                    f"{where}: block {block.label!r} targets unknown "
                    f"block {target!r}"
                )
    for block in function:
        instrs: List[Instr] = list(block.instrs)
        if block.terminator is not None:
            instrs.append(block.terminator)
        for instr in instrs:
            for reg in instr.uses():
                if reg not in defined:
                    errors.append(
                        f"{where}: block {block.label!r} uses undefined "
                        f"register {reg!r}"
                    )
            if isinstance(instr, Call):
                callee = program.functions.get(instr.func)
                if callee is None:
                    errors.append(f"{where}: call to unknown function {instr.func!r}")
                elif len(callee.params) != len(instr.args):
                    errors.append(
                        f"{where}: call to {instr.func!r} with "
                        f"{len(instr.args)} args, expected {len(callee.params)}"
                    )


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` if *program* is malformed."""
    errors: List[str] = []
    if program.main not in program.functions:
        errors.append(f"missing entry function {program.main!r}")
    for function in program:
        _check_function(program, function, errors)
    if errors:
        raise ValidationError("; ".join(errors))
