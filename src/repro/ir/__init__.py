"""A small assembly-level intermediate representation.

This package provides the substrate every other part of the
reproduction consumes: programs made of functions, basic blocks and
compare-and-branch terminators, plus a builder, a textual parser and
printer, and a structural validator.
"""

from .blocks import BasicBlock, BranchSite, Function, Program
from .builder import FunctionBuilder, ProgramBuilder
from .instructions import (
    Alloc,
    BinOp,
    BINOPS,
    Branch,
    Call,
    Cmp,
    CMP_NEGATE,
    CMPOPS,
    Const,
    In,
    Instr,
    IRError,
    Jump,
    Load,
    Move,
    Operand,
    Out,
    Return,
    Store,
    Terminator,
    UnOp,
    UNOPS,
    is_reg,
    retarget,
)
from .parser import ParseError, parse_function, parse_program
from .printer import format_block, format_function, format_instr, format_program
from .validate import ValidationError, validate_program

__all__ = [
    "Alloc",
    "BasicBlock",
    "BinOp",
    "BINOPS",
    "Branch",
    "BranchSite",
    "Call",
    "Cmp",
    "CMP_NEGATE",
    "CMPOPS",
    "Const",
    "Function",
    "FunctionBuilder",
    "In",
    "Instr",
    "IRError",
    "Jump",
    "Load",
    "Move",
    "Operand",
    "Out",
    "ParseError",
    "Program",
    "ProgramBuilder",
    "Return",
    "Store",
    "Terminator",
    "UnOp",
    "UNOPS",
    "ValidationError",
    "format_block",
    "format_function",
    "format_instr",
    "format_program",
    "is_reg",
    "parse_function",
    "parse_program",
    "retarget",
    "validate_program",
]
