"""Basic blocks, functions and whole programs.

A :class:`BasicBlock` is a straight-line list of instructions closed by
exactly one terminator.  A :class:`Function` owns an ordered mapping of
labels to blocks plus an entry label; a :class:`Program` owns functions
and names its entry function (``main`` by default).

Blocks and functions are *mutable* — the replication transform edits
them in place — but individual instructions are immutable.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .instructions import Branch, Instr, IRError, Terminator


class BasicBlock:
    """A labelled straight-line code sequence with one terminator."""

    __slots__ = ("label", "instrs", "terminator")

    def __init__(
        self,
        label: str,
        instrs: Optional[Iterable[Instr]] = None,
        terminator: Optional[Terminator] = None,
    ) -> None:
        self.label = label
        self.instrs: List[Instr] = list(instrs or [])
        self.terminator: Optional[Terminator] = terminator

    @property
    def branch(self) -> Optional[Branch]:
        """The conditional branch closing this block, if any."""
        return self.terminator if isinstance(self.terminator, Branch) else None

    def successors(self) -> Tuple[str, ...]:
        """Labels of successor blocks (empty for returns)."""
        if self.terminator is None:
            raise IRError(f"block {self.label!r} has no terminator")
        return self.terminator.targets()

    def size(self) -> int:
        """Static size of the block in instructions (incl. terminator)."""
        return len(self.instrs) + (1 if self.terminator is not None else 0)

    def copy(self, label: Optional[str] = None) -> "BasicBlock":
        """Clone this block, optionally under a new label."""
        return BasicBlock(label or self.label, list(self.instrs), self.terminator)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.label!r}, {len(self.instrs)} instrs)"


class Function:
    """A function: parameters, an entry label, and labelled blocks."""

    def __init__(
        self,
        name: str,
        params: Optional[Iterable[str]] = None,
        entry: Optional[str] = None,
    ) -> None:
        self.name = name
        self.params: List[str] = list(params or [])
        self.entry: Optional[str] = entry
        self.blocks: Dict[str, BasicBlock] = {}

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Insert *block*; the first block added becomes the entry."""
        if block.label in self.blocks:
            raise IRError(f"duplicate block label {block.label!r} in {self.name}")
        self.blocks[block.label] = block
        if self.entry is None:
            self.entry = block.label
        return block

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(f"no block {label!r} in function {self.name}") from None

    def remove_block(self, label: str) -> None:
        """Delete a block (callers must ensure it is unreferenced)."""
        if label == self.entry:
            raise IRError(f"cannot remove entry block {label!r}")
        del self.blocks[label]

    def entry_block(self) -> BasicBlock:
        if self.entry is None:
            raise IRError(f"function {self.name} has no entry block")
        return self.blocks[self.entry]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def size(self) -> int:
        """Static size in instructions."""
        return sum(block.size() for block in self)

    def branch_blocks(self) -> List[BasicBlock]:
        """Blocks terminated by a conditional branch."""
        return [block for block in self if block.branch is not None]

    def fresh_label(self, base: str) -> str:
        """Return a label not yet used in this function, derived from *base*."""
        if base not in self.blocks:
            return base
        index = 1
        while f"{base}.{index}" in self.blocks:
            index += 1
        return f"{base}.{index}"

    def copy(self) -> "Function":
        """Deep-enough clone (blocks cloned, instructions shared)."""
        clone = Function(self.name, self.params, self.entry)
        for block in self:
            clone.blocks[block.label] = block.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function({self.name!r}, {len(self.blocks)} blocks)"


class Program:
    """A whole program: a set of functions and an entry function name."""

    def __init__(self, main: str = "main") -> None:
        self.main = main
        self.functions: Dict[str, Function] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r}") from None

    def main_function(self) -> Function:
        return self.function(self.main)

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def size(self) -> int:
        """Static program size in instructions."""
        return sum(function.size() for function in self)

    def copy(self) -> "Program":
        clone = Program(self.main)
        for function in self:
            clone.functions[function.name] = function.copy()
        return clone

    def branch_sites(self) -> List["BranchSite"]:
        """All conditional-branch sites in the program, in a stable order."""
        sites = []
        for function in self:
            for block in function:
                if block.branch is not None:
                    sites.append(BranchSite(function.name, block.label))
        return sites

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program({list(self.functions)!r})"


class BranchSite(tuple):
    """Identifies a static conditional branch: (function name, block label).

    A block has at most one terminator, so the pair is unique.  Being a
    tuple subclass keeps sites hashable, orderable and cheap.
    """

    __slots__ = ()

    def __new__(cls, function: str, block: str) -> "BranchSite":
        return super().__new__(cls, (function, block))

    @property
    def function(self) -> str:
        return self[0]

    @property
    def block(self) -> str:
        return self[1]

    def __repr__(self) -> str:
        return f"BranchSite({self[0]!r}, {self[1]!r})"

    def __str__(self) -> str:
        return f"{self[0]}:{self[1]}"
