"""Execution engine for the IR (interpreter + branch event stream)."""

from .machine import FuelExhausted, Machine, RunResult, TrapError, run_program

__all__ = ["FuelExhausted", "Machine", "RunResult", "TrapError", "run_program"]
