"""Trace-producing interpreter for the IR.

:class:`Machine` executes a :class:`~repro.ir.Program` with an explicit
call stack (no host recursion), a flat word memory, deterministic input
and output streams, and a fuel limit.  Every executed conditional
branch is reported to an optional ``on_branch(site, taken)`` callback —
this is the instrumentation channel the paper's assembly-level tracing
tool provides, and everything downstream (profiles, predictors,
replication measurements) consumes only this event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir import (
    Alloc,
    BasicBlock,
    BinOp,
    Branch,
    BranchSite,
    Call,
    Cmp,
    Const,
    Function,
    In,
    Jump,
    Load,
    Move,
    Out,
    Program,
    Return,
    Store,
    UnOp,
)


class TrapError(Exception):
    """Runtime fault: division by zero, exhausted input, bad call, ..."""


class FuelExhausted(TrapError):
    """The step budget ran out before the program returned."""


@dataclass
class RunResult:
    """Outcome of one program execution."""

    value: Optional[int]
    output: List[int]
    steps: int
    branches: int

    def __iter__(self):  # convenience unpacking: value, output
        yield self.value
        yield self.output


@dataclass
class _Frame:
    function: Function
    env: Dict[str, int]
    block: BasicBlock
    index: int
    ret_dest: Optional[str]
    #: frame-local branch history (bit 0 = most recent outcome); only
    #: maintained when the machine tracks path history
    history: int = 0


_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_SHIFT_MASK = 63


def _binop(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            raise TrapError("division by zero")
        # Truncating division, like the C programs the paper traces.
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if op == "mod":
        if b == 0:
            raise TrapError("modulo by zero")
        return a - b * (_binop("div", a, b))
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << (b & _SHIFT_MASK)
    if op == "shr":
        return a >> (b & _SHIFT_MASK)
    if op == "min":
        return a if a <= b else b
    if op == "max":
        return a if a >= b else b
    raise TrapError(f"unknown binop {op!r}")


class Machine:
    """Executes IR programs and reports branch events.

    Parameters
    ----------
    program:
        The program to run.
    input_values:
        Words returned by successive ``in`` instructions.
    max_steps:
        Fuel limit in executed instructions; exceeding it raises
        :class:`FuelExhausted` (protects against runaway loops in
        randomly generated programs).
    on_branch:
        Optional callback ``(site: BranchSite, taken: bool) -> None``
        invoked for every executed conditional branch.
    track_history_bits:
        When positive, every call frame maintains the history of its
        own branches (frame-local path history, bit 0 = most recent
        outcome); just before each ``on_branch`` call the value *seen
        by that branch* is published as :attr:`path_history`.  This is
        what CFG-path replication can actually observe, as opposed to
        raw global history which crosses call boundaries.
    """

    def __init__(
        self,
        program: Program,
        input_values: Sequence[int] = (),
        max_steps: int = 50_000_000,
        on_branch: Optional[Callable[[BranchSite, bool], None]] = None,
        track_history_bits: int = 0,
        count_edges: bool = False,
        on_block: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.program = program
        self.input_values = list(input_values)
        self.max_steps = max_steps
        self.on_branch = on_branch
        self.track_history_bits = track_history_bits
        #: frame-local history at the most recent branch event
        self.path_history = 0
        self.count_edges = count_edges
        #: (function, source label, target label) -> executions; only
        #: populated when ``count_edges`` is set
        self.edge_counts: Dict[Tuple[str, str, str], int] = {}
        #: optional callback ``(function name, block label)`` invoked at
        #: every block entry (function entries and control transfers) —
        #: the instruction-fetch stream the i-cache model consumes
        self.on_block = on_block
        self.memory: Dict[int, int] = {}
        self.output: List[int] = []
        self._brk = 0x10000
        self._input_pos = 0
        self._sites: Dict[int, BranchSite] = {}
        for function in program:
            for block in function:
                if block.branch is not None:
                    self._sites[id(block)] = BranchSite(function.name, block.label)

    # -- memory --------------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Bump-allocate *size* zeroed words; returns the base address."""
        if size < 0:
            raise TrapError(f"alloc of negative size {size}")
        base = self._brk
        self._brk += size + 1  # one guard word between regions
        return base

    def poke(self, addr: int, value: int) -> None:
        """Write a memory word directly (used to preload workload data)."""
        self.memory[addr] = value

    def peek(self, addr: int) -> int:
        """Read a memory word directly."""
        return self.memory.get(addr, 0)

    # -- execution -------------------------------------------------------------

    def run(self, *args: int) -> RunResult:
        """Run the entry function with *args* and return the result."""
        return self.call(self.program.main, list(args))

    def call(self, func_name: str, args: Sequence[int]) -> RunResult:
        """Run an arbitrary function by name."""
        function = self.program.function(func_name)
        if len(args) != len(function.params):
            raise TrapError(
                f"{func_name} expects {len(function.params)} args, got {len(args)}"
            )
        env = dict(zip(function.params, args))
        frame = _Frame(function, env, function.entry_block(), 0, None)
        stack: List[_Frame] = [frame]
        on_block = self.on_block
        if on_block is not None:
            on_block(function.name, function.entry)
        steps = 0
        branches = 0
        memory = self.memory
        on_branch = self.on_branch
        sites = self._sites
        max_steps = self.max_steps
        return_value: Optional[int] = None

        while stack:
            frame = stack[-1]
            env = frame.env
            instrs = frame.block.instrs
            index = frame.index
            size = len(instrs)
            # Straight-line section.
            advanced = False
            while index < size:
                instr = instrs[index]
                index += 1
                steps += 1
                if steps > max_steps:
                    raise FuelExhausted(f"exceeded {max_steps} steps")
                cls = instr.__class__
                if cls is BinOp:
                    a = env[instr.lhs] if type(instr.lhs) is str else instr.lhs
                    b = env[instr.rhs] if type(instr.rhs) is str else instr.rhs
                    env[instr.dest] = _binop(instr.op, a, b)
                elif cls is Cmp:
                    a = env[instr.lhs] if type(instr.lhs) is str else instr.lhs
                    b = env[instr.rhs] if type(instr.rhs) is str else instr.rhs
                    env[instr.dest] = 1 if _CMP[instr.op](a, b) else 0
                elif cls is Load:
                    a = env[instr.addr] if type(instr.addr) is str else instr.addr
                    env[instr.dest] = memory.get(a + instr.offset, 0)
                elif cls is Store:
                    a = env[instr.addr] if type(instr.addr) is str else instr.addr
                    v = env[instr.value] if type(instr.value) is str else instr.value
                    memory[a + instr.offset] = v
                elif cls is Const:
                    env[instr.dest] = instr.value
                elif cls is Move:
                    env[instr.dest] = (
                        env[instr.src] if type(instr.src) is str else instr.src
                    )
                elif cls is UnOp:
                    v = env[instr.src] if type(instr.src) is str else instr.src
                    if instr.op == "neg":
                        env[instr.dest] = -v
                    elif instr.op == "not":
                        env[instr.dest] = ~v
                    else:  # abs
                        env[instr.dest] = v if v >= 0 else -v
                elif cls is Alloc:
                    v = env[instr.size] if type(instr.size) is str else instr.size
                    env[instr.dest] = self.allocate(v)
                elif cls is In:
                    if self._input_pos >= len(self.input_values):
                        raise TrapError("input exhausted")
                    env[instr.dest] = self.input_values[self._input_pos]
                    self._input_pos += 1
                elif cls is Out:
                    v = env[instr.value] if type(instr.value) is str else instr.value
                    self.output.append(v)
                elif cls is Call:
                    callee = self.program.functions.get(instr.func)
                    if callee is None:
                        raise TrapError(f"call to unknown function {instr.func!r}")
                    if len(instr.args) != len(callee.params):
                        raise TrapError(f"bad arity calling {instr.func!r}")
                    callee_env = {}
                    for param, arg in zip(callee.params, instr.args):
                        callee_env[param] = env[arg] if type(arg) is str else arg
                    frame.index = index
                    stack.append(
                        _Frame(callee, callee_env, callee.entry_block(), 0, instr.dest)
                    )
                    if on_block is not None:
                        on_block(callee.name, callee.entry)
                    advanced = True
                    break
                else:
                    raise TrapError(f"cannot execute {instr!r}")
            if advanced:
                continue

            # Terminator.
            term = frame.block.terminator
            steps += 1
            if steps > max_steps:
                raise FuelExhausted(f"exceeded {max_steps} steps")
            cls = term.__class__
            if cls is Branch:
                a = env[term.lhs] if type(term.lhs) is str else term.lhs
                b = env[term.rhs] if type(term.rhs) is str else term.rhs
                taken = _CMP[term.op](a, b)
                branches += 1
                if on_branch is not None:
                    if self.track_history_bits:
                        self.path_history = frame.history
                        frame.history = (
                            (frame.history << 1) | (1 if taken else 0)
                        ) & ((1 << self.track_history_bits) - 1)
                    on_branch(sites[id(frame.block)], taken)
                elif self.track_history_bits:
                    self.path_history = frame.history
                    frame.history = (
                        (frame.history << 1) | (1 if taken else 0)
                    ) & ((1 << self.track_history_bits) - 1)
                target = term.taken if taken else term.not_taken
                if self.count_edges:
                    key = (frame.function.name, frame.block.label, target)
                    self.edge_counts[key] = self.edge_counts.get(key, 0) + 1
                if on_block is not None:
                    on_block(frame.function.name, target)
                frame.block = frame.function.blocks[target]
                frame.index = 0
            elif cls is Jump:
                if self.count_edges:
                    key = (frame.function.name, frame.block.label, term.target)
                    self.edge_counts[key] = self.edge_counts.get(key, 0) + 1
                if on_block is not None:
                    on_block(frame.function.name, term.target)
                frame.block = frame.function.blocks[term.target]
                frame.index = 0
            elif cls is Return:
                if term.value is None:
                    value = None
                else:
                    value = env[term.value] if type(term.value) is str else term.value
                stack.pop()
                if stack:
                    caller = stack[-1]
                    if frame.ret_dest is not None:
                        if value is None:
                            raise TrapError(
                                f"void return but caller expects a value in "
                                f"{frame.ret_dest!r}"
                            )
                        caller.env[frame.ret_dest] = value
                else:
                    return_value = value
            else:
                raise TrapError(f"block {frame.block.label!r} has no terminator")

        return RunResult(return_value, self.output, steps, branches)


def run_program(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    max_steps: int = 50_000_000,
    on_branch: Optional[Callable[[BranchSite, bool], None]] = None,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Machine`."""
    machine = Machine(program, input_values, max_steps, on_branch)
    return machine.run(*args)
