"""``python -m repro`` — a command-line front end to the whole pipeline.

Works on textual IR files (see :mod:`repro.ir.parser` for the format):

    python -m repro validate prog.ir
    python -m repro run prog.ir --args 100
    python -m repro trace prog.ir --args 100 -o prog.trace
    python -m repro analyze prog.ir --args 100
    python -m repro optimize prog.ir --args 100 --max-states 4 -o out.ir
    python -m repro machines prog.ir --args 100 --branch main:body

`optimize` is the full paper pipeline: profile a training run, choose
the best machine per branch, replicate, annotate and report the
measured misprediction improvement; the transformed program is written
back as text.

`serve` runs the prediction-as-a-service daemon (no IR file — it works
on the built-in benchmark suite over HTTP; see :mod:`repro.service`):

    python -m repro serve --port 8642 --workers 4 --threads 4

`obs-export` renders a snapshot saved by a CLI run
(``python -m repro.experiments ... --snapshot-out obs.json``) as
Prometheus text exposition — the same format ``GET /metrics`` serves:

    python -m repro obs-export obs.json -o metrics.prom
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cfg import classify_branches
from .ir import BranchSite, format_program, parse_program, validate_program
from .interp import run_program
from .profiling import (
    ProfileData,
    load_profile,
    profile_program,
    save_profile,
    save_trace,
    trace_program,
)
from .replication import (
    ReplicationPlanner,
    apply_replication,
    measure_annotated,
)
from .statemachines import machine_to_ascii, machine_to_dot


def _load(path: str):
    with open(path) as stream:
        program = parse_program(stream.read())
    validate_program(program)
    return program


def _parse_args_list(text: Optional[str]) -> List[int]:
    if not text:
        return []
    return [int(part) for part in text.split(",")]


def cmd_validate(options) -> int:
    _load(options.program)
    print(f"{options.program}: OK")
    return 0


def cmd_run(options) -> int:
    program = _load(options.program)
    result = run_program(program, _parse_args_list(options.args))
    print(f"result: {result.value}")
    print(f"output: {result.output}")
    print(f"steps: {result.steps}, branches: {result.branches}")
    return 0


def cmd_trace(options) -> int:
    program = _load(options.program)
    trace, result = trace_program(program, _parse_args_list(options.args))
    print(f"{len(trace)} branch events, result {result.value}")
    if options.output:
        save_trace(trace, options.output)
        print(f"trace written to {options.output}")
    return 0


def cmd_analyze(options) -> int:
    program = _load(options.program)
    trace, _ = trace_program(program, _parse_args_list(options.args))
    profile = ProfileData.from_trace(trace)
    infos = classify_branches(program)
    print(f"{options.program}: {program.size()} instructions, "
          f"{len(program.branch_sites())} branches, {len(trace)} events\n")
    print(f"{'branch':30s} {'class':12s} {'execs':>8s} {'taken%':>8s} "
          f"{'profile-miss%':>14s}")
    for site, counts in sorted(profile.totals.items()):
        info = infos.get(site)
        kind = info.kind.value if info else "?"
        executions = counts[0] + counts[1]
        taken_pct = 100 * counts[1] / executions
        miss = 100 * min(counts) / executions
        print(f"{str(site):30s} {kind:12s} {executions:8d} {taken_pct:7.1f}% "
              f"{miss:13.2f}%")
    return 0


def cmd_profile(options) -> int:
    """One-pass streaming profile of a run, saved for later optimize."""
    program = _load(options.program)
    profile, result = profile_program(program, _parse_args_list(options.args))
    print(f"{profile.events} branch events over {len(profile.totals)} "
          f"branches (result {result.value})")
    if options.output:
        save_profile(profile, options.output)
        print(f"profile written to {options.output}")
    return 0


def cmd_optimize(options) -> int:
    program = _load(options.program)
    args = _parse_args_list(options.args)
    if options.profile:
        profile = load_profile(options.profile)
        print(f"using saved profile {options.profile} "
              f"({profile.events} events)")
    else:
        trace, _ = trace_program(program, args)
        profile = ProfileData.from_trace(trace)
    planner = ReplicationPlanner(program, profile, options.max_states)
    selections = []
    for plan in planner.improvable_plans():
        option = plan.best_option(options.max_states)
        if option is None:
            continue
        selections.append((plan.site, option.scored.machine))
        print(f"improving {plan.site}: {option.family} machine, "
              f"{option.n_states} states")
    if not selections:
        print("nothing to improve; emitting profile annotations only")
    report = apply_replication(program, selections, profile)
    baseline = measure_annotated(
        apply_replication(program, [], profile).program, args
    )
    improved = measure_annotated(report.program, args)
    print(f"code size: {report.size_before} -> {report.size_after} "
          f"({report.size_factor:.2f}x)")
    print(f"misprediction: {baseline.misprediction_rate:.2%} -> "
          f"{improved.misprediction_rate:.2%}")
    if options.output:
        with open(options.output, "w") as stream:
            stream.write(format_program(report.program))
        print(f"transformed program written to {options.output}")
    return 0


def cmd_machines(options) -> int:
    program = _load(options.program)
    args = _parse_args_list(options.args)
    trace, _ = trace_program(program, args)
    profile = ProfileData.from_trace(trace)
    planner = ReplicationPlanner(program, profile, options.max_states)
    function_name, _, block = options.branch.partition(":")
    site = BranchSite(function_name, block)
    plan = planner.plans.get(site)
    if plan is None:
        print(f"no such executed branch: {options.branch}", file=sys.stderr)
        return 1
    print(f"{site}: {plan.info.kind.value}, {plan.executions} executions, "
          f"profile predicts {plan.profile_correct} correctly")
    for option in plan.options:
        machine = option.scored.machine
        print(f"\n-- {option.n_states} states ({option.family}), "
              f"{option.correct} correct, +{option.extra_size} instructions --")
        if hasattr(machine, "states"):
            print(machine_to_ascii(machine))
            if options.dot:
                print(machine_to_dot(machine))
        else:
            print(machine.describe())
    return 0


def cmd_serve(options) -> int:
    from .service import ServiceConfig, serve

    return serve(
        ServiceConfig(
            host=options.host,
            port=options.port,
            threads=options.threads,
            workers=options.workers,
            queue_limit=options.queue_limit,
            lru_size=options.lru_size,
            drain_seconds=options.drain_seconds,
            verbose=options.verbose,
            log_json=options.log_json,
            trace_out=options.trace_out,
            ready_file=options.ready_file,
            trace_off=options.trace_off,
            trace_sample=options.trace_sample,
            trace_slow_ms=options.trace_slow_ms,
            trace_capacity=options.trace_capacity,
        )
    )


def cmd_qa(options) -> int:
    """Journey QA: real journeys against a live daemon, cross-system
    invariants after every step, optional chaos (see ``repro.qa``)."""
    from .qa import CHAOS_SCENARIOS, JOURNEYS, render_text, run_suite, write_json
    from .qa.invariants import default_invariants

    if options.qa_command == "list":
        print("journeys:")
        for journey in JOURNEYS.values():
            extra = f" (needs >= {journey.workers_min} workers)" \
                if journey.workers_min > 1 else ""
            print(f"  {journey.name:20s} {journey.description}{extra}")
        print("chaos scenarios:")
        for scenario in CHAOS_SCENARIOS.values():
            print(f"  {scenario.name:20s} {scenario.description} "
                  f"[rides on {scenario.base_journey}]")
        print("invariants:")
        for invariant in default_invariants():
            requires = ", ".join(sorted(invariant.requires)) or "-"
            print(f"  {invariant.name:32s} [{invariant.severity}] "
                  f"requires: {requires}")
        return 0

    chaos = list(options.chaos or [])
    if chaos == ["all"]:
        chaos = sorted(CHAOS_SCENARIOS)
    elif chaos == ["none"]:
        chaos = []
    report = run_suite(
        journey_names=options.journeys or None,
        chaos_names=chaos,
        workers=options.workers,
        inject_failure=options.inject_failure,
        keep_root=options.keep,
        progress=lambda message: print(f"qa: {message}", file=sys.stderr, flush=True),
    )
    write_json(report, options.report)
    print(render_text(report))
    if options.report:
        print(f"qa: report written to {options.report}", file=sys.stderr)
    return 0 if report["ok"] else 1


def cmd_obs_export(options) -> int:
    """Render a saved observer snapshot as Prometheus text.

    CLI runs have no scrape endpoint; ``repro.experiments --snapshot-out``
    writes the snapshot JSON this command turns into the same exposition
    ``GET /metrics`` would have served.
    """
    import json as json_module

    from .obs import render_prometheus, snapshot_from_dict, validate_exposition

    with open(options.snapshot) as stream:
        snapshot = snapshot_from_dict(json_module.load(stream))
    text = render_prometheus(snapshot)
    validate_exposition(text)
    if options.output:
        with open(options.output, "w") as stream:
            stream.write(text)
        print(f"metrics written to {options.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Semi-static branch prediction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("program", help="textual IR file")
        p.add_argument("--args", default="", help="comma-separated main() args")

    p = sub.add_parser("validate", help="parse and validate an IR file")
    p.add_argument("program")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("run", help="execute a program")
    common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("trace", help="collect a branch trace")
    common(p)
    p.add_argument("-o", "--output", help="write compressed trace here")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("analyze", help="profile and classify branches")
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("profile", help="one-pass streaming profile")
    common(p)
    p.add_argument("-o", "--output", help="write profile file here")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("optimize", help="replicate code for prediction")
    common(p)
    p.add_argument("--max-states", type=int, default=4)
    p.add_argument("--profile", help="train from a saved profile file")
    p.add_argument("-o", "--output", help="write transformed IR here")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("machines", help="show candidate machines for a branch")
    common(p)
    p.add_argument("--branch", required=True, help="function:block")
    p.add_argument("--max-states", type=int, default=6)
    p.add_argument("--dot", action="store_true", help="also emit Graphviz DOT")
    p.set_defaults(func=cmd_machines)

    p = sub.add_parser("serve", help="run the prediction-as-a-service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes; > 1 runs the supervised "
                        "pre-fork fleet behind one listening socket")
    p.add_argument("--threads", type=int, default=4,
                   help="threads executing heavy endpoint work, per process")
    p.add_argument("--queue-limit", type=int, default=16,
                   help="extra requests allowed to queue before 429")
    p.add_argument("--ready-file", default=None, metavar="PATH",
                   help="write a JSON readiness document (port, pids, "
                        "control dir) here once accepting")
    p.add_argument("--lru-size", type=int, default=128,
                   help="capacity of each in-process result cache")
    p.add_argument("--drain-seconds", type=float, default=10.0,
                   help="graceful-shutdown drain deadline")
    p.add_argument("--verbose", action="store_true",
                   help="log one line per request to stderr")
    p.add_argument("--log-json", action="store_true",
                   help="one structured JSON access-log line per request "
                        "on stderr (request id, route, status, duration)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record spans for the daemon's lifetime and write "
                        "a Chrome trace_event JSON file on shutdown")
    p.add_argument("--trace-off", action="store_true",
                   help="disable the always-on request tracing layer "
                        "(flight recorder, /trace, exemplars); "
                        "REPRO_TRACE_OFF=1 does the same")
    p.add_argument("--trace-sample", type=float, default=0.01,
                   metavar="RATE",
                   help="flight-recorder keep rate for unremarkable "
                        "requests (errors and the slow tail are always "
                        "kept); 1.0 keeps everything")
    p.add_argument("--trace-slow-ms", type=float, default=250.0,
                   metavar="MS",
                   help="slow-tail threshold: requests at least this "
                        "slow always enter the flight recorder")
    p.add_argument("--trace-capacity", type=int, default=256,
                   metavar="N",
                   help="finished traces each worker's flight-recorder "
                        "ring retains")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "qa",
        help="invariant-driven journey QA + chaos against a live daemon",
    )
    qa_sub = p.add_subparsers(dest="qa_command", required=True)
    q = qa_sub.add_parser("run", help="run the journey suite")
    q.add_argument("--workers", type=int, default=2,
                   help="fleet size for journeys (journeys declaring a "
                        "higher minimum raise it for themselves)")
    q.add_argument("--journeys", nargs="*", default=None, metavar="NAME",
                   help="journeys to run (default: all)")
    q.add_argument("--chaos", nargs="*", default=None, metavar="NAME",
                   help="chaos scenarios to run after the healthy pass "
                        "('all' = every scenario; default: none)")
    q.add_argument("--report", default=None, metavar="PATH",
                   help="also write the full JSON report here")
    q.add_argument("--inject-failure", action="store_true",
                   help="add a deliberately wrong invariant to prove a "
                        "violation fails the run with a named report")
    q.add_argument("--keep", action="store_true",
                   help="keep each world's temp dir (cache + daemon log)")
    q.set_defaults(func=cmd_qa)
    q = qa_sub.add_parser("list", help="list journeys, chaos scenarios, invariants")
    q.set_defaults(func=cmd_qa)

    p = sub.add_parser(
        "obs-export",
        help="render a saved observer snapshot as Prometheus text",
    )
    p.add_argument("snapshot",
                   help="snapshot JSON (repro.experiments --snapshot-out)")
    p.add_argument("-o", "--output",
                   help="write exposition here instead of stdout")
    p.set_defaults(func=cmd_obs_export)
    return parser


def cmd_profile_wrap(args: List[str]) -> int:
    """``python -m repro profile [-o PATH] [--interval S] -- <experiment>``

    Runs the experiments CLI under the sampling wall-clock profiler
    (:mod:`repro.obs.profiler`) and emits collapsed-stack text — the
    flamegraph input format — to ``-o`` or stderr.  The legacy
    ``profile <program.ir>`` spelling (no ``--``) is untouched.
    """
    from .experiments import cli as experiments_cli
    from .obs.profiler import StackSampler

    split = args.index("--")
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="sample the wall-clock stacks of an experiment run",
    )
    parser.add_argument("-o", "--output", default=None,
                        help="write collapsed stacks here (default: stderr)")
    parser.add_argument("--interval", type=float, default=0.01,
                        help="sampling interval in seconds (default 0.01)")
    options = parser.parse_args(args[1:split])
    workload = args[split + 1:]
    if not workload:
        print("profile: nothing to run after '--'", file=sys.stderr)
        return 2
    sampler = StackSampler(max(0.001, options.interval)).start()
    try:
        code = experiments_cli.main(workload)
    finally:
        text = sampler.stop()
        if options.output:
            with open(options.output, "w") as stream:
                stream.write(text)
            print(f"profile written to {options.output}", file=sys.stderr)
        else:
            sys.stderr.write(text)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "profile" and "--" in args:
        # Sampling-profiler mode: everything after ``--`` is an
        # experiments CLI invocation run under the stack sampler.
        return cmd_profile_wrap(args)
    if args and not args[0].startswith("-"):
        # Experiment names double as top-level commands, so
        # ``python -m repro transfer --format json`` works without the
        # ``.experiments`` spelling.  Registered experiment targets
        # never collide with the subcommands above (both are tested).
        from .experiments import all_experiments
        from .experiments import cli as experiments_cli

        if args[0] in all_experiments() or args[0] in ("all", "cache"):
            return experiments_cli.main(args)
    options = build_parser().parse_args(args)
    return options.func(options)


if __name__ == "__main__":
    sys.exit(main())
