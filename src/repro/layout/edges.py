"""Edge-frequency profiles for code positioning.

Block layout needs to know how often each CFG edge executes.  The
preferred source is an instrumented run (:func:`profile_edges`), which
counts every control transfer exactly.  When only a branch trace is
available, :func:`edge_profile_from_trace` recovers the conditional
edges exactly and leaves unconditional edges to a flow estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..cfg import CFG
from ..interp import Machine
from ..ir import Jump, Program
from ..profiling import Trace

Edge = Tuple[str, str]


@dataclass
class EdgeProfile:
    """Execution frequencies of one function's CFG edges."""

    function: str
    counts: Dict[Edge, int] = field(default_factory=dict)

    def count(self, source: str, target: str) -> int:
        return self.counts.get((source, target), 0)

    def add(self, source: str, target: str, count: int) -> None:
        edge = (source, target)
        self.counts[edge] = self.counts.get(edge, 0) + count

    def block_frequency(self, label: str, cfg: CFG) -> int:
        """Executions of *label*, from incoming edge counts (entry
        blocks report their outgoing flow instead)."""
        incoming = sum(
            self.counts.get((pred, label), 0) for pred in cfg.preds.get(label, ())
        )
        if incoming == 0 and label == cfg.entry:
            return sum(
                self.counts.get((label, succ), 0)
                for succ in cfg.succs.get(label, ())
            )
        return incoming

    def hot_edges(self) -> List[Tuple[Edge, int]]:
        """Edges sorted by decreasing frequency (stable on labels)."""
        return sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))

    def total(self) -> int:
        return sum(self.counts.values())


def profile_edges(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    max_steps: int = 100_000_000,
) -> Dict[str, EdgeProfile]:
    """Exact per-function edge frequencies from an instrumented run."""
    machine = Machine(program, input_values, max_steps, count_edges=True)
    machine.run(*args)
    profiles = {function.name: EdgeProfile(function.name) for function in program}
    for (function_name, source, target), count in machine.edge_counts.items():
        profiles[function_name].add(source, target, count)
    return profiles


def edge_profile_from_trace(
    program: Program, trace: Trace
) -> Dict[str, EdgeProfile]:
    """Approximate edge frequencies from a branch trace alone.

    Conditional edges are exact.  A jump-terminated block's outgoing
    edge is estimated by the block's incoming flow, iterated to a fixed
    point; function entries and blocks reached only through calls keep
    zero counts.  Good enough to rank hot edges for layout.
    """
    profiles = {function.name: EdgeProfile(function.name) for function in program}
    for site, (not_taken, taken) in trace.taken_counts().items():
        function = program.functions.get(site.function)
        if function is None or site.block not in function.blocks:
            continue
        branch = function.block(site.block).branch
        if branch is None:
            continue
        profile = profiles[site.function]
        profile.add(site.block, branch.taken, taken)
        profile.add(site.block, branch.not_taken, not_taken)
    for function in program:
        profile = profiles[function.name]
        cfg = CFG.from_function(function)
        for _ in range(len(function.blocks)):
            changed = False
            for block in function:
                if not isinstance(block.terminator, Jump):
                    continue
                flow = profile.block_frequency(block.label, cfg)
                edge = (block.label, block.terminator.target)
                if flow > profile.counts.get(edge, 0):
                    profile.counts[edge] = flow
                    changed = True
            if not changed:
                break
    return profiles
