"""Profile-guided code positioning and branch alignment."""

from .edges import Edge, EdgeProfile, edge_profile_from_trace, profile_edges
from .rotation import rotatable_loops, rotate_loop, rotate_program
from .positioning import (
    align_branches,
    apply_layout,
    build_chains,
    layout_program,
    order_blocks,
    taken_transfer_rate,
    taken_transfer_stats,
    TransferStats,
)

__all__ = [
    "Edge",
    "EdgeProfile",
    "align_branches",
    "apply_layout",
    "build_chains",
    "edge_profile_from_trace",
    "layout_program",
    "order_blocks",
    "profile_edges",
    "rotatable_loops",
    "rotate_loop",
    "rotate_program",
    "taken_transfer_rate",
    "taken_transfer_stats",
    "TransferStats",
]
