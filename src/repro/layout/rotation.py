"""Loop rotation: move the loop test to the bottom.

Mueller and Whalley's "avoiding unconditional jumps by code
replication" — the work the paper's correlated-branch replication is
modelled on — removes the jump that closes every iteration of a
top-tested loop.  Our builder emits exactly that shape:

    head: br lt i, n ? body : exit     # test at the top
    body: ...
          jump head                    # one jump per iteration

Rotation copies the (instruction-free) test block onto every back
edge:

    head: br lt i, n ? body : exit     # now only a guard, run once
    body: ...
          br lt i, n ? body : exit     # bottom test, backward taken

which removes one executed jump per iteration *and* turns the loop
branch into a backward-taken branch — the shape BTFNT static
prediction expects.

The transform is only legal when the header consists of nothing but
the conditional branch (so evaluating it at the bottom reads the same
register values the header would have read).
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..cfg import CFG, LoopForest
from ..ir import Function, Jump, Program


def rotatable_loops(function: Function) -> List[str]:
    """Headers of loops the rotation can legally transform."""
    cfg = CFG.from_function(function)
    forest = LoopForest(cfg)
    result = []
    for loop in forest:
        header = function.block(loop.header)
        branch = header.branch
        if branch is None or header.instrs:
            continue
        # One arm must leave the loop (the rotated test still exits).
        taken_in = branch.taken in loop.body
        fall_in = branch.not_taken in loop.body
        if taken_in == fall_in:
            continue
        # Every back edge must be an unconditional jump to the header
        # (a conditional back edge already is a bottom test).
        if all(
            isinstance(function.block(tail).terminator, Jump)
            for tail, _ in loop.back_edges
        ):
            result.append(loop.header)
    return result


def rotate_loop(function: Function, header_label: str) -> int:
    """Rotate the loop headed by *header_label*; returns the number of
    back edges converted (0 when the loop is not rotatable)."""
    if header_label not in rotatable_loops(function):
        return 0
    forest = LoopForest(CFG.from_function(function))
    loop = forest.loop_with_header(header_label)
    header = function.block(header_label)
    branch = header.branch
    converted = 0
    for tail, _ in loop.back_edges:
        block = function.block(tail)
        block.terminator = dataclasses.replace(branch)
        converted += 1
    return converted


def rotate_program(program: Program) -> int:
    """Rotate every rotatable loop; returns total back edges converted."""
    total = 0
    for function in program:
        # Recompute after each rotation: nested loops share structure.
        progressed = True
        while progressed:
            progressed = False
            for header in rotatable_loops(function):
                if rotate_loop(function, header):
                    progressed = True
                    total += 1
                    break
    return total
