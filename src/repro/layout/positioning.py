"""Profile-guided code positioning (Pettis/Hansen style).

The paper's replication idea "was inspired by the work of Pettis and
Hanson, who use profiling for code positioning"; and its prediction
output feeds *branch alignment* — arranging blocks so that the likely
(or predicted) successor is the fall-through.  This module implements
both:

* :func:`build_chains` / :func:`order_blocks` — bottom-up chain layout
  over an edge profile: the hottest edges are glued into straight-line
  chains, chains are emitted hottest-first, the entry chain first;
* :func:`align_branches` — flip branch polarity so that the predicted
  direction is the fall-through edge whenever layout permits;
* :func:`taken_transfer_rate` — the evaluation metric: the fraction of
  executed control transfers that do NOT fall through to the next
  block in layout order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cfg import CFG
from ..interp import Machine
from ..ir import Function, IRError, Program
from .edges import EdgeProfile


def build_chains(function: Function, profile: EdgeProfile) -> List[List[str]]:
    """Greedy bottom-up chaining: process edges hottest first, merging
    the source's chain tail with the target's chain head."""
    chain_of: Dict[str, List[str]] = {}
    for label in function.blocks:
        chain_of[label] = [label]
    for (source, target), count in profile.hot_edges():
        if count <= 0 or source not in chain_of or target not in chain_of:
            continue
        source_chain = chain_of[source]
        target_chain = chain_of[target]
        if source_chain is target_chain:
            continue
        if source_chain[-1] != source or target_chain[0] != target:
            continue  # only tail-to-head merges keep chains straight
        source_chain.extend(target_chain)
        for label in target_chain:
            chain_of[label] = source_chain
    seen = set()
    chains: List[List[str]] = []
    for label in function.blocks:
        chain = chain_of[label]
        if id(chain) in seen:
            continue
        seen.add(id(chain))
        chains.append(chain)
    return chains


def order_blocks(function: Function, profile: EdgeProfile) -> List[str]:
    """A full block order: the entry's chain first (entry at its head
    position), remaining chains by decreasing hotness."""
    cfg = CFG.from_function(function)
    chains = build_chains(function, profile)

    def chain_heat(chain: List[str]) -> int:
        return sum(profile.block_frequency(label, cfg) for label in chain)

    entry_chain: Optional[List[str]] = None
    rest: List[List[str]] = []
    for chain in chains:
        if function.entry in chain:
            entry_chain = chain
        else:
            rest.append(chain)
    assert entry_chain is not None
    rest.sort(key=chain_heat, reverse=True)
    order: List[str] = []
    # The entry must be the first block overall; rotate its chain if an
    # earlier chain member precedes it.
    entry_index = entry_chain.index(function.entry)
    order.extend(entry_chain[entry_index:])
    leftover = entry_chain[:entry_index]
    for chain in rest + ([leftover] if leftover else []):
        order.extend(chain)
    return order


def apply_layout(function: Function, order: Sequence[str]) -> None:
    """Reorder the function's blocks in place."""
    if set(order) != set(function.blocks):
        raise IRError("layout order must be a permutation of the blocks")
    if order[0] != function.entry:
        raise IRError("layout must keep the entry block first")
    function.blocks = {label: function.blocks[label] for label in order}


def align_branches(function: Function) -> int:
    """Flip branches so the *predicted* direction is not-taken.

    After alignment, a branch annotated ``predict`` falls through on
    its predicted path, which the chain layout can then place next.
    Unannotated branches are left alone.  Returns the number of
    branches flipped.
    """
    flipped = 0
    for block in function:
        branch = block.branch
        if branch is None or branch.predict is not True:
            continue
        block.terminator = branch.negated()
        flipped += 1
    return flipped


def layout_program(
    program: Program, profiles: Dict[str, EdgeProfile], align: bool = True
) -> int:
    """Align + chain-order every function; returns flipped branches."""
    flipped = 0
    for function in program:
        if align:
            flipped += align_branches(function)
        profile = profiles.get(function.name, EdgeProfile(function.name))
        apply_layout(function, order_blocks(function, profile))
    return flipped


@dataclass
class TransferStats:
    """Dynamic control-transfer statistics of one run."""

    taken: int
    transfers: int
    instructions: int

    @property
    def taken_rate(self) -> float:
        """Taken transfers as a fraction of all transfers."""
        return self.taken / self.transfers if self.transfers else 0.0

    @property
    def taken_per_instruction(self) -> float:
        """Taken transfers per executed instruction — comparable across
        program variants that execute different instruction counts
        (e.g. before/after loop rotation)."""
        return self.taken / self.instructions if self.instructions else 0.0


def taken_transfer_stats(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    max_steps: int = 100_000_000,
) -> TransferStats:
    """Count executed intra-function control transfers that do not fall
    through under the current block layout."""
    machine = Machine(program, input_values, max_steps, count_edges=True)
    result = machine.run(*args)
    next_block: Dict[Tuple[str, str], Optional[str]] = {}
    for function in program:
        labels = list(function.blocks)
        for position, label in enumerate(labels):
            following = labels[position + 1] if position + 1 < len(labels) else None
            next_block[(function.name, label)] = following
    total = 0
    taken = 0
    for (function_name, source, target), count in machine.edge_counts.items():
        total += count
        if next_block.get((function_name, source)) != target:
            taken += count
    return TransferStats(taken, total, result.steps)


def taken_transfer_rate(
    program: Program,
    args: Sequence[int] = (),
    input_values: Sequence[int] = (),
    max_steps: int = 100_000_000,
) -> Tuple[float, int]:
    """Back-compat wrapper: ``(taken fraction, total transfers)``."""
    stats = taken_transfer_stats(program, args, input_values, max_steps)
    return stats.taken_rate, stats.transfers
