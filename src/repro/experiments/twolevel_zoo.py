"""The nine Yeh/Patt two-level variants ([YN93], Section 2.3).

"Later Yeh and Patt studied all nine combinations of one global history
register, a history register for a set of branches and a history
register for each branch with one global pattern table, a pattern table
for a set of branches or a pattern table for each branch."

This table evaluates all nine on our traces — one trace scan per
benchmark for the whole zoo — plus the per-variant hardware cost
estimate, the backdrop against which the paper's semi-static strategies
compete.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import all_yeh_patt_variants
from ..workloads import BENCHMARK_NAMES, get_trace
from .registry import evaluate_rows, register
from .report import Table, pct

VARIANT_ORDER = ("GAg", "GAs", "GAp", "SAg", "SAs", "SAp", "PAg", "PAs", "PAp")


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    history_bits: int = 6,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        f"Two-level adaptive variants [YN93] at {history_bits} history bits "
        "(misprediction %)",
        list(names) + ["cost bits"],
    )
    variants = all_yeh_patt_variants(history_bits)
    rows = evaluate_rows(
        names,
        lambda name: [(key, variants[key]) for key in VARIANT_ORDER],
        lambda name: get_trace(name, scale),
    )
    for key in VARIANT_ORDER:
        cost = variants[key].config.cost_bits()
        table.add_row(
            key,
            rows[key] + [cost],
            [pct(v) for v in rows[key]] + [str(cost)],
        )
    return table


register(
    "twolevel-zoo",
    run,
    "all nine Yeh/Patt two-level variants plus hardware cost",
)
