"""The experiment registry and the shared evaluation driver.

Every CLI target is an :class:`Experiment`: a name, a description and a
runner callable.  Modules register themselves at import time (importing
:mod:`repro.experiments` populates the registry), so the CLI, the docs
and the tests all enumerate one source of truth instead of
hand-maintained dicts.

Experiments execute against a :class:`RunContext` — one frozen value
object carrying every cross-cutting knob (scale, benchmark subset,
worker processes, observer handle, output format, trace export path,
per-target options) — so adding a knob no longer requires threading a
new positional parameter through every runner signature.  The previous
positional contract, ``Experiment.run(scale, names, **kwargs)``, is
kept as a thin shim that emits :class:`DeprecationWarning` and builds a
context.

The predictor-comparison tables (table1, the two-level zoo, statics,
instper, crossdata, tracelen) also share one driver,
:func:`evaluate_rows`: "for each benchmark, evaluate this predictor set
in one pass" via :func:`repro.predictors.evaluate_many`, instead of six
hand-rolled benchmark × predictor loops that each re-scan the trace.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import Observer, default_observer
from ..predictors import EvaluationResult, Predictor, evaluate_many
from ..profiling import Trace
from .report import Table

#: ``predictors_for(benchmark) -> [(row label, predictor), ...]``
PredictorsFor = Callable[[str], Sequence[Tuple[str, Predictor]]]
#: ``trace_for(benchmark) -> Trace``
TraceFor = Callable[[str], Trace]
#: ``metric(result, benchmark) -> cell value``
Metric = Callable[[EvaluationResult, str], Any]


@dataclass(frozen=True)
class RunContext:
    """Everything one experiment execution needs, in one value object.

    The context replaces the positional ``run(scale, names, **kwargs)``
    contract: cross-cutting knobs (worker processes, the observer that
    collects spans/counters, the output format, the trace export path)
    travel together, and per-target options ride in ``options`` instead
    of forcing every runner signature to grow.
    """

    scale: int = 1
    #: benchmark subset, or None for the full suite
    names: Optional[Tuple[str, ...]] = None
    #: worker processes for artifact generation
    jobs: int = 1
    #: output format the caller will render ("text", "json" or "csv")
    output: str = "text"
    #: observer collecting this run's spans and counters
    obs: Observer = field(default_factory=default_observer)
    #: Chrome trace_event export path (None = no export)
    trace_out: Optional[str] = None
    #: per-target options (e.g. ``max_states``, ``csv_dir``)
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.names is not None and not isinstance(self.names, tuple):
            object.__setattr__(self, "names", tuple(self.names))

    @property
    def names_list(self) -> Optional[List[str]]:
        """The benchmark subset in the shape legacy runners expect."""
        return list(self.names) if self.names is not None else None

    def with_options(self, **options: Any) -> "RunContext":
        """A copy with *options* merged over the existing ones."""
        merged = dict(self.options)
        merged.update(options)
        return replace(self, options=merged)


@dataclass(frozen=True)
class Experiment:
    """One registered CLI target.

    ``runner(scale, names, **kwargs)`` returns the experiment's
    :class:`~repro.experiments.report.Table` (or, for multi-table
    targets such as ``figures``, a dict of tables — see ``multi``).
    Runners registered with ``takes_context=True`` are called as
    ``runner(ctx)`` with the :class:`RunContext` instead.
    """

    name: str
    runner: Callable[..., Any]
    description: str = ""
    #: True when the runner returns ``{key: Table}`` instead of one Table.
    multi: bool = False
    #: True when the runner accepts a RunContext directly.
    takes_context: bool = False

    def execute(self, ctx: RunContext):
        """Run this experiment against *ctx* and return its raw result."""
        if self.takes_context:
            return self.runner(ctx)
        return self.runner(ctx.scale, ctx.names_list, **dict(ctx.options))

    def run(self, scale: int = 1, names: Optional[List[str]] = None, **kwargs):
        """Deprecated positional entry point; use :meth:`execute`."""
        warnings.warn(
            "Experiment.run(scale, names, ...) is deprecated; build a "
            "RunContext and call Experiment.execute(ctx)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(
            RunContext(
                scale=scale,
                names=tuple(names) if names is not None else None,
                options=kwargs,
            )
        )

    def tables(
        self,
        ctx: Union[RunContext, int] = 1,
        names: Optional[List[str]] = None,
        **kwargs,
    ) -> List[Table]:
        """Run and normalise the result to a list of tables.

        Accepts a :class:`RunContext` (the redesigned API) or the
        legacy positional ``(scale, names, **kwargs)`` shape.
        """
        if not isinstance(ctx, RunContext):
            ctx = RunContext(
                scale=ctx,
                names=tuple(names) if names is not None else None,
                options=kwargs,
            )
        elif names is not None or kwargs:
            raise TypeError(
                "pass benchmark names and options inside the RunContext"
            )
        result = self.execute(ctx)
        if self.multi:
            return list(result.values())
        return [result]


_REGISTRY: Dict[str, Experiment] = {}


def register(
    name: str,
    runner: Callable[..., Any],
    description: str = "",
    multi: bool = False,
    takes_context: bool = False,
) -> Experiment:
    """Register *runner* as the experiment *name* (idempotent by name)."""
    experiment = Experiment(name, runner, description, multi, takes_context)
    _REGISTRY[name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def experiment_names() -> List[str]:
    """All registered target names, sorted."""
    return sorted(_REGISTRY)


def all_experiments() -> Dict[str, Experiment]:
    return dict(_REGISTRY)


# -- the shared single-pass driver ---------------------------------------------


def _misprediction_rate(result: EvaluationResult, name: str) -> float:
    return result.misprediction_rate


def evaluate_rows(
    names: Sequence[str],
    predictors_for: PredictorsFor,
    trace_for: TraceFor,
    metric: Metric = _misprediction_rate,
) -> Dict[str, List[Any]]:
    """Evaluate a labelled predictor set per benchmark, in one pass each.

    For every benchmark in *names*, builds the predictor set, scans that
    benchmark's trace **once** for all of them
    (:func:`~repro.predictors.evaluate_many`), and collects
    ``metric(result, benchmark)`` per row label.  Returns
    ``{row label: [value per benchmark, in *names* order]}`` with row
    labels in predictor-set order.
    """
    rows: Dict[str, List[Any]] = {}
    for name in names:
        labelled = list(predictors_for(name))
        results = evaluate_many([p for _, p in labelled], trace_for(name))
        for (label, _), result in zip(labelled, results):
            rows.setdefault(label, []).append(metric(result, name))
    return rows
