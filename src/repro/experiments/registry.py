"""The experiment registry and the shared evaluation driver.

Every CLI target is an :class:`Experiment`: a name, a description and a
``run(scale, names) -> Table`` callable.  Modules register themselves
at import time (importing :mod:`repro.experiments` populates the
registry), so the CLI, the docs and the tests all enumerate one source
of truth instead of hand-maintained dicts.

The predictor-comparison tables (table1, the two-level zoo, statics,
instper, crossdata, tracelen) also share one driver,
:func:`evaluate_rows`: "for each benchmark, evaluate this predictor set
in one pass" via :func:`repro.predictors.evaluate_many`, instead of six
hand-rolled benchmark × predictor loops that each re-scan the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..predictors import EvaluationResult, Predictor, evaluate_many
from ..profiling import Trace
from .report import Table

#: ``predictors_for(benchmark) -> [(row label, predictor), ...]``
PredictorsFor = Callable[[str], Sequence[Tuple[str, Predictor]]]
#: ``trace_for(benchmark) -> Trace``
TraceFor = Callable[[str], Trace]
#: ``metric(result, benchmark) -> cell value``
Metric = Callable[[EvaluationResult, str], Any]


@dataclass(frozen=True)
class Experiment:
    """One registered CLI target.

    ``runner(scale, names, **kwargs)`` returns the experiment's
    :class:`~repro.experiments.report.Table` (or, for multi-table
    targets such as ``figures``, a dict of tables — see ``multi``).
    """

    name: str
    runner: Callable[..., Any]
    description: str = ""
    #: True when the runner returns ``{key: Table}`` instead of one Table.
    multi: bool = False

    def run(self, scale: int = 1, names: Optional[List[str]] = None, **kwargs):
        return self.runner(scale, names, **kwargs)

    def tables(
        self, scale: int = 1, names: Optional[List[str]] = None, **kwargs
    ) -> List[Table]:
        """Run and normalise the result to a list of tables."""
        result = self.run(scale, names, **kwargs)
        if self.multi:
            return list(result.values())
        return [result]


_REGISTRY: Dict[str, Experiment] = {}


def register(
    name: str,
    runner: Callable[..., Any],
    description: str = "",
    multi: bool = False,
) -> Experiment:
    """Register *runner* as the experiment *name* (idempotent by name)."""
    experiment = Experiment(name, runner, description, multi)
    _REGISTRY[name] = experiment
    return experiment


def get_experiment(name: str) -> Experiment:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def experiment_names() -> List[str]:
    """All registered target names, sorted."""
    return sorted(_REGISTRY)


def all_experiments() -> Dict[str, Experiment]:
    return dict(_REGISTRY)


# -- the shared single-pass driver ---------------------------------------------


def _misprediction_rate(result: EvaluationResult, name: str) -> float:
    return result.misprediction_rate


def evaluate_rows(
    names: Sequence[str],
    predictors_for: PredictorsFor,
    trace_for: TraceFor,
    metric: Metric = _misprediction_rate,
) -> Dict[str, List[Any]]:
    """Evaluate a labelled predictor set per benchmark, in one pass each.

    For every benchmark in *names*, builds the predictor set, scans that
    benchmark's trace **once** for all of them
    (:func:`~repro.predictors.evaluate_many`), and collects
    ``metric(result, benchmark)`` per row label.  Returns
    ``{row label: [value per benchmark, in *names* order]}`` with row
    labels in predictor-set order.
    """
    rows: Dict[str, List[Any]] = {}
    for name in names:
        labelled = list(predictors_for(name))
        results = evaluate_many([p for _, p in labelled], trace_for(name))
        for (label, _), result in zip(labelled, results):
            rows.setdefault(label, []).append(metric(result, name))
    return rows
