"""Table 1: misprediction rates of the baseline strategies.

For every benchmark, evaluates the paper's eight strategies —
dynamic: last-direction, 2-bit counter, two-level 4K-bit;
semi-static: profile, 1-bit correlation, 1-bit loop, 9-bit loop,
loop–correlation — plus the three bookkeeping rows: static branches,
executed branches and branches improved by loop–correlation.

All eight strategies are scored in a single scan of each benchmark's
trace (the profile row in closed form) via the shared
:func:`~repro.experiments.registry.evaluate_rows` driver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..predictors import (
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    two_level_4k,
)
from ..workloads import BENCHMARK_NAMES, get_artifacts, get_profile, get_program
from .registry import evaluate_rows, register
from .report import Table, pct

ROWS = (
    "last direction",
    "2 bit counter",
    "two level 4K bit",
    "profile",
    "1 bit correlation",
    "1 bit loop",
    "9 bit loop",
    "loop-correlation",
)


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    """Build Table 1 at the given trace scale."""
    names = names or BENCHMARK_NAMES
    table = Table(
        "Table 1: misprediction rates of different branch prediction "
        "strategies in percent",
        list(names),
    )
    counts: Dict[str, Tuple[int, int, int]] = {}

    def predictors_for(name: str):
        profile = get_profile(name, scale)
        loop_corr = LoopCorrelationPredictor(profile)
        counts[name] = (
            len(get_program(name).branch_sites()),
            len(profile.totals),
            len(loop_corr.improved_sites(profile)),
        )
        return [
            ("last direction", LastDirection()),
            ("2 bit counter", SaturatingCounter(2)),
            ("two level 4K bit", two_level_4k()),
            ("profile", ProfilePredictor(profile)),
            ("1 bit correlation", CorrelationPredictor(profile, 1)),
            ("1 bit loop", LoopPredictor(profile, 1)),
            ("9 bit loop", LoopPredictor(profile, 9)),
            ("loop-correlation", loop_corr),
        ]

    per_row = evaluate_rows(
        names, predictors_for, lambda name: get_artifacts(name, scale=scale).trace
    )
    for row in ROWS:
        table.add_row(row, per_row[row], [pct(v) for v in per_row[row]])
    table.add_row("static branches", [counts[name][0] for name in names])
    table.add_row("executed branches", [counts[name][1] for name in names])
    table.add_row("improved branches", [counts[name][2] for name in names])
    return table


register(
    "table1",
    run,
    "misprediction rates of the paper's eight baseline strategies",
)
