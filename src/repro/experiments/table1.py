"""Table 1: misprediction rates of the baseline strategies.

For every benchmark, evaluates the paper's eight strategies —
dynamic: last-direction, 2-bit counter, two-level 4K-bit;
semi-static: profile, 1-bit correlation, 1-bit loop, 9-bit loop,
loop–correlation — plus the three bookkeeping rows: static branches,
executed branches and branches improved by loop–correlation.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import (
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    evaluate,
    two_level_4k,
)
from ..workloads import BENCHMARK_NAMES, get_artifacts, get_profile, get_program
from .report import Table, pct

ROWS = (
    "last direction",
    "2 bit counter",
    "two level 4K bit",
    "profile",
    "1 bit correlation",
    "1 bit loop",
    "9 bit loop",
    "loop-correlation",
)


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    """Build Table 1 at the given trace scale."""
    names = names or BENCHMARK_NAMES
    table = Table(
        "Table 1: misprediction rates of different branch prediction "
        "strategies in percent",
        list(names),
    )
    per_row = {row: [] for row in ROWS}
    statics, executed, improved = [], [], []
    for name in names:
        trace = get_artifacts(name, scale).trace
        profile = get_profile(name, scale)
        loop_corr = LoopCorrelationPredictor(profile)
        predictors = {
            "last direction": LastDirection(),
            "2 bit counter": SaturatingCounter(2),
            "two level 4K bit": two_level_4k(),
            "profile": ProfilePredictor(profile),
            "1 bit correlation": CorrelationPredictor(profile, 1),
            "1 bit loop": LoopPredictor(profile, 1),
            "9 bit loop": LoopPredictor(profile, 9),
            "loop-correlation": loop_corr,
        }
        for row in ROWS:
            result = evaluate(predictors[row], trace)
            per_row[row].append(result.misprediction_rate)
        statics.append(len(get_program(name).branch_sites()))
        executed.append(len(profile.totals))
        improved.append(len(loop_corr.improved_sites(profile)))
    for row in ROWS:
        table.add_row(row, per_row[row], [pct(v) for v in per_row[row]])
    table.add_row("static branches", statics)
    table.add_row("executed branches", executed)
    table.add_row("improved branches", improved)
    return table
