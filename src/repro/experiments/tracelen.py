"""Training-length sensitivity: how much profiling is enough?

Semi-static prediction is trained offline; this sweep trains the
loop–correlation strategy on growing prefixes of the trace and
evaluates on the full trace, showing how quickly the pattern tables
converge.  The punchline backs the paper's methodology: a few thousand
events per branch already capture the structure that replication
exploits.

All six prefix-trained predictors of one benchmark are evaluated in a
single scan of its full trace.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import LoopCorrelationPredictor
from ..profiling import ProfileData
from ..workloads import BENCHMARK_NAMES, get_trace
from .registry import evaluate_rows, register
from .report import Table, pct

FRACTIONS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


def _label(fraction: float) -> str:
    return f"{int(100 * fraction)}% prefix"


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Training-length sensitivity: loop-correlation misprediction (%) "
        "on the full trace, trained on a prefix",
        list(names),
    )

    def predictors_for(name: str):
        trace = get_trace(name, scale)
        labelled = []
        for fraction in FRACTIONS:
            prefix = trace.truncated(max(1, int(len(trace) * fraction)))
            profile = ProfileData.from_trace(prefix)
            labelled.append((_label(fraction), LoopCorrelationPredictor(profile)))
        return labelled

    rows = evaluate_rows(
        names, predictors_for, lambda name: get_trace(name, scale)
    )
    for fraction in FRACTIONS:
        label = _label(fraction)
        table.add_row(label, rows[label], [pct(v) for v in rows[label]])
    return table


register(
    "tracelen",
    run,
    "loop-correlation accuracy vs training-trace prefix length",
)
