"""Training-length sensitivity: how much profiling is enough?

Semi-static prediction is trained offline; this sweep trains the
loop–correlation strategy on growing prefixes of the trace and
evaluates on the full trace, showing how quickly the pattern tables
converge.  The punchline backs the paper's methodology: a few thousand
events per branch already capture the structure that replication
exploits.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import LoopCorrelationPredictor, evaluate
from ..profiling import ProfileData
from ..workloads import BENCHMARK_NAMES, get_trace
from .report import Table, pct

FRACTIONS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Training-length sensitivity: loop-correlation misprediction (%) "
        "on the full trace, trained on a prefix",
        list(names),
    )
    for fraction in FRACTIONS:
        values: List[float] = []
        for name in names:
            trace = get_trace(name, scale)
            prefix = trace.truncated(max(1, int(len(trace) * fraction)))
            profile = ProfileData.from_trace(prefix)
            result = evaluate(LoopCorrelationPredictor(profile), trace)
            values.append(result.misprediction_rate)
        table.add_row(
            f"{int(100 * fraction)}% prefix", values, [pct(v) for v in values]
        )
    return table
