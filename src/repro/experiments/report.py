"""Text-table rendering for experiment results.

Every experiment returns a :class:`Table`; the CLI prints them in the
layout of the paper's tables (benchmarks as columns, strategies as
rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


def pct(value: float, digits: int = 2) -> str:
    """Render a 0..1 fraction as a percentage."""
    return f"{100 * value:.{digits}f}"


@dataclass
class Table:
    """A titled grid of cells with row and column labels."""

    title: str
    columns: List[str]
    rows: List[str] = field(default_factory=list)
    cells: Dict[str, List[str]] = field(default_factory=dict)
    #: raw (unformatted) values for programmatic consumers
    data: Dict[str, List[Any]] = field(default_factory=dict)

    def add_row(self, label: str, values: Sequence[Any], formatted: Optional[Sequence[str]] = None) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(values)} cells, expected {len(self.columns)}"
            )
        self.rows.append(label)
        self.data[label] = list(values)
        if formatted is None:
            formatted = [
                pct(v) if isinstance(v, float) else str(v) for v in values
            ]
        self.cells[label] = list(formatted)

    def render(self) -> str:
        label_width = max([len(r) for r in self.rows] + [8])
        col_widths = [
            max(len(col), *(len(self.cells[row][i]) for row in self.rows))
            if self.rows
            else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title]
        header = " " * label_width + "  " + "  ".join(
            col.rjust(width) for col, width in zip(self.columns, col_widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            cells = "  ".join(
                cell.rjust(width)
                for cell, width in zip(self.cells[row], col_widths)
            )
            lines.append(f"{row.ljust(label_width)}  {cells}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
