"""Table rendering for experiment results: text, JSON and CSV.

Every experiment returns a :class:`Table`; the CLI routes them through
one output stage (``--format text|json|csv``).  Text output keeps the
layout of the paper's tables (benchmarks as columns, strategies as
rows); JSON and CSV expose the same grid to programmatic consumers.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

#: ``formatter(value) -> cell text`` for one row (or a whole table).
CellFormatter = Callable[[Any], str]


def pct(value: float, digits: int = 2) -> str:
    """Render a 0..1 fraction as a percentage."""
    return f"{100 * value:.{digits}f}"


def default_cell(value: Any) -> str:
    """The implicit cell formatter: exact text for ints and strings.

    Floats have no self-evident rendering (percentage? ratio? how many
    digits?), so they must come with an explicit ``formatted`` row or a
    ``formatter`` — a bare float here is a call-site bug.
    """
    if isinstance(value, float):
        raise TypeError(
            "float cells need an explicit formatter (pass formatted=[...] "
            "or formatter=... to add_row, or set Table.formatter); "
            f"got {value!r}"
        )
    return str(value)


@dataclass
class Table:
    """A titled grid of cells with row and column labels."""

    title: str
    columns: List[str]
    rows: List[str] = field(default_factory=list)
    cells: Dict[str, List[str]] = field(default_factory=dict)
    #: raw (unformatted) values for programmatic consumers
    data: Dict[str, List[Any]] = field(default_factory=dict)
    #: table-wide default cell formatter (overridden per row)
    formatter: Optional[CellFormatter] = None

    def add_row(
        self,
        label: str,
        values: Sequence[Any],
        formatted: Optional[Sequence[str]] = None,
        formatter: Optional[CellFormatter] = None,
    ) -> None:
        """Append a row.

        Cell text comes from, in order of precedence: *formatted* (one
        string per value), *formatter* (applied per value), the table's
        :attr:`formatter`, or :func:`default_cell` — which renders ints
        and strings only and rejects bare floats.
        """
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(values)} cells, expected {len(self.columns)}"
            )
        if formatted is not None and len(formatted) != len(values):
            raise ValueError(
                f"row {label!r} has {len(formatted)} formatted cells "
                f"for {len(values)} values"
            )
        self.rows.append(label)
        self.data[label] = list(values)
        if formatted is None:
            fmt = formatter or self.formatter or default_cell
            formatted = [fmt(v) for v in values]
        self.cells[label] = list(formatted)

    def render(self) -> str:
        label_width = max([len(r) for r in self.rows] + [8])
        col_widths = [
            max(len(col), *(len(self.cells[row][i]) for row in self.rows))
            if self.rows
            else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [self.title]
        header = " " * label_width + "  " + "  ".join(
            col.rjust(width) for col, width in zip(self.columns, col_widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            cells = "  ".join(
                cell.rjust(width)
                for cell, width in zip(self.cells[row], col_widths)
            )
            lines.append(f"{row.ljust(label_width)}  {cells}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-shaped view: title, columns, rows, cells, raw data."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": list(self.rows),
            "cells": {row: list(self.cells[row]) for row in self.rows},
            "data": {row: list(self.data[row]) for row in self.rows},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """CSV with a leading title row, then a header row, then cells."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["table", self.title])
        writer.writerow([""] + list(self.columns))
        for row in self.rows:
            writer.writerow([row] + list(self.cells[row]))
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.render()


def tables_to_json(tables: Sequence[Table], indent: int = 2) -> str:
    """One table renders as an object; several as an array."""
    if len(tables) == 1:
        return tables[0].to_json(indent)
    return json.dumps([table.to_dict() for table in tables], indent=indent)


def tables_to_csv(tables: Sequence[Table]) -> str:
    """Tables as consecutive CSV blocks separated by blank lines."""
    return "\n".join(table.to_csv() for table in tables)
