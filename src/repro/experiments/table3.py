"""Table 3: loop and loop-exit branches — full history vs state machines.

For each history depth *k* the table shows the misprediction of loop
branches under the complete k-bit pattern table, and under the best
(k+1)-state machine for intra-loop and loop-exit branches ("so we
grouped always a history with n bits with a n+1 state machine to show
the effect of accuracy loss").
"""

from __future__ import annotations

from typing import List, Optional

from ..cfg import BranchClass, classify_branches
from ..statemachines import best_intra_machine, best_loop_exit_machine
from ..workloads import BENCHMARK_NAMES, get_profile, get_program
from .registry import register
from .report import Table, pct


def _subset_rate_full_history(profile, sites, bits: int) -> float:
    """Misprediction of *sites* with per-pattern majority at depth *bits*."""
    total = correct = 0
    for site in sites:
        table = profile.local[site].marginalize(bits)
        total += table.executions()
        correct += table.correct_if_per_pattern()
    return (total - correct) / total if total else 0.0


def _subset_rate_machines(profile, infos, sites, n_states: int, intra: bool) -> float:
    total = correct = 0
    for site in sites:
        table = profile.local[site]
        if intra:
            scored = best_intra_machine(table, n_states)
        else:
            scored = best_loop_exit_machine(
                table, n_states, exit_on_taken=infos[site].taken_exits
            )
        total += scored.total
        correct += scored.correct
    return (total - correct) / total if total else 0.0


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    max_bits: int = 8,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Table 3: misprediction rates of loop and loop exit branches in percent",
        list(names),
    )
    contexts = {}
    for name in names:
        profile = get_profile(name, scale)
        infos = classify_branches(get_program(name))
        intra = [
            site
            for site in profile.totals
            if site in infos and infos[site].kind is BranchClass.INTRA_LOOP
        ]
        exits = [
            site
            for site in profile.totals
            if site in infos and infos[site].kind is BranchClass.LOOP_EXIT
        ]
        contexts[name] = (profile, infos, intra, exits)

    for label, subset_index in (("loop", 2), ("exit", 3)):
        profile_row = [
            _subset_rate_full_history(
                contexts[name][0], contexts[name][subset_index], 0
            )
            for name in names
        ]
        table.add_row(
            f"profile ({label})", profile_row, [pct(v) for v in profile_row]
        )

    for bits in range(1, max_bits + 1):
        for label, subset_index in (("loop", 2), ("exit", 3)):
            history_row, machine_row = [], []
            for name in names:
                profile, infos, intra, exits = contexts[name]
                sites = contexts[name][subset_index]
                history_row.append(
                    _subset_rate_full_history(profile, sites, bits)
                )
                machine_row.append(
                    _subset_rate_machines(
                        profile, infos, sites, bits + 1, intra=(label == "loop")
                    )
                )
            table.add_row(
                f"{bits} bit {label}", history_row, [pct(v) for v in history_row]
            )
            table.add_row(
                f"{bits + 1} states {label}",
                machine_row,
                [pct(v) for v in machine_row],
            )
    return table


register("table3", run, "loop/exit branches: full history vs state machines")
