"""Shared train-on-A / evaluate-on-B machinery.

Two experiments deploy state trained on one run against a different
run: ``crossdata`` (same workload, perturbed input seed) and
``transfer`` (learned models moved across workloads, with the same
perturbed-seed evaluation traces).  Both use the same seed perturbation
and the same CLI artifact prewarming, kept here so neither duplicates
the other's scheduling logic.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

#: Seed perturbation of the "run B" dataset shared by every
#: cross-evaluation experiment.
DEFAULT_SEED_OFFSET = 1_000_003

#: Experiment targets whose evaluation traces use the perturbed seed —
#: the CLI prewarms offset artifacts when any of these is scheduled.
SEED_OFFSET_TARGETS = ("crossdata", "transfer")


def prewarm_specs(
    targets: Iterable[str],
    names: Iterable[str],
    scale: int,
    seed_offset: int = DEFAULT_SEED_OFFSET,
) -> List[Tuple[str, int, int]]:
    """Artifact ``(name, scale, seed_offset)`` specs every scheduled
    target will need: the reference run for all of them, plus the
    perturbed run when a cross-evaluation target is scheduled."""
    names = list(names)
    specs = [(name, scale, 0) for name in names]
    if any(target in SEED_OFFSET_TARGETS for target in targets):
        specs.extend((name, scale, seed_offset) for name in names)
    return specs
