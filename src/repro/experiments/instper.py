"""Instructions per mispredicted branch (Fisher & Freudenberger's
measure, Section 2.2).

"Instead of using the misprediction rate as a measure, they gave the
average number of executed instructions per mispredicted branch" — a
metric that weights prediction quality by how much useful work fits
between two pipeline flushes.  Higher is better.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import (
    LoopCorrelationPredictor,
    ProfilePredictor,
    SaturatingCounter,
    two_level_4k,
)
from ..workloads import BENCHMARK_NAMES, get_artifacts, get_profile
from .registry import evaluate_rows, register
from .report import Table

ROWS = ("2 bit counter", "two level 4K bit", "profile", "loop-correlation")


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Instructions per mispredicted branch (higher is better)",
        list(names),
    )

    def predictors_for(name: str):
        profile = get_profile(name, scale)
        return [
            ("2 bit counter", SaturatingCounter(2)),
            ("two level 4K bit", two_level_4k()),
            ("profile", ProfilePredictor(profile)),
            ("loop-correlation", LoopCorrelationPredictor(profile)),
        ]

    def instructions_per_misprediction(result, name):
        steps = get_artifacts(name, scale=scale).steps
        return (
            steps / result.mispredictions
            if result.mispredictions
            else float("inf")
        )

    rows = evaluate_rows(
        names,
        predictors_for,
        lambda name: get_artifacts(name, scale=scale).trace,
        metric=instructions_per_misprediction,
    )
    for label in ROWS:
        table.add_row(
            label,
            rows[label],
            [f"{v:.0f}" if v != float("inf") else "inf" for v in rows[label]],
        )
    return table


register(
    "instper",
    run,
    "Fisher/Freudenberger instructions per mispredicted branch",
)
