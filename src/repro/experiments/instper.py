"""Instructions per mispredicted branch (Fisher & Freudenberger's
measure, Section 2.2).

"Instead of using the misprediction rate as a measure, they gave the
average number of executed instructions per mispredicted branch" — a
metric that weights prediction quality by how much useful work fits
between two pipeline flushes.  Higher is better.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import (
    LoopCorrelationPredictor,
    ProfilePredictor,
    SaturatingCounter,
    evaluate,
    two_level_4k,
)
from ..workloads import BENCHMARK_NAMES, get_artifacts, get_profile
from .report import Table


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Instructions per mispredicted branch (higher is better)",
        list(names),
    )
    rows = {
        "2 bit counter": lambda profile: SaturatingCounter(2),
        "two level 4K bit": lambda profile: two_level_4k(),
        "profile": ProfilePredictor,
        "loop-correlation": LoopCorrelationPredictor,
    }
    for label, make in rows.items():
        values: List[float] = []
        for name in names:
            artifacts = get_artifacts(name, scale)
            trace = artifacts.trace
            steps = artifacts.steps
            profile = get_profile(name, scale)
            result = evaluate(make(profile), trace)
            values.append(
                steps / result.mispredictions
                if result.mispredictions
                else float("inf")
            )
        table.add_row(
            label,
            values,
            [f"{v:.0f}" if v != float("inf") else "inf" for v in values],
        )
    return table
