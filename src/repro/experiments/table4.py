"""Table 4: misprediction rates of correlated branches.

Non-loop branches predicted from paths of preceding (global) branch
outcomes: the full k-bit global history versus the n-state path
machines with path length bounded by the machine size ("we used a
maximum path length of n for an n state machine to keep the size of
the replicated code small").
"""

from __future__ import annotations

from typing import List, Optional

from ..cfg import classify_branches
from ..statemachines import correlated_machine_options
from ..workloads import BENCHMARK_NAMES, get_profile, get_program
from .registry import register
from .report import Table, pct


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    max_states: int = 8,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Table 4: misprediction rates of correlated branches in percent",
        list(names),
    )
    contexts = {}
    for name in names:
        profile = get_profile(name, scale)
        infos = classify_branches(get_program(name))
        # Following Section 5, the correlated strategy is computed for
        # every branch ("for all branches all predecessors ... are
        # collected"), so this table scores the whole population.
        sites = [site for site in profile.totals if site in infos]
        options = {
            site: correlated_machine_options(
                profile.global_tables[site], max_states
            )
            for site in sites
        }
        contexts[name] = (profile, sites, options)

    profile_row = []
    for name in names:
        profile, sites, _ = contexts[name]
        total = sum(profile.executions(site) for site in sites)
        correct = sum(max(profile.totals[site]) for site in sites)
        profile_row.append((total - correct) / total if total else 0.0)
    table.add_row("profile", profile_row, [pct(v) for v in profile_row])

    for n_states in range(2, max_states + 1):
        row = []
        for name in names:
            profile, sites, options = contexts[name]
            total = correct = 0
            for site in sites:
                scored = options[site][n_states - 1]
                total += scored.total
                correct += max(scored.correct, max(profile.totals[site]))
            row.append((total - correct) / total if total else 0.0)
        table.add_row(f"{n_states} states", row, [pct(v) for v in row])
    return table


register("table4", run, "correlated branches: global history vs path machines")
