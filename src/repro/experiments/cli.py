"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table1 [--scale N] [--names a,b,...]
    python -m repro.experiments table1 --format json
    python -m repro.experiments figures [--csv-dir results/]
    python -m repro.experiments all [--jobs N] [--timings] [--format csv]
    python -m repro.experiments cache [stats|clear]

Targets come from the experiment registry
(:mod:`repro.experiments.registry`); every one flows through a single
output stage selected by ``--format``: ``text`` (the paper-style tables,
byte-identical to previous releases), ``json`` (title/columns/rows/
cells/raw data per table) or ``csv``.

Benchmark artifact generation (the expensive interpreter passes) is
fanned out across ``--jobs`` worker processes that fill the shared
on-disk artifact cache before any table renders; a warm cache makes
every target a pure replay.

Observability: ``--timings`` and ``--trace-out`` enable span recording
on the process observer (:mod:`repro.obs`).  ``--timings`` prints the
observer's stage summary — span aggregates, engine throughput, cache
counters — on stderr *after* all table output, so stdout stays
machine-parseable under ``--format json|csv``; ``--trace-out FILE``
writes the whole run as Chrome ``trace_event`` JSON, loadable in
``chrome://tracing`` or https://ui.perfetto.dev.  ``--snapshot-out``
saves the final observer snapshot as JSON (feed it to
``python -m repro obs-export``) and ``--metrics-out`` writes the same
data directly as Prometheus text exposition.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..obs import (
    OBS,
    render_prometheus,
    summary_lines,
    write_chrome_trace,
    write_snapshot,
)
from ..predictors import engine_stats
from ..workloads import BENCHMARK_NAMES, artifacts as artifact_store
from ..workloads.artifacts import cache_stats, generate_artifacts
from . import crosseval
from .registry import RunContext, all_experiments, get_experiment
from .report import Table, tables_to_csv, tables_to_json

#: Backwards-compatible view of the single-table targets
#: (``name -> runner(scale, names)``), derived from the registry.
SIMPLE = {
    name: experiment.runner
    for name, experiment in all_experiments().items()
    if not experiment.multi
}


def _parse_names(parser: argparse.ArgumentParser, raw: Optional[str]) -> Optional[List[str]]:
    """Split and validate ``--names`` against the benchmark registry."""
    if not raw:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in BENCHMARK_NAMES]
    if unknown:
        parser.error(
            f"unknown benchmark name(s): {', '.join(unknown)}; "
            f"valid choices: {', '.join(BENCHMARK_NAMES)}"
        )
    return names or None


def _run_cache_command(action: str) -> int:
    directory = artifact_store.cache_dir()
    if action == "clear":
        removed = artifact_store.clear_disk_cache()
        artifact_store.clear_memory_cache()
        print(f"removed {removed} artifact file(s) from {directory or '(disabled)'}")
        return 0
    entries = artifact_store.disk_cache_entries()
    print(f"cache directory: {directory or '(disabled)'}")
    print(f"entries: {len(entries)} file(s), {artifact_store.disk_cache_bytes()} bytes")
    for entry in entries:
        print(f"  {entry}")
    stats = cache_stats()
    print(
        f"this process: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.interpreter_runs} interpreter run(s)"
    )
    return 0


def _prewarm_specs(targets: List[str], names: List[str], scale: int):
    """Artifact specs every scheduled target will need."""
    return crosseval.prewarm_specs(targets, names, scale)


def _all_targets() -> List[str]:
    """Every registered target: single-table first, multi-table last.

    Matches the historical ``all`` ordering (the simple tables sorted,
    then ``figures``), so text output stays byte-identical.
    """
    experiments = all_experiments()
    return sorted(n for n in experiments if not experiments[n].multi) + sorted(
        n for n in experiments if experiments[n].multi
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(all_experiments()) + ["all", "cache"],
        help="which experiment to run (or 'cache' to manage the artifact cache)",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=["stats", "clear"],
        help="cache subcommand action (default: stats)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="trace scale (≈ scale × 10k branches per benchmark)",
    )
    parser.add_argument(
        "--names",
        type=str,
        default=None,
        help="comma-separated benchmark subset",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "csv"],
        default="text",
        help="output format for the rendered tables (default: text)",
    )
    parser.add_argument(
        "--csv-dir",
        type=str,
        default=None,
        help="write figure curves as CSV files into this directory "
        "(figures/all targets only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for artifact generation "
        "(default: the machine's CPU count)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="report the observability summary (per-stage wall-clock "
        "timings, engine throughput, cache counters) on stderr after "
        "all table output",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the run's spans and counters as Chrome trace_event "
        "JSON to FILE (chrome://tracing / Perfetto)",
    )
    parser.add_argument(
        "--snapshot-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the final observer snapshot (counters, gauges, "
        "histograms, spans) as JSON to FILE — the input format of "
        "'python -m repro obs-export'",
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the final observer snapshot as Prometheus text "
        "exposition to FILE (what GET /metrics would have served)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "cache":
        return _run_cache_command(args.action or "stats")
    if args.action is not None:
        parser.error(
            f"'{args.action}' is only valid after the 'cache' subcommand"
        )
    if args.csv_dir is not None and args.experiment not in ("figures", "all"):
        parser.error(
            f"--csv-dir has no effect on target {args.experiment!r}; "
            "it applies to 'figures' (and 'all')"
        )
    names = _parse_names(parser, args.names)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        parser.error("--jobs must be >= 1")

    targets = _all_targets() if args.experiment == "all" else [args.experiment]

    # Span recording is opt-in: without --timings/--trace-out the
    # observer only keeps its (cheap, always-on) counters and the run's
    # stdout/stderr match previous releases byte for byte.
    if args.timings or args.trace_out:
        OBS.enable()

    with OBS.span("artifacts.prewarm", jobs=jobs, scale=args.scale):
        generate_artifacts(
            _prewarm_specs(targets, names or BENCHMARK_NAMES, args.scale),
            jobs=jobs,
        )

    # Single output stage: text streams per target (byte-identical to the
    # historical layout); json/csv collect every table and emit one
    # document at the end.
    collected: List[Table] = []
    for target in targets:
        experiment = get_experiment(target)
        ctx = RunContext(
            scale=args.scale,
            names=tuple(names) if names is not None else None,
            jobs=jobs,
            output=args.format,
            obs=OBS,
            trace_out=args.trace_out,
            options={"csv_dir": args.csv_dir} if target == "figures" else {},
        )
        with OBS.span(
            f"experiment:{target}", scale=args.scale, format=args.format
        ) as span:
            engine_before = engine_stats()
            started = time.perf_counter()
            tables = experiment.tables(ctx)
            elapsed = time.perf_counter() - started
            engine_after = engine_stats()
            span.set(
                seconds=round(elapsed, 6),
                tables=len(tables),
                engine_events=engine_after.events - engine_before.events,
                engine_scans=engine_after.scans - engine_before.scans,
            )
        if args.format == "text":
            for table in tables:
                print(table.render())
                print()
        else:
            collected.extend(tables)

    if args.format == "json" and collected:
        print(tables_to_json(collected))
    elif args.format == "csv" and collected:
        print(tables_to_csv(collected), end="")

    # Telemetry is emitted only after every table has been written, so
    # stdout stays machine-parseable and stderr never interleaves with
    # partially rendered output.
    snapshot = OBS.snapshot()
    if args.trace_out:
        write_chrome_trace(args.trace_out, snapshot)
    if args.snapshot_out:
        write_snapshot(args.snapshot_out, snapshot)
    if args.metrics_out:
        with open(args.metrics_out, "w") as stream:
            stream.write(render_prometheus(snapshot))
    if args.timings:
        engine = engine_stats()
        stats = cache_stats()
        for line in summary_lines(snapshot):
            print(line, file=sys.stderr)
        print(
            f"[timings] cache: {stats.hits} hit(s), {stats.misses} miss(es), "
            f"{stats.interpreter_runs} interpreter run(s) "
            f"({stats.interpreter_seconds:.2f}s interp, "
            f"{stats.load_seconds:.2f}s load)",
            file=sys.stderr,
        )
        if engine.events:
            rate = engine.events / engine.seconds if engine.seconds else float("inf")
            print(
                f"[timings] engine: {engine.events} event(s) in {engine.scans} "
                f"single-pass scan(s), {engine.online_predictors} online + "
                f"{engine.closed_form_predictors} closed-form result(s), "
                f"{rate:,.0f} events/s",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
