"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table1 [--scale N] [--names a,b,...]
    python -m repro.experiments figures [--csv-dir results/]
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import (
    ablation,
    alignment,
    costfn,
    crossdata,
    figures,
    instper,
    joint,
    scheduling,
    statics,
    tracelen,
    twolevel_zoo,
    table1,
    table2,
    table3,
    table4,
    table5,
)

SIMPLE = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "crossdata": crossdata.run,
    "ablation-search": ablation.run_search,
    "ablation-pruning": ablation.run_pruning,
    "alignment": alignment.run,
    "joint": joint.run,
    "instper": instper.run,
    "statics": statics.run,
    "scheduling": scheduling.run,
    "tracelen": tracelen.run,
    "twolevel-zoo": twolevel_zoo.run,
    "costfn": lambda scale=1, names=None: costfn.run(scale=scale, names=names),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(SIMPLE) + ["figures", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="trace scale (≈ scale × 10k branches per benchmark)",
    )
    parser.add_argument(
        "--names",
        type=str,
        default=None,
        help="comma-separated benchmark subset",
    )
    parser.add_argument(
        "--csv-dir",
        type=str,
        default=None,
        help="write figure curves as CSV files into this directory",
    )
    args = parser.parse_args(argv)
    names = args.names.split(",") if args.names else None

    targets = (
        sorted(SIMPLE) + ["figures"] if args.experiment == "all" else [args.experiment]
    )
    for target in targets:
        if target == "figures":
            for table in figures.run(args.scale, names, csv_dir=args.csv_dir).values():
                print(table.render())
                print()
        else:
            print(SIMPLE[target](args.scale, names).render())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
