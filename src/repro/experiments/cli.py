"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.experiments table1 [--scale N] [--names a,b,...]
    python -m repro.experiments figures [--csv-dir results/]
    python -m repro.experiments all [--jobs N] [--timings]
    python -m repro.experiments cache [stats|clear]

Benchmark artifact generation (the expensive interpreter passes) is
fanned out across ``--jobs`` worker processes that fill the shared
on-disk artifact cache before any table renders; a warm cache makes
every target a pure replay.  ``--timings`` reports per-stage wall-clock
times and cache hit/miss counters on stderr, keeping stdout
byte-comparable between runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..workloads import BENCHMARK_NAMES, artifacts as artifact_store
from ..workloads.artifacts import cache_stats, generate_artifacts
from . import (
    ablation,
    alignment,
    costfn,
    crossdata,
    figures,
    instper,
    joint,
    scheduling,
    statics,
    tracelen,
    twolevel_zoo,
    table1,
    table2,
    table3,
    table4,
    table5,
)

SIMPLE = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "crossdata": crossdata.run,
    "ablation-search": ablation.run_search,
    "ablation-pruning": ablation.run_pruning,
    "alignment": alignment.run,
    "joint": joint.run,
    "instper": instper.run,
    "statics": statics.run,
    "scheduling": scheduling.run,
    "tracelen": tracelen.run,
    "twolevel-zoo": twolevel_zoo.run,
    "costfn": lambda scale=1, names=None: costfn.run(scale=scale, names=names),
}


def _parse_names(parser: argparse.ArgumentParser, raw: Optional[str]) -> Optional[List[str]]:
    """Split and validate ``--names`` against the benchmark registry."""
    if not raw:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in BENCHMARK_NAMES]
    if unknown:
        parser.error(
            f"unknown benchmark name(s): {', '.join(unknown)}; "
            f"valid choices: {', '.join(BENCHMARK_NAMES)}"
        )
    return names or None


def _run_cache_command(action: str) -> int:
    directory = artifact_store.cache_dir()
    if action == "clear":
        removed = artifact_store.clear_disk_cache()
        artifact_store.clear_memory_cache()
        print(f"removed {removed} artifact file(s) from {directory or '(disabled)'}")
        return 0
    entries = artifact_store.disk_cache_entries()
    print(f"cache directory: {directory or '(disabled)'}")
    print(f"entries: {len(entries)} file(s), {artifact_store.disk_cache_bytes()} bytes")
    for entry in entries:
        print(f"  {entry}")
    stats = cache_stats()
    print(
        f"this process: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.interpreter_runs} interpreter run(s)"
    )
    return 0


def _prewarm_specs(targets: List[str], names: List[str], scale: int):
    """Artifact specs every scheduled target will need."""
    specs = [(name, scale, 0) for name in names]
    if "crossdata" in targets:
        specs.extend((name, scale, crossdata.DEFAULT_SEED_OFFSET) for name in names)
    return specs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(SIMPLE) + ["figures", "all", "cache"],
        help="which experiment to run (or 'cache' to manage the artifact cache)",
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=["stats", "clear"],
        help="cache subcommand action (default: stats)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="trace scale (≈ scale × 10k branches per benchmark)",
    )
    parser.add_argument(
        "--names",
        type=str,
        default=None,
        help="comma-separated benchmark subset",
    )
    parser.add_argument(
        "--csv-dir",
        type=str,
        default=None,
        help="write figure curves as CSV files into this directory "
        "(figures/all targets only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for artifact generation "
        "(default: the machine's CPU count)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="report per-stage wall-clock timings and cache counters on stderr",
    )
    args = parser.parse_args(argv)

    if args.experiment == "cache":
        return _run_cache_command(args.action or "stats")
    if args.action is not None:
        parser.error(
            f"'{args.action}' is only valid after the 'cache' subcommand"
        )
    if args.csv_dir is not None and args.experiment not in ("figures", "all"):
        parser.error(
            f"--csv-dir has no effect on target {args.experiment!r}; "
            "it applies to 'figures' (and 'all')"
        )
    names = _parse_names(parser, args.names)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        parser.error("--jobs must be >= 1")

    targets = (
        sorted(SIMPLE) + ["figures"] if args.experiment == "all" else [args.experiment]
    )

    def note(message: str) -> None:
        if args.timings:
            print(message, file=sys.stderr)

    started = time.perf_counter()
    generate_artifacts(
        _prewarm_specs(targets, names or BENCHMARK_NAMES, args.scale), jobs=jobs
    )
    note(f"[timings] artifact prewarm: {time.perf_counter() - started:.2f}s (jobs={jobs})")

    for target in targets:
        target_started = time.perf_counter()
        if target == "figures":
            for table in figures.run(args.scale, names, csv_dir=args.csv_dir).values():
                print(table.render())
                print()
        else:
            print(SIMPLE[target](args.scale, names).render())
            print()
        note(f"[timings] {target}: {time.perf_counter() - target_started:.2f}s")

    stats = cache_stats()
    note(
        f"[timings] cache: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.interpreter_runs} interpreter run(s) "
        f"({stats.interpreter_seconds:.2f}s interp, {stats.load_seconds:.2f}s load)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
