"""Figures 6-13: misprediction rate versus code size, per benchmark.

Each figure is the greedy state-addition walk of
:func:`repro.replication.tradeoff.tradeoff_curve`: starting from profile
prediction, states are added "in such an order that the state that
predicted the largest number of branches and that increased the code
size by the smallest amount was chosen first".

The curves are emitted as text tables (and optionally CSV) — size
factor on the x axis, misprediction percentage on the y axis, exactly
the series the paper plots.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..replication import TradeoffPoint, tradeoff_curve
from .registry import register
from .report import Table, pct
from .table5 import make_planner

#: Figure numbers in the paper, per benchmark.
FIGURE_NUMBERS = {
    "abalone": 6,
    "c-compiler": 7,
    "compress": 8,
    "ghostview": 9,
    "predict": 10,
    "prolog": 11,
    "scheduler": 12,
    "doduc": 13,
}


def curve_for(
    name: str,
    scale: int = 1,
    max_states: int = 10,
    max_size_factor: Optional[float] = None,
) -> List[TradeoffPoint]:
    """The raw trade-off curve of one benchmark."""
    planner = make_planner(name, scale, max_states)
    return tradeoff_curve(planner, max_size_factor)


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    max_states: int = 10,
    csv_dir: Optional[str] = None,
) -> Dict[str, Table]:
    """Build all figures; returns one table per benchmark."""
    names = names or list(FIGURE_NUMBERS)
    tables: Dict[str, Table] = {}
    for name in names:
        points = curve_for(name, scale, max_states)
        figure = FIGURE_NUMBERS.get(name, "?")
        table = Table(
            f"Figure {figure}: {name} — misprediction rate vs code size",
            ["size factor", "misprediction %", "upgrade"],
        )
        for index, point in enumerate(points):
            step = "-" if point.step is None else f"{point.step[0]}+{point.step[1]}"
            table.add_row(
                f"step {index}",
                [point.size_factor, point.misprediction_rate, step],
                [
                    f"{point.size_factor:.3f}",
                    pct(point.misprediction_rate),
                    step,
                ],
            )
        tables[name] = table
        if csv_dir is not None:
            os.makedirs(csv_dir, exist_ok=True)
            path = os.path.join(csv_dir, f"figure_{figure}_{name}.csv")
            with open(path, "w") as stream:
                stream.write("size_factor,misprediction_rate\n")
                for point in points:
                    stream.write(
                        f"{point.size_factor:.6f},{point.misprediction_rate:.6f}\n"
                    )
    return tables


register(
    "figures",
    run,
    "figures 6-13: misprediction vs code size trade-off curves",
    multi=True,
)
