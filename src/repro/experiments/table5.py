"""Table 5: best achievable misprediction rates, ignoring code size.

Every branch gets the best strategy available to it — intra-loop,
loop-exit or correlated state machine, or plain profile — with the
state count bounded per row.  This is the ceiling the trade-off curves
(Figures 6-13) approach as code growth is allowed to increase.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..replication import ReplicationPlanner
from ..workloads import BENCHMARK_NAMES, get_profile, get_program
from .registry import register
from .report import Table, pct


def make_planner(name: str, scale: int = 1, max_states: int = 10) -> ReplicationPlanner:
    """Planner for one benchmark (exposed for the figures module)."""
    return ReplicationPlanner(get_program(name), get_profile(name, scale), max_states)


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    max_states: int = 10,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Table 5: best achievable misprediction rates in percent", list(names)
    )
    planners: Dict[str, ReplicationPlanner] = {
        name: make_planner(name, scale, max_states) for name in names
    }
    profile_row = [
        planners[name].profile_mispredictions()
        / max(planners[name].total_executions(), 1)
        for name in names
    ]
    table.add_row("profile", profile_row, [pct(v) for v in profile_row])
    for n_states in range(2, max_states + 1):
        row = [
            planners[name].best_misprediction_rate(n_states) for name in names
        ]
        table.add_row(f"{n_states} states", row, [pct(v) for v in row])
    return table


register("table5", run, "best achievable misprediction rates, ignoring code size")
