"""Speculative scheduling experiment (the paper's stated goal).

"Compile time optimizations like code motion and speculative execution
rely on an accurate branch prediction strategy."  We measure the
estimated dynamic cycle count of each benchmark on a 2-wide in-order
machine under:

* **per-block** scheduling (no prediction used);
* **superblock** scheduling along profile-predicted traces;
* **superblock after replication** — the replicated program's copies
  carry sharper predictions, so its traces follow execution more
  faithfully and speculation pays more often.

Weights come from a real instrumented run of the program being
scheduled, so a replicated program is weighed over its own (larger)
code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..interp import Machine
from ..ir import Program
from ..replication import ReplicationPlanner, apply_replication
from ..scheduling import estimate_program_cycles
from ..workloads import BENCHMARK_NAMES, get_profile, get_program, get_workload
from .registry import register
from .report import Table


def _profile_run(program: Program, args, input_values):
    """(block counts, edge counts) from one instrumented run."""
    machine = Machine(program, input_values, count_edges=True)
    machine.run(*args)
    counts: Dict[Tuple[str, str], int] = {}
    for (function, _source, target), count in machine.edge_counts.items():
        key = (function, target)
        counts[key] = counts.get(key, 0) + count
    for function in program:
        counts.setdefault((function.name, function.entry), 1)
    return counts, machine.edge_counts


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    max_states: int = 4,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Speculative scheduling: estimated cycles (2-wide, speedup vs "
        "per-block)",
        list(names),
    )
    base_row: List[int] = []
    profile_speedups: List[float] = []
    replicated_speedups: List[float] = []
    for name in names:
        program = get_program(name)
        workload = get_workload(name)
        args, input_values = workload.default_args(scale)
        profile = get_profile(name, scale)

        annotated = apply_replication(program, [], profile).program
        counts, edges = _profile_run(annotated, args, input_values)
        baseline, with_profile = estimate_program_cycles(annotated, counts, edges)
        base_row.append(baseline)
        profile_speedups.append(baseline / with_profile if with_profile else 1.0)

        planner = ReplicationPlanner(program, profile, max_states)
        selections = [
            (plan.site, plan.best_option(max_states).scored.machine)
            for plan in planner.improvable_plans()
        ]
        replicated = apply_replication(program, selections, profile).program
        rep_counts, rep_edges = _profile_run(replicated, args, input_values)
        rep_baseline, rep_super = estimate_program_cycles(
            replicated, rep_counts, rep_edges
        )
        # Speedup relative to the replicated program's own per-block
        # baseline (the same dynamic work, block by block).
        replicated_speedups.append(
            rep_baseline / rep_super if rep_super else 1.0
        )

    table.add_row("per-block cycles", base_row)
    table.add_row(
        "superblock speedup",
        profile_speedups,
        [f"{v:.3f}x" for v in profile_speedups],
    )
    table.add_row(
        "replicated superblock speedup",
        replicated_speedups,
        [f"{v:.3f}x" for v in replicated_speedups],
    )
    return table


register("scheduling", run, "speculative superblock scheduling speedups")
