"""Table 2: fill rate of the per-branch local history pattern tables.

"Only between 0.1 and 2 percent of the 9 bit pattern table entries of
the executed branches are used" — the sparsity that makes compacting
the tables into small state machines possible at all.
"""

from __future__ import annotations

from typing import List, Optional

from ..workloads import BENCHMARK_NAMES, get_profile
from .registry import register
from .report import Table, pct


def run(scale: int = 1, names: Optional[List[str]] = None, max_bits: int = 9) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Table 2: fill rate of the history tables in percent", list(names)
    )
    profiles = {name: get_profile(name, scale) for name in names}
    for bits in range(1, max_bits + 1):
        values = [profiles[name].fill_rate(bits) for name in names]
        table.add_row(f"{bits} bit history", values, [pct(v) for v in values])
    return table


register("table2", run, "fill rate of the per-branch local history pattern tables")
