"""Experiment harness: one module per table/figure of the paper.

Importing this package imports every experiment module, and each module
registers its CLI target(s) in :mod:`repro.experiments.registry` — the
single source of truth the CLI, docs and tests enumerate.
"""

from . import (
    ablation,
    alignment,
    costfn,
    crossdata,
    crosseval,
    figures,
    instper,
    joint,
    learned,
    scheduling,
    statics,
    tracelen,
    transfer,
    twolevel_zoo,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from .registry import (
    Experiment,
    RunContext,
    all_experiments,
    evaluate_rows,
    experiment_names,
    get_experiment,
    register,
)
from .report import Table, pct, tables_to_csv, tables_to_json

__all__ = [
    "Experiment",
    "RunContext",
    "Table",
    "ablation",
    "alignment",
    "all_experiments",
    "costfn",
    "crossdata",
    "crosseval",
    "evaluate_rows",
    "experiment_names",
    "figures",
    "get_experiment",
    "instper",
    "joint",
    "learned",
    "pct",
    "register",
    "scheduling",
    "statics",
    "tables_to_csv",
    "tables_to_json",
    "tracelen",
    "transfer",
    "twolevel_zoo",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
