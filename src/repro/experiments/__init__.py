"""Experiment harness: one module per table/figure of the paper."""

from . import (
    ablation,
    alignment,
    costfn,
    crossdata,
    figures,
    instper,
    joint,
    scheduling,
    statics,
    tracelen,
    twolevel_zoo,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from .report import Table, pct

__all__ = [
    "Table",
    "ablation",
    "alignment",
    "costfn",
    "crossdata",
    "figures",
    "instper",
    "joint",
    "scheduling",
    "statics",
    "tracelen",
    "twolevel_zoo",
    "pct",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
