"""Ablations of design choices called out in DESIGN.md.

* **search**: exhaustive suffix-trie search vs greedy leaf splitting
  for intra-loop machines — does the exhaustive search actually find
  better machines?
* **pruning**: how much of the replicated code the unreachable-copy
  removal (Figure 1's discarded blocks) eliminates, measured on real
  transforms.
"""

from __future__ import annotations

from typing import List, Optional

from ..cfg import BranchClass, classify_branches
from ..replication import ReplicationPlanner, apply_replication
from ..statemachines import best_intra_machine, greedy_intra_machine
from ..workloads import BENCHMARK_NAMES, get_profile, get_program
from .registry import register
from .report import Table, pct


def run_search(
    scale: int = 1, names: Optional[List[str]] = None, n_states: int = 4
) -> Table:
    """Exhaustive vs greedy intra-loop machine search."""
    names = names or BENCHMARK_NAMES
    table = Table(
        f"Ablation: intra-loop machine search at {n_states} states "
        "(misprediction %)",
        list(names),
    )
    exhaustive_row, greedy_row = [], []
    for name in names:
        profile = get_profile(name, scale)
        infos = classify_branches(get_program(name))
        total = exhaustive_correct = greedy_correct = 0
        for site in profile.totals:
            info = infos.get(site)
            if info is None or info.kind is not BranchClass.INTRA_LOOP:
                continue
            table_local = profile.local[site]
            exhaustive = best_intra_machine(table_local, n_states)
            greedy = greedy_intra_machine(table_local, n_states)
            total += exhaustive.total
            exhaustive_correct += exhaustive.correct
            greedy_correct += greedy.correct
        exhaustive_row.append(
            (total - exhaustive_correct) / total if total else 0.0
        )
        greedy_row.append((total - greedy_correct) / total if total else 0.0)
    table.add_row("exhaustive", exhaustive_row, [pct(v) for v in exhaustive_row])
    table.add_row("greedy split", greedy_row, [pct(v) for v in greedy_row])
    return table


def run_pruning(
    scale: int = 1, names: Optional[List[str]] = None, max_states: int = 4
) -> Table:
    """Effect of unreachable-copy pruning on replicated program size.

    Applies the best loop machine of each benchmark's most-executed
    improvable loop branch and reports the size with pruning against
    the unpruned upper bound (all state copies kept).
    """
    names = names or BENCHMARK_NAMES
    table = Table(
        "Ablation: unreachable-copy pruning after loop replication",
        list(names),
    )
    base_row, unpruned_row, pruned_row, saved_row = [], [], [], []
    for name in names:
        program = get_program(name)
        profile = get_profile(name, scale)
        planner = ReplicationPlanner(program, profile, max_states)
        candidates = [
            plan
            for plan in planner.improvable_plans()
            if plan.loop_key is not None
            and plan.best_option(max_states) is not None
            and plan.best_option(max_states).family == "loop"
        ]
        base = program.size()
        base_row.append(base)
        if not candidates:
            unpruned_row.append(base)
            pruned_row.append(base)
            saved_row.append(0)
            continue
        plan = max(candidates, key=lambda p: p.executions)
        option = plan.best_option(max_states)
        report = apply_replication(program, [(plan.site, option.scored.machine)])
        removed_blocks = report.loop_results[0].removed
        # Unpruned size = pruned size + the blocks discarded.
        original_function = program.function(plan.site.function)
        pruned = report.size_after
        unpruned = pruned + _removed_size(original_function, removed_blocks)
        unpruned_row.append(unpruned)
        pruned_row.append(pruned)
        saved_row.append(unpruned - pruned)
    table.add_row("base size", base_row)
    table.add_row("unpruned size", unpruned_row)
    table.add_row("pruned size", pruned_row)
    table.add_row("instructions saved", saved_row)
    return table


register(
    "ablation-search",
    run_search,
    "exhaustive suffix-trie search vs greedy leaf splitting",
)
register(
    "ablation-pruning",
    run_pruning,
    "code saved by unreachable-copy removal after replication",
)


def _removed_size(original_function, removed_labels: List[str]) -> int:
    """Size of removed copies, measured via their originals."""
    total = 0
    for label in removed_labels:
        base = label.split("@", 1)[0]
        if base in original_function.blocks:
            total += original_function.block(base).size()
    return total
