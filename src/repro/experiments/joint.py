"""Joint-machine experiment (Section 6 "Further Work").

For every loop with at least two member branches, compares

* **independent** machines — each member gets its own best intra-loop /
  loop-exit machine with up to 3 states; their loop's replication cost
  multiplies (the paper's code-size problem); against
* **joint** machines — one shared machine whose state budget equals the
  product of the independent machines' sizes (capped at 10), realising
  all members within a single multiplier.

Reported per benchmark: misprediction over loop-member branches and the
total analytic size factor of the improved loops.
"""

from __future__ import annotations

from typing import List, Optional

from ..cfg import BranchClass, classify_branches
from ..replication import collect_joint_tables, loop_membership
from ..statemachines import (
    best_intra_machine,
    best_joint_machine,
    best_loop_exit_machine,
)
from ..workloads import BENCHMARK_NAMES, get_artifacts, get_profile, get_program
from .registry import register
from .report import Table, pct


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    member_budget: int = 3,
    joint_cap: int = 10,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Joint machines vs independent machines (loops with >= 2 branches)",
        list(names),
    )
    indep_rate, joint_rate = [], []
    indep_size, joint_size = [], []
    for name in names:
        program = get_program(name)
        trace = get_artifacts(name, scale=scale).trace
        profile = get_profile(name, scale)
        infos = classify_branches(program)
        membership = loop_membership(program)
        joint_tables = collect_joint_tables(trace, membership)

        total = 0
        indep_correct = joint_correct = 0
        indep_factor_sum = joint_factor_sum = 0.0
        loops = 0
        for key, tables in joint_tables.items():
            members = [site for site in tables if site in profile.totals]
            if len(members) < 2:
                continue
            loops += 1
            # Independent: best machine per member from local history.
            product = 1
            correct_here = 0
            for site in members:
                info = infos.get(site)
                local = profile.local[site]
                if info is not None and info.kind is BranchClass.INTRA_LOOP:
                    scored = best_intra_machine(local, member_budget)
                else:
                    exit_on_taken = bool(info and info.taken_exits)
                    scored = best_loop_exit_machine(
                        local, member_budget, exit_on_taken
                    )
                correct_here += scored.correct
                if scored.machine.n_states > 1:
                    product *= scored.machine.n_states
            indep_correct += correct_here
            indep_factor_sum += product

            budget = min(max(product, 2), joint_cap)
            joint = best_joint_machine(tables, budget)
            joint_correct += joint.correct
            joint_factor_sum += joint.machine.n_states

            total += sum(tables[site].executions() for site in members)

        if total == 0:
            indep_rate.append(0.0)
            joint_rate.append(0.0)
            indep_size.append(1.0)
            joint_size.append(1.0)
            continue
        indep_rate.append((total - indep_correct) / total)
        joint_rate.append((total - joint_correct) / total)
        indep_size.append(indep_factor_sum / max(loops, 1))
        joint_size.append(joint_factor_sum / max(loops, 1))

    table.add_row("independent mispredict", indep_rate, [pct(v) for v in indep_rate])
    table.add_row("joint mispredict", joint_rate, [pct(v) for v in joint_rate])
    table.add_row(
        "independent loop multiplier",
        indep_size,
        [f"{v:.1f}x" for v in indep_size],
    )
    table.add_row(
        "joint loop multiplier", joint_size, [f"{v:.1f}x" for v in joint_size]
    )
    return table


register("joint", run, "joint vs independent machines per loop")
