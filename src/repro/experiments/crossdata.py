"""Cross-dataset sensitivity (the paper's "Further Work", after
Fisher & Freudenberger [FF92]).

Semi-static prediction is trained on one run and deployed on another.
This experiment trains on the reference seed and evaluates on a run
with a different seed, for both plain profile prediction and the
loop–correlation strategy.  The paper conjectures that "code replicated
programs are more sensitive to different data sets than the original
program" — the ratio rows let us check that.

The table-driven strategies are scored by the shared single-pass
driver: one scan of the same-data trace and one of the cross-data trace
per benchmark cover both strategies (profile in closed form).
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import LoopCorrelationPredictor, ProfilePredictor
from ..replication import ReplicationPlanner, apply_replication, measure_annotated
from ..workloads import BENCHMARK_NAMES, get_profile, get_program, get_trace, get_workload
from .crosseval import DEFAULT_SEED_OFFSET
from .registry import evaluate_rows, register
from .report import Table, pct

__all__ = ["DEFAULT_SEED_OFFSET", "run"]


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    seed_offset: int = DEFAULT_SEED_OFFSET,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Cross-dataset experiment: trained on run A, evaluated on run B "
        "(misprediction % / ratio to same-data)",
        list(names),
    )

    def predictors_for(name: str):
        train_profile = get_profile(name, scale)
        return [
            ("profile", ProfilePredictor(train_profile)),
            ("loop-corr", LoopCorrelationPredictor(train_profile)),
        ]

    same_rows = evaluate_rows(
        names, predictors_for, lambda name: get_trace(name, scale)
    )
    cross_rows = evaluate_rows(
        names, predictors_for, lambda name: get_trace(name, scale, seed_offset)
    )

    rows = {
        "profile (same data)": same_rows["profile"],
        "profile (cross data)": cross_rows["profile"],
        "loop-corr (same data)": same_rows["loop-corr"],
        "loop-corr (cross data)": cross_rows["loop-corr"],
        "replicated (same data)": [],
        "replicated (cross data)": [],
    }
    for name in names:
        # End to end: the REPLICATED program, trained on run A, measured
        # on run A's and run B's inputs — the paper's actual conjecture.
        train_profile = get_profile(name, scale)
        program = get_program(name)
        workload = get_workload(name)
        args_same, input_values = workload.seeded_args(scale)
        args_other, _ = workload.seeded_args(scale, seed_offset)
        planner = ReplicationPlanner(program, train_profile, max_states=4)
        selections = [
            (plan.site, plan.best_option(4).scored.machine)
            for plan in planner.improvable_plans()
        ]
        replicated = apply_replication(program, selections, train_profile).program
        rows["replicated (same data)"].append(
            measure_annotated(replicated, args_same, input_values).misprediction_rate
        )
        rows["replicated (cross data)"].append(
            measure_annotated(replicated, args_other, input_values).misprediction_rate
        )
    for label, values in rows.items():
        table.add_row(label, values, [pct(v) for v in values])
    # Degradation ratios (cross / same); > 1 means sensitivity to data.
    for strategy in ("profile", "loop-corr", "replicated"):
        same = table.data[f"{strategy} (same data)"]
        cross = table.data[f"{strategy} (cross data)"]
        ratios = [c / s if s else float("inf") for s, c in zip(same, cross)]
        table.add_row(
            f"{strategy} degradation",
            ratios,
            [f"{r:.2f}x" if r != float("inf") else "inf" for r in ratios],
        )
    return table


register(
    "crossdata",
    run,
    "train on run A, evaluate on run B: dataset-shift sensitivity",
)
