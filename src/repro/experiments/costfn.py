"""Cost-function sweep: where does more replication stop paying?

Realises increasing prefixes of a benchmark's trade-off curve and
measures, on the real transformed program, estimated cycles under the
combined model (instructions + misprediction penalty + i-cache miss
penalty).  With a small instruction cache, aggressive replication
eventually loses more to misses than it gains from prediction — the
paper's closing argument for a cost function.
"""

from __future__ import annotations

from typing import List, Optional

from ..icache import CacheConfig, CostModel, evaluate_cost
from ..replication import ReplicationPlanner, apply_replication, tradeoff_curve
from ..workloads import get_profile, get_program, get_workload
from .registry import register
from .report import Table


def run(
    name: str = "ghostview",
    scale: int = 1,
    names: Optional[List[str]] = None,  # accepted for CLI uniformity
    max_states: int = 6,
    cache: CacheConfig = CacheConfig(lines=16, line_words=4),
    model: CostModel = CostModel(),
) -> Table:
    if names:
        name = names[0]
    program = get_program(name)
    workload = get_workload(name)
    args, input_values = workload.default_args(scale)
    profile = get_profile(name, scale)
    planner = ReplicationPlanner(program, profile, max_states)
    points = tradeoff_curve(planner)

    table = Table(
        f"Cost function sweep on {name} (cache {cache.lines}x"
        f"{cache.line_words} words, miss {model.miss_penalty} cyc, "
        f"mispredict {model.misprediction_penalty} cyc)",
        ["size factor", "mispredict %", "icache miss %", "est. cycles", "CPI"],
    )
    chosen = {}
    for index, point in enumerate(points):
        if point.step is not None:
            site, n_states = point.step
            plan = planner.plans[site]
            option = next(o for o in plan.options if o.n_states == n_states)
            chosen[site] = option.scored.machine
        report = apply_replication(program, list(chosen.items()), profile)
        cost = evaluate_cost(
            report.program, args, input_values, cache, model
        )
        table.add_row(
            f"step {index}",
            [
                report.size_factor,
                cost.misprediction_rate,
                cost.cache.miss_rate,
                cost.cycles,
                cost.cycles_per_instruction,
            ],
            [
                f"{report.size_factor:.3f}",
                f"{100 * cost.misprediction_rate:.2f}",
                f"{100 * cost.cache.miss_rate:.2f}",
                str(cost.cycles),
                f"{cost.cycles_per_instruction:.3f}",
            ],
        )
    return table


def _run_experiment(
    scale: int = 1, names: Optional[List[str]] = None, **kwargs
) -> Table:
    """Registry adapter: ``run`` takes a single benchmark name first."""
    return run(scale=scale, names=names, **kwargs)


register(
    "costfn",
    _run_experiment,
    "cycle-cost sweep along one benchmark's trade-off curve",
)
