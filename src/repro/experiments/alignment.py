"""Branch alignment experiment (the paper's target application).

"In general, an optimization technique like branch aligning ... is not
applied to a branch whose prediction accuracy is low.  If code
replication improves the accuracy of the prediction for this branch,
such an optimization can be applied."

For each benchmark — same input, so the variants do the same work — we
measure two absolute dynamic quantities:

* **taken transfers**: control transfers that do not fall through to
  the next block in layout order (what alignment minimises);
* **instructions executed** (what loop rotation minimises);

under the original layout; loop rotation alone (Mueller/Whalley jump
avoidance); rotation + profile-guided chain layout with branch
alignment; and the same after code replication, whose copies carry
accurate predictions for alignment to exploit.
"""

from __future__ import annotations

from typing import List, Optional

from ..layout import (
    layout_program,
    profile_edges,
    rotate_program,
    taken_transfer_stats,
)
from ..replication import ReplicationPlanner, apply_replication
from ..workloads import BENCHMARK_NAMES, get_profile, get_program, get_workload
from .registry import register
from .report import Table


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    max_states: int = 4,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Branch alignment: dynamic taken transfers / executed "
        "instructions (thousands; same input per column)",
        list(names),
    )
    rows = {
        "original layout": [],
        "rotated": [],
        "rotated + aligned": [],
        "replicated + aligned": [],
    }
    for name in names:
        program = get_program(name)
        workload = get_workload(name)
        args, input_values = workload.default_args(scale)
        profile = get_profile(name, scale)

        rows["original layout"].append(
            taken_transfer_stats(program.copy(), args, input_values)
        )

        # Loop rotation alone (Mueller/Whalley jump avoidance).
        rotated = program.copy()
        rotate_program(rotated)
        rows["rotated"].append(
            taken_transfer_stats(rotated, args, input_values)
        )

        # Profile annotations + rotation + alignment + chain layout.
        baseline = apply_replication(program, [], profile).program
        rotate_program(baseline)
        layout_program(baseline, profile_edges(baseline, args, input_values))
        rows["rotated + aligned"].append(
            taken_transfer_stats(baseline, args, input_values)
        )

        # Replicate first, then rotate + align the result.
        planner = ReplicationPlanner(program, profile, max_states)
        selections = [
            (plan.site, plan.best_option(max_states).scored.machine)
            for plan in planner.improvable_plans()
        ]
        replicated = apply_replication(program, selections, profile).program
        rotate_program(replicated)
        layout_program(replicated, profile_edges(replicated, args, input_values))
        rows["replicated + aligned"].append(
            taken_transfer_stats(replicated, args, input_values)
        )

    for label, stats_row in rows.items():
        table.add_row(
            label,
            [(s.taken, s.instructions) for s in stats_row],
            [
                f"{s.taken / 1000:.1f}/{s.instructions / 1000:.0f}"
                for s in stats_row
            ],
        )
    return table


register("alignment", run, "branch alignment and loop rotation after replication")
