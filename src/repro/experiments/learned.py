"""Learned-predictor zoo: trained models vs. the profile-driven suite.

Every model trains on the first half of the reference trace and is
judged — frozen — on the second half, against the semi-static baselines
deployed from a profile of the *same* training prefix.  That makes the
comparison fair: nobody sees the holdout before scoring, and the
holdout is evaluated as a fresh trace (histories restart at the split
boundary) for learned and table strategies alike.
"""

from __future__ import annotations

from typing import List, Optional

from ..learn import DEFAULT_SPLIT, LearnedPredictor, default_learned_configs, fit, holdout_trace, training_cut
from ..predictors import LoopCorrelationPredictor, ProfilePredictor, two_level_4k
from ..profiling import ProfileData
from ..workloads import BENCHMARK_NAMES, get_trace
from .registry import evaluate_rows, register
from .report import Table, pct


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    split: float = DEFAULT_SPLIT,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Learned predictors vs. profile-driven baselines "
        f"(misprediction % on the held-out {1 - split:.0%} suffix)",
        list(names),
    )

    def predictors_for(name: str):
        trace = get_trace(name, scale)
        cut = training_cut(len(trace), split)
        train_profile = ProfileData.from_trace(trace.truncated(cut))
        columns = trace.columns()
        predictors = [
            ("profile", ProfilePredictor(train_profile)),
            ("loop-corr", LoopCorrelationPredictor(train_profile)),
            ("two-level-4k", two_level_4k()),
        ]
        for config in default_learned_configs():
            model = fit(columns, config, split)
            predictors.append((config.name, LearnedPredictor(model)))
        return predictors

    rows = evaluate_rows(
        names, predictors_for, lambda name: holdout_trace(get_trace(name, scale), split)
    )
    for label, values in rows.items():
        table.add_row(label, values, [pct(v) for v in values])
    return table


register(
    "learned-zoo",
    run,
    "trained perceptron/logistic family vs. profile baselines on held-out suffixes",
)
