"""Cross-workload transfer matrix: can learned profiles replace
per-program profiling?

One model per workload, trained on that workload's *entire* reference
trace (``split=1.0`` — the holdout here is a different program, not a
suffix), then every model is evaluated on every workload's perturbed-
seed run (the crossdata ``DEFAULT_SEED_OFFSET`` dataset, so even the
diagonal is train-on-A / deploy-on-A-with-different-data).

Matrix semantics: the diagonal reuses the trained per-site weights —
the same program exposes the same sites across runs.  Off-diagonal
cells see entirely foreign sites, so every prediction routes through
the model's shared global-history sub-model: that row measures pure
transfer.  Profile and loop-corr baselines (each self-trained on the
evaluation workload's reference run) anchor what per-program profiling
buys.  One single-pass scan per evaluation workload covers all rows.
"""

from __future__ import annotations

from typing import List, Optional

from ..learn import LearnedConfig, LearnedPredictor, fit
from ..predictors import LoopCorrelationPredictor, ProfilePredictor
from ..workloads import BENCHMARK_NAMES, get_profile, get_trace
from .crosseval import DEFAULT_SEED_OFFSET
from .registry import evaluate_rows, register
from .report import Table, pct

#: The matrix model: global scope transfers by construction (no
#: per-site state is consulted on foreign sites).
TRANSFER_CONFIG = LearnedConfig(kind="perceptron", scope="global", history_bits=8)


def run(
    scale: int = 1,
    names: Optional[List[str]] = None,
    seed_offset: int = DEFAULT_SEED_OFFSET,
) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Transfer matrix: model trained on row's workload, evaluated on "
        "column's perturbed-seed run (misprediction %)",
        list(names),
    )

    models = {
        name: LearnedPredictor(
            fit(get_trace(name, scale).columns(), TRANSFER_CONFIG, split=1.0),
            name=f"train:{name}",
        )
        for name in names
    }

    def predictors_for(eval_name: str):
        eval_profile = get_profile(eval_name, scale)
        return [(f"train:{train_name}", models[train_name]) for train_name in names] + [
            ("profile (self-trained)", ProfilePredictor(eval_profile)),
            ("loop-corr (self-trained)", LoopCorrelationPredictor(eval_profile)),
        ]

    rows = evaluate_rows(
        names, predictors_for, lambda name: get_trace(name, scale, seed_offset)
    )
    for label, values in rows.items():
        table.add_row(label, values, [pct(v) for v in values])
    return table


register(
    "transfer",
    run,
    "workload×workload matrix: learned model trained on A, deployed on B",
)
