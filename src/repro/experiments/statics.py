"""Static prediction baselines (Section 2.1).

Smith's simple heuristics and the Ball/Larus heuristic suite, evaluated
on the same traces as Table 1.  The paper's framing: Ball/Larus reach
about twice the misprediction rate of profile-based prediction; this
table lets us check that ordering on our workloads.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import (
    AlwaysTaken,
    ProfilePredictor,
    backward_taken,
    ball_larus,
    evaluate,
    opcode_heuristic,
)
from ..workloads import BENCHMARK_NAMES, get_profile, get_program, get_trace
from .report import Table, pct


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Static branch prediction (misprediction %, vs profile)",
        list(names),
    )
    rows = {
        "always taken": lambda program: AlwaysTaken(),
        "backward taken": backward_taken,
        "opcode": opcode_heuristic,
        "ball-larus": ball_larus,
    }
    results = {}
    for label, make in rows.items():
        values = []
        for name in names:
            program = get_program(name)
            trace = get_trace(name, scale)
            values.append(evaluate(make(program), trace).misprediction_rate)
        results[label] = values
        table.add_row(label, values, [pct(v) for v in values])
    profile_values = []
    for name in names:
        trace = get_trace(name, scale)
        profile = get_profile(name, scale)
        profile_values.append(
            evaluate(ProfilePredictor(profile), trace).misprediction_rate
        )
    table.add_row("profile", profile_values, [pct(v) for v in profile_values])
    ratios = [
        b / p if p else float("inf")
        for b, p in zip(results["ball-larus"], profile_values)
    ]
    table.add_row(
        "ball-larus / profile",
        ratios,
        [f"{r:.2f}x" if r != float("inf") else "inf" for r in ratios],
    )
    return table
