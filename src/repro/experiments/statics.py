"""Static prediction baselines (Section 2.1).

Smith's simple heuristics and the Ball/Larus heuristic suite, evaluated
on the same traces as Table 1.  The paper's framing: Ball/Larus reach
about twice the misprediction rate of profile-based prediction; this
table lets us check that ordering on our workloads.

Every strategy here is order-independent, so the whole table is scored
in closed form from per-site taken counts — no trace replay at all.
"""

from __future__ import annotations

from typing import List, Optional

from ..predictors import (
    AlwaysTaken,
    ProfilePredictor,
    backward_taken,
    ball_larus,
    opcode_heuristic,
)
from ..workloads import BENCHMARK_NAMES, get_profile, get_program, get_trace
from .registry import evaluate_rows, register
from .report import Table, pct

ROWS = ("always taken", "backward taken", "opcode", "ball-larus", "profile")


def run(scale: int = 1, names: Optional[List[str]] = None) -> Table:
    names = names or BENCHMARK_NAMES
    table = Table(
        "Static branch prediction (misprediction %, vs profile)",
        list(names),
    )

    def predictors_for(name: str):
        program = get_program(name)
        return [
            ("always taken", AlwaysTaken()),
            ("backward taken", backward_taken(program)),
            ("opcode", opcode_heuristic(program)),
            ("ball-larus", ball_larus(program)),
            ("profile", ProfilePredictor(get_profile(name, scale))),
        ]

    rows = evaluate_rows(
        names, predictors_for, lambda name: get_trace(name, scale)
    )
    for label in ROWS:
        table.add_row(label, rows[label], [pct(v) for v in rows[label]])
    ratios = [
        b / p if p else float("inf")
        for b, p in zip(rows["ball-larus"], rows["profile"])
    ]
    table.add_row(
        "ball-larus / profile",
        ratios,
        [f"{r:.2f}x" if r != float("inf") else "inf" for r in ratios],
    )
    return table


register(
    "statics",
    run,
    "Smith and Ball/Larus static heuristics vs profile prediction",
)
