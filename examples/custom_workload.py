"""Build your own workload with the builder API and run the pipeline.

Constructs a small state-machine-driven protocol parser (messages have
a header byte, a length, then payload bytes), whose "is this a header?"
branch follows a strict pattern that plain profiling cannot exploit —
then lets the planner find and realise the structure.

Run with:  python examples/custom_workload.py
"""

from repro.ir import ProgramBuilder, validate_program
from repro.interp import run_program
from repro.profiling import ProfileData, collect_path_tables, trace_program
from repro.replication import (
    ReplicationPlanner,
    apply_replication,
    measure_annotated,
)


def build_parser_program():
    """A message parser: header, fixed length field, 3 payload words."""
    pb = ProgramBuilder()
    fb = pb.function("main", ["messages", "seed"])
    fb.move("seed", "state")
    fb.move(0, "m")
    fb.move(0, "checksum")

    fb.label("msg_head")
    fb.branch("lt", "m", "messages", "parse_header", "finish")

    # Pseudo-random payload generator (inline LCG).
    fb.label("parse_header")
    s1 = fb.mul("state", 1103515245)
    s2 = fb.add(s1, 12345)
    fb.binop("and", s2, 0x7FFFFFFF, "state")
    header = fb.shr("state", 16)
    tag = fb.mod(header, 256)
    fb.add("checksum", tag, "checksum")
    fb.move(0, "p")

    # Exactly three payload words follow every header: the "end of
    # payload?" branch is perfectly periodic with period 4.
    fb.label("payload_head")
    fb.branch("lt", "p", 3, "payload_word", "msg_next")
    fb.label("payload_word")
    w1 = fb.mul("state", 1103515245)
    w2 = fb.add(w1, 12345)
    fb.binop("and", w2, 0x7FFFFFFF, "state")
    word = fb.shr("state", 16)
    masked = fb.binop("and", word, 0xFF)
    fb.add("checksum", masked, "checksum")
    fb.add("p", 1, "p")
    fb.jump("payload_head")

    fb.label("msg_next")
    fb.add("m", 1, "m")
    fb.jump("msg_head")

    fb.label("finish")
    fb.output("checksum")
    fb.ret("checksum")
    return pb.build()


def main() -> None:
    program = build_parser_program()
    validate_program(program)
    args = [500, 42]

    trace, result = trace_program(program, args)
    print(f"parsed 500 messages, checksum={result.value}, "
          f"{len(trace)} branch events")

    profile = ProfileData.from_trace(trace)
    profile.attach_path_tables(collect_path_tables(program, args))

    planner = ReplicationPlanner(program, profile, max_states=6)
    print("\nimprovable branches:")
    for plan in planner.improvable_plans():
        option = plan.best_option(6)
        print(f"  {plan.site}: {plan.info.kind.value}, best machine "
              f"{option.n_states} states ({option.family}), "
              f"{plan.profile_correct} -> {option.correct} correct")

    selections = [
        (plan.site, plan.best_option(6).scored.machine)
        for plan in planner.improvable_plans()
    ]
    report = apply_replication(program, selections, profile)
    assert run_program(report.program, args).value == result.value

    baseline = measure_annotated(
        apply_replication(program, [], profile).program, args
    )
    improved = measure_annotated(report.program, args)
    print(f"\nmisprediction: {baseline.misprediction_rate:.2%} -> "
          f"{improved.misprediction_rate:.2%} "
          f"at {report.size_factor:.2f}x code size")


if __name__ == "__main__":
    main()
