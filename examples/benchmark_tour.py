"""Tour of one paper benchmark: strategies, planning, replication.

Takes the `ghostview` stand-in (a PostScript-like interpreter whose
paint branches correlate with earlier mode-setting commands), compares
every prediction strategy on it, plans code replication, applies it,
and prints the misprediction-vs-code-size trade-off curve — a
miniature of the paper's Tables 1/5 and Figure 9 for one program.

Run with:  python examples/benchmark_tour.py [workload-name]
"""

import sys

from repro.predictors import (
    CorrelationPredictor,
    LastDirection,
    LoopCorrelationPredictor,
    LoopPredictor,
    ProfilePredictor,
    SaturatingCounter,
    ball_larus,
    evaluate,
    two_level_4k,
)
from repro.interp import run_program
from repro.replication import (
    ReplicationPlanner,
    apply_replication,
    measure_annotated,
    tradeoff_curve,
)
from repro.workloads import get_profile, get_program, get_trace, get_workload


def main(name: str = "ghostview") -> None:
    workload = get_workload(name)
    program = get_program(name)
    args, input_values = workload.default_args(1)
    print(f"benchmark: {name} — {workload.description}")
    print(f"program size: {program.size()} instructions, "
          f"{len(program.branch_sites())} static branches")

    trace = get_trace(name, 1)
    profile = get_profile(name, 1)
    print(f"trace: {len(trace)} branch events\n")

    print("=== strategy comparison (Table 1 for this benchmark) ===")
    strategies = [
        ball_larus(program),
        LastDirection(),
        SaturatingCounter(2),
        two_level_4k(),
        ProfilePredictor(profile),
        CorrelationPredictor(profile, 1),
        LoopPredictor(profile, 9),
        LoopCorrelationPredictor(profile),
    ]
    for predictor in strategies:
        result = evaluate(predictor, trace)
        print(f"  {predictor.name:25s} {result.misprediction_rate:7.2%}")

    print("\n=== replication plan (4-state budget) ===")
    planner = ReplicationPlanner(program, profile, max_states=4)
    for plan in planner.improvable_plans():
        option = plan.best_option(4)
        gain = option.correct - plan.profile_correct
        print(f"  {str(plan.site):30s} {plan.info.kind.value:10s} "
              f"{option.family:10s} {option.n_states} states  "
              f"+{gain} correct  +{option.extra_size} instrs")

    selections = [
        (plan.site, plan.best_option(4).scored.machine)
        for plan in planner.improvable_plans()
    ]
    report = apply_replication(program, selections, profile)
    reference = run_program(program.copy(), args, input_values)
    transformed = run_program(report.program, args, input_values)
    assert reference.value == transformed.value

    baseline = measure_annotated(
        apply_replication(program, [], profile).program, args, input_values
    )
    improved = measure_annotated(report.program, args, input_values)
    print(f"\nprofile prediction : {baseline.misprediction_rate:7.2%}")
    print(f"after replication  : {improved.misprediction_rate:7.2%} "
          f"(code size {report.size_factor:.2f}x)")

    print("\n=== trade-off curve (the benchmark's figure) ===")
    print(f"  {'size':>8s}  {'misprediction':>13s}  upgrade")
    for point in tradeoff_curve(planner, max_size_factor=50.0):
        step = "-" if point.step is None else f"{point.step[0]} -> {point.step[1]} states"
        print(f"  {point.size_factor:8.3f}  {point.misprediction_rate:13.2%}  {step}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ghostview")
