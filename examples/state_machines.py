"""Regenerate the paper's state-machine figures (Figures 2-5).

Builds representative intra-loop, loop-exit and correlated machines
from synthetic pattern tables and renders them as ASCII transition
tables and Graphviz DOT (pipe the DOT into `dot -Tpng` to draw them).

Run with:  python examples/state_machines.py
"""

from repro.profiling import PatternTable
from repro.statemachines import (
    best_correlated_machine,
    best_intra_machine,
    comb_machine,
    machine_to_ascii,
    machine_to_dot,
    parity_machine,
    correlated_to_dot,
)


def table_from_outcomes(outcomes, bits: int = 9) -> PatternTable:
    table = PatternTable(bits)
    history = 0
    mask = (1 << bits) - 1
    for taken in outcomes:
        table.add(history, 1 if taken else 0)
        history = ((history << 1) | (1 if taken else 0)) & mask
    return table


def show(title: str, machine, dot: str) -> None:
    print(f"\n=== {title} ===")
    print(machine_to_ascii(machine) if hasattr(machine, "states") else machine.describe())
    print("\n-- DOT --")
    print(dot)


def main() -> None:
    # Figure 2-style: an intra-loop branch with period-3 behaviour
    # (T T N repeating) compacted into a small machine.
    outcomes = [(i % 3) != 2 for i in range(900)]
    intra = best_intra_machine(table_from_outcomes(outcomes), max_states=5)
    print(f"intra-loop machine: {intra.misprediction_rate:.2%} misprediction, "
          f"{intra.machine.n_states} states")
    show("intra-loop machine (Figure 2/3 analogue)",
         intra.machine, machine_to_dot(intra.machine, "intra"))

    # Figure 5: a loop-exit chain for a loop running exactly 4 times.
    exits = []
    for _ in range(300):
        exits.extend([True, True, True, False])
    chain = comb_machine(table_from_outcomes(exits), 5, exit_on_taken=False)
    print(f"\nloop-exit chain: {chain.misprediction_rate:.2%} misprediction")
    show("loop-exit chain (Figure 5)", chain.machine,
         machine_to_dot(chain.machine, "loop_exit"))

    # Figure 5's even/odd variant: trips drawn from {4, 6, 8} — exits
    # always after an odd number of stays.
    import random

    rng = random.Random(5)
    exits = []
    for _ in range(300):
        trips = rng.choice([4, 6, 8])
        exits.extend([True] * (trips - 1) + [False])
    parity = parity_machine(table_from_outcomes(exits), 4, exit_on_taken=False)
    print(f"\nparity machine: {parity.misprediction_rate:.2%} misprediction "
          "(a plain chain of the same size does much worse)")
    show("loop-exit parity machine (Figure 5 variant)", parity.machine,
         machine_to_dot(parity.machine, "parity"))

    # Figure 4 analogue: a correlated branch copying the previous
    # global branch outcome.
    table = PatternTable(8)
    for _ in range(2):
        for context in range(256):
            table.add(context, context & 1)
    correlated = best_correlated_machine(table, max_states=3)
    print(f"\ncorrelated machine: {correlated.misprediction_rate:.2%} misprediction")
    print(correlated.machine.describe())
    print("\n-- DOT --")
    print(correlated_to_dot(correlated.machine, "correlated"))


if __name__ == "__main__":
    main()
