"""Quickstart: profile a program, replicate a branch, watch the
misprediction rate drop.

This walks the paper's Figure 1 end to end:

1. build a loop whose branch alternates taken / not-taken — the worst
   case for profile prediction (50% misprediction);
2. trace a training run and build pattern tables;
3. search for the best 2-state prediction machine;
4. replicate the loop so the machine state lives in the program counter;
5. re-run and measure: the branch is now predicted almost perfectly.

Run with:  python examples/quickstart.py
"""

from repro import (
    BranchSite,
    ProfileData,
    apply_replication,
    best_intra_machine,
    format_program,
    measure_annotated,
    parse_program,
    run_program,
    trace_program,
)

SOURCE = """
func main(n) {
entry:
  i = move 0
  flip = move 0
  acc = move 0
loop:
  br lt i, n ? body : done
body:
  flip = sub 1, flip
  br eq flip, 1 ? odd : even
odd:
  acc = add acc, 1
  jump cont
even:
  acc = add acc, 2
  jump cont
cont:
  i = add i, 1
  jump loop
done:
  out acc
  ret acc
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("=== original program ===")
    print(format_program(program))

    # 1. Profile a training run.
    trace, result = trace_program(program, args=[1000])
    profile = ProfileData.from_trace(trace)
    print(f"training run: result={result.value}, {len(trace)} branch events")

    # 2. The alternating branch under plain profile prediction.
    site = BranchSite("main", "body")
    not_taken, taken = profile.totals[site]
    print(f"branch {site}: {taken} taken / {not_taken} not taken "
          "- profile prediction is a coin flip")

    # 3. Search for the best 2-state machine from its history table.
    scored = best_intra_machine(profile.local[site], max_states=2)
    print("\n=== best 2-state machine ===")
    print(scored.machine.describe())
    print(f"predicted misprediction rate: {scored.misprediction_rate:.2%}")

    # 4. Replicate: one loop copy per machine state.
    report = apply_replication(program, [(site, scored.machine)], profile)
    print("\n=== replicated program ===")
    print(format_program(report.program))
    print(f"code size: {report.size_before} -> {report.size_after} "
          f"instructions ({report.size_factor:.2f}x)")

    # 5. Verify semantics and measure the planted predictions.
    original = run_program(program, [1000])
    transformed = run_program(report.program, [1000])
    assert original.value == transformed.value, "replication changed behaviour!"

    baseline = measure_annotated(
        apply_replication(program, [], profile).program, [1000]
    )
    improved = measure_annotated(report.program, [1000])
    print(f"\nmisprediction, profile prediction : {baseline.misprediction_rate:7.2%}")
    print(f"misprediction, after replication   : {improved.misprediction_rate:7.2%}")


if __name__ == "__main__":
    main()
