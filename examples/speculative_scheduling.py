"""Speculative superblock scheduling driven by branch predictions.

The paper's point of doing prediction at *compile time* is that code
motion can use it.  This example forms superblocks along predicted
paths, schedules them on a model 2-wide machine, and shows how
replication-sharpened predictions change the picture on a benchmark.

Run with:  python examples/speculative_scheduling.py [workload-name]
"""

import sys

from repro.cfg import LivenessInfo
from repro.interp import Machine
from repro.replication import ReplicationPlanner, apply_replication
from repro.scheduling import (
    estimate_program_cycles,
    form_superblocks,
    schedule_blocks_individually,
    schedule_superblock,
)
from repro.workloads import get_profile, get_program, get_workload


def block_and_edge_counts(program, args, input_values):
    machine = Machine(program, input_values, count_edges=True)
    machine.run(*args)
    blocks = {}
    for (function, _source, target), count in machine.edge_counts.items():
        key = (function, target)
        blocks[key] = blocks.get(key, 0) + count
    for function in program:
        blocks.setdefault((function.name, function.entry), 1)
    return blocks, machine.edge_counts


def main(name: str = "c-compiler") -> None:
    program = get_program(name)
    workload = get_workload(name)
    args, input_values = workload.default_args(1)
    profile = get_profile(name, 1)

    annotated = apply_replication(program, [], profile).program
    print(f"benchmark: {name}\n")

    # Show the hottest trace and its region schedule.
    function = annotated.main_function()
    traces = form_superblocks(function)
    trace = max(traces, key=lambda t: len(t.blocks))
    print(f"longest predicted trace: {' -> '.join(trace.blocks)}")
    liveness = LivenessInfo(function)
    region = schedule_superblock(function, trace, liveness)
    blockwise = schedule_blocks_individually(function, trace)
    print(f"per-block schedule : {blockwise} cycles")
    print(f"region schedule    : {region.cycles} cycles "
          f"({blockwise / region.cycles:.2f}x)\n")

    # Whole-program estimates, before and after replication.
    counts, edges = block_and_edge_counts(annotated, args, input_values)
    baseline, with_profile = estimate_program_cycles(annotated, counts, edges)
    print(f"whole program, profile predictions:")
    print(f"  per-block  : {baseline} cycles")
    print(f"  superblock : {with_profile} cycles "
          f"({baseline / with_profile:.3f}x)")

    planner = ReplicationPlanner(program, profile, max_states=4)
    selections = [
        (plan.site, plan.best_option(4).scored.machine)
        for plan in planner.improvable_plans()
    ]
    replicated = apply_replication(program, selections, profile).program
    rep_counts, rep_edges = block_and_edge_counts(replicated, args, input_values)
    rep_base, rep_super = estimate_program_cycles(replicated, rep_counts, rep_edges)
    print(f"\nwhole program, after replication ({len(selections)} branches):")
    print(f"  per-block  : {rep_base} cycles")
    print(f"  superblock : {rep_super} cycles ({rep_base / rep_super:.3f}x)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "c-compiler")
