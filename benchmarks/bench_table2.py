"""Regenerates Table 2 (pattern-table fill rates) and times it.

Run:  pytest benchmarks/bench_table2.py --benchmark-only -s
"""

from repro.experiments import table2


def test_table2(benchmark, bench_scale):
    result = benchmark.pedantic(
        table2.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    shallow = result.data["1 bit history"]
    deep = result.data["9 bit history"]
    benchmark.extra_info["mean_9bit_fill"] = sum(deep) / len(deep)
    # The paper's point: deep tables are sparse.
    assert all(d <= s for s, d in zip(shallow, deep))
