"""Benchmarks for the parameter sweeps (two-level zoo, training length).

Run:  pytest benchmarks/bench_sweeps.py --benchmark-only -s
"""

from repro.experiments import tracelen, twolevel_zoo


def test_twolevel_zoo(benchmark, bench_scale):
    result = benchmark.pedantic(
        twolevel_zoo.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    rates = {
        row: sum(result.data[row][:-1]) / (len(result.columns) - 1)
        for row in result.rows
    }
    best = min(rates, key=rates.get)
    benchmark.extra_info["best_variant"] = best
    benchmark.extra_info["best_mean_rate"] = rates[best]


def test_training_length(benchmark, bench_scale):
    result = benchmark.pedantic(
        tracelen.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    first = result.data[result.rows[0]]
    last = result.data[result.rows[-1]]
    benchmark.extra_info["mean_1pct"] = sum(first) / len(first)
    benchmark.extra_info["mean_full"] = sum(last) / len(last)
    assert sum(last) <= sum(first) + 0.1
