"""Benchmarks of the downstream applications: alignment, cost function,
joint machines.

Run:  pytest benchmarks/bench_applications.py --benchmark-only -s
"""

from repro.experiments import alignment, costfn, joint


def test_alignment(benchmark, bench_scale):
    result = benchmark.pedantic(
        alignment.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    original = sum(taken for taken, _ in result.data["original layout"])
    final = sum(taken for taken, _ in result.data["replicated + aligned"])
    benchmark.extra_info["total_original_taken"] = original
    benchmark.extra_info["total_final_taken"] = final
    assert final <= original


def test_cost_function(benchmark, bench_scale):
    result = benchmark.pedantic(
        costfn.run,
        kwargs={"name": "ghostview", "scale": bench_scale, "max_states": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    cycles = [result.data[row][3] for row in result.rows]
    benchmark.extra_info["best_step_cycles"] = min(cycles)
    benchmark.extra_info["final_step_cycles"] = cycles[-1]


def test_joint_machines(benchmark, bench_scale):
    result = benchmark.pedantic(
        joint.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    indep = result.data["independent mispredict"]
    shared = result.data["joint mispredict"]
    benchmark.extra_info["mean_independent"] = sum(indep) / len(indep)
    benchmark.extra_info["mean_joint"] = sum(shared) / len(shared)
