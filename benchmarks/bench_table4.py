"""Regenerates Table 4 (correlated-branch path machines).

Run:  pytest benchmarks/bench_table4.py --benchmark-only -s
"""

from repro.experiments import table4


def test_table4(benchmark, bench_scale):
    result = benchmark.pedantic(
        table4.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    profile = result.data["profile"]
    best = result.data["8 states"]
    benchmark.extra_info["mean_profile"] = sum(profile) / len(profile)
    benchmark.extra_info["mean_8_states"] = sum(best) / len(best)
    # "the correlation information can be compacted with very small loss"
    assert all(b <= p + 1e-9 for p, b in zip(profile, best))
