"""Times the run-artifact layer: cold single-pass collection versus a
warm disk-cache load.

Run:  pytest benchmarks/bench_artifacts.py --benchmark-only -s

The cold number is the one instrumented interpreter pass that now
serves trace, path tables and step count together (previously three
separate passes); the warm number is a pure ``KBT1`` + envelope decode.
"""

from repro.workloads.artifacts import (
    cache_stats,
    clear_memory_cache,
    get_artifacts,
    reset_cache_stats,
)


def _cold(name, scale):
    clear_memory_cache()
    import repro.workloads.artifacts as store

    store.clear_disk_cache()
    return get_artifacts(name, scale=scale)


def _warm(name, scale):
    clear_memory_cache()
    return get_artifacts(name, scale=scale)


def test_artifacts_cold(benchmark, bench_scale):
    reset_cache_stats()
    artifacts = benchmark.pedantic(
        _cold, args=("compress", bench_scale), rounds=3, iterations=1
    )
    assert len(artifacts.trace) > 0
    stats = cache_stats()
    benchmark.extra_info["interpreter_runs"] = stats.interpreter_runs
    benchmark.extra_info["events"] = len(artifacts.trace)


def test_artifacts_warm(benchmark, bench_scale):
    get_artifacts("compress", scale=bench_scale)  # ensure the disk entry exists
    reset_cache_stats()
    artifacts = benchmark.pedantic(
        _warm, args=("compress", bench_scale), rounds=3, iterations=1
    )
    stats = cache_stats()
    assert stats.interpreter_runs == 0
    benchmark.extra_info["hits"] = stats.hits
    benchmark.extra_info["events"] = len(artifacts.trace)
