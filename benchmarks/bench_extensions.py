"""Benchmarks for the extension experiments (cross-dataset, ablations).

Run:  pytest benchmarks/bench_extensions.py --benchmark-only -s
"""

from repro.experiments import ablation, crossdata


def test_crossdata(benchmark, bench_scale):
    result = benchmark.pedantic(
        crossdata.run, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    degradation = result.data["loop-corr degradation"]
    benchmark.extra_info["mean_loop_corr_degradation"] = sum(degradation) / len(
        degradation
    )


def test_ablation_search(benchmark, bench_scale):
    result = benchmark.pedantic(
        ablation.run_search, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    exhaustive = result.data["exhaustive"]
    greedy = result.data["greedy split"]
    benchmark.extra_info["mean_gap"] = sum(
        g - e for e, g in zip(exhaustive, greedy)
    ) / len(greedy)


def test_ablation_pruning(benchmark, bench_scale):
    result = benchmark.pedantic(
        ablation.run_pruning, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    saved = result.data["instructions saved"]
    benchmark.extra_info["total_instructions_saved"] = sum(saved)
